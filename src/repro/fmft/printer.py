"""Rendering FMFT formulas as readable text.

One-way (there is no formula parser — formulas come from the
translations or are built programmatically); used by ``explain``-style
output, the examples, and error messages in the theory layer.
"""

from __future__ import annotations

from repro.fmft.formula import (
    And,
    EqualsAtom,
    Exists,
    ForAll,
    Formula,
    Not,
    Or,
    OrderAtom,
    PredicateAtom,
    PrefixAtom,
)

__all__ = ["formula_to_text"]

_LEVEL_OR = 1
_LEVEL_AND = 2
_LEVEL_UNARY = 3


def formula_to_text(formula: Formula) -> str:
    """Render a formula with conventional logical symbols.

    Example: ``(∃y0) (Q_A(x) ∧ Q_B(y0)) ∧ x ⊃ y0``.
    """
    return _render(formula, 0)


def _render(formula: Formula, context: int) -> str:
    text, level = _render_inner(formula)
    if level < context:
        return f"({text})"
    return text


def _render_inner(formula: Formula) -> tuple[str, int]:
    if isinstance(formula, PredicateAtom):
        prefix = "Q" if formula.kind == "region" else "W"
        return f"{prefix}_{formula.predicate}({formula.variable})", _LEVEL_UNARY
    if isinstance(formula, PrefixAtom):
        return f"{formula.left} ⊃ {formula.right}", _LEVEL_UNARY
    if isinstance(formula, OrderAtom):
        return f"{formula.left} < {formula.right}", _LEVEL_UNARY
    if isinstance(formula, EqualsAtom):
        return f"{formula.left} = {formula.right}", _LEVEL_UNARY
    if isinstance(formula, Not):
        return f"¬{_render(formula.body, _LEVEL_UNARY)}", _LEVEL_UNARY
    if isinstance(formula, And):
        return (
            f"{_render(formula.left, _LEVEL_AND)} ∧ {_render(formula.right, _LEVEL_AND)}",
            _LEVEL_AND,
        )
    if isinstance(formula, Or):
        return (
            f"{_render(formula.left, _LEVEL_OR)} ∨ {_render(formula.right, _LEVEL_OR)}",
            _LEVEL_OR,
        )
    if isinstance(formula, Exists):
        return f"(∃{formula.variable}) {_render(formula.body, _LEVEL_OR)}", _LEVEL_OR
    if isinstance(formula, ForAll):
        return f"(∀{formula.variable}) {_render(formula.body, _LEVEL_OR)}", _LEVEL_OR
    raise TypeError(f"cannot render {type(formula).__name__}")
