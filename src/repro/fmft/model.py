"""Tree models over ``{0,1}*`` and their correspondence with instances.

Section 3 models are tuples ``t = ({0,1}*, ⊃, <, Q_1, …, Q_{n+k})``
where ``⊃`` is the proper-prefix order, ``<`` the lexicographic order,
and the ``Q_i`` are finite sets of binary words — the first ``n``
holding the region names, the rest the word-index truths of ``k``
patterns (Definition 3.2).

A model is equivalently an ordered labelled forest: a word's parent is
its *direct prefix* among the model's words, and siblings are ordered
lexicographically.  :func:`model_from_instance` embeds an instance's
direct-inclusion forest by encoding each region's child path
``(i₁, …, i_d)`` as ``1^{i₁} 0 1^{i₂} 0 … 1^{i_d} 0`` — under this
encoding ancestor = proper prefix and document order = lexicographic
order, which is exactly what conditions (1)–(4) of Definition 3.2 ask.

One interpretation choice (documented in DESIGN.md): we read the model
relation ``<`` as *lexicographic and not a prefix* — document-order
precedence.  Definition 3.2(2) constrains only non-prefix pairs, and
this reading makes the Proposition 3.3 translation exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.core.instance import Instance
from repro.core.region import Region
from repro.errors import ReproError
from repro.workloads.generators import TreeNode, instance_from_trees

__all__ = [
    "TreeModel",
    "word_prefix_includes",
    "word_precedes",
    "model_from_instance",
    "instance_from_model",
]


def word_prefix_includes(u: str, v: str) -> bool:
    """The model relation ``u ⊃ v``: ``u`` is a proper prefix of ``v``."""
    return len(u) < len(v) and v.startswith(u)


def word_precedes(u: str, v: str) -> bool:
    """The model relation ``u < v``: lexicographically before and not a
    prefix (document-order precedence; see module docstring)."""
    return u < v and not v.startswith(u)


def _check_word(word: str) -> str:
    if any(ch not in "01" for ch in word):
        raise ReproError(f"model words must be binary strings, got {word!r}")
    return word


@dataclass(frozen=True)
class TreeModel:
    """A finite model: region predicates and pattern predicates.

    ``regions`` maps each region name to its word set; ``patterns`` maps
    each pattern to the words whose regions satisfy it.  The model's
    *words* are the union of the region predicates (the paper's "words
    in t").
    """

    regions: Mapping[str, frozenset[str]]
    patterns: Mapping[str, frozenset[str]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "regions",
            {name: frozenset(_check_word(w) for w in ws) for name, ws in self.regions.items()},
        )
        object.__setattr__(
            self,
            "patterns",
            {p: frozenset(_check_word(w) for w in ws) for p, ws in self.patterns.items()},
        )

    @property
    def words(self) -> frozenset[str]:
        """The words in the model — the union of the region predicates."""
        out: set[str] = set()
        for ws in self.regions.values():
            out |= ws
        return frozenset(out)

    def is_valid_representation(self) -> bool:
        """The two restriction conditions below Proposition 3.3:

        (i) the region predicates are pairwise disjoint, and
        (ii) every pattern word belongs to some region predicate.
        Models meeting them represent some region instance.
        """
        seen: set[str] = set()
        for ws in self.regions.values():
            if seen & ws:
                return False
            seen |= ws
        return all(ws <= seen for ws in self.patterns.values())

    def region_of(self, word: str) -> str | None:
        for name, ws in self.regions.items():
            if word in ws:
                return name
        return None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TreeModel):
            return NotImplemented
        mine = {p: ws for p, ws in self.patterns.items() if ws}
        theirs = {p: ws for p, ws in other.patterns.items() if ws}
        return dict(self.regions) == dict(other.regions) and mine == theirs

    def __hash__(self) -> int:
        return hash(
            (
                frozenset(self.regions.items()),
                frozenset((p, ws) for p, ws in self.patterns.items() if ws),
            )
        )


def _encode_path(path: Sequence[int]) -> str:
    """``(i₁, …, i_d) ↦ 1^{i₁} 0 1^{i₂} 0 … 1^{i_d} 0``."""
    return "".join("1" * i + "0" for i in path)


def model_from_instance(
    instance: Instance, patterns: Sequence[str] = ()
) -> tuple[TreeModel, dict[str, Region]]:
    """A model representing ``instance`` w.r.t. ``patterns`` (Def 3.2).

    Returns the model and the mapping ``region_I`` from words to
    regions.  The embedding encodes each region's child path in the
    direct-inclusion forest; see the module docstring for why this
    satisfies conditions (1)–(4).
    """
    forest = instance.forest()
    regions: dict[str, set[str]] = {name: set() for name in instance.names}
    pattern_words: dict[str, set[str]] = {p: set() for p in patterns}
    region_of_word: dict[str, Region] = {}
    for region in forest.preorder:
        word = _encode_path(forest.child_path(region))
        region_of_word[word] = region
        regions[instance.name_of(region)].add(word)
        for p in patterns:
            if instance.matches(region, p):
                pattern_words[p].add(word)
    model = TreeModel(
        {name: frozenset(ws) for name, ws in regions.items()},
        {p: frozenset(ws) for p, ws in pattern_words.items()},
    )
    return model, region_of_word


def instance_from_model(model: TreeModel) -> tuple[Instance, dict[str, Region]]:
    """A region instance represented by ``model`` (the converse direction).

    Requires :meth:`TreeModel.is_valid_representation`.  The forest is
    rebuilt from the words' direct-prefix relation and lexicographic
    sibling order, then lowered to intervals; returns the instance and
    the ``word → region`` mapping.
    """
    if not model.is_valid_representation():
        raise ReproError("model does not satisfy the representation conditions")
    words = sorted(model.words)  # lexicographic = document order
    nodes: dict[str, TreeNode] = {}
    roots: list[TreeNode] = []
    # Sorted order guarantees every proper prefix precedes its extensions,
    # so a stack of open ancestors yields each word's direct prefix.
    stack: list[str] = []
    name_of = {w: model.region_of(w) for w in words}
    labels = {
        w: frozenset(p for p, ws in model.patterns.items() if w in ws)
        for w in words
    }
    for word in words:
        while stack and not word.startswith(stack[-1]):
            stack.pop()
        node = TreeNode(name_of[word] or "", [], labels[word])
        nodes[word] = node
        if stack:
            nodes[stack[-1]].children.append(node)
        else:
            roots.append(node)
        stack.append(word)
    instance = instance_from_trees(roots, names=tuple(model.regions))
    # Recover the word → region mapping by replaying the same DFS the
    # lowering used: pre-order positions coincide.
    forest = instance.forest()
    preorder = forest.preorder
    word_to_region = {word: preorder[i] for i, word in enumerate(words)}
    return instance, word_to_region
