"""The complexity reductions: Theorem 3.5 and Proposition 6.1 support.

Theorem 3.5 states emptiness testing is Co-NP-hard "by reduction from
the problem of checking if a 3-CNF formula is unsatisfiable"; the paper
omits the construction.  The reduction implemented here:

Given a 3-CNF formula φ over variables ``x_1 … x_n``, take the region
index ``{Doc, X_1, …, X_n, T, F}`` and the expression ::

    e(φ) =   ⋂_j  ⋃_{literal ∈ C_j}  Doc ⊃ (X_i ⊃ T)        (x_i positive)
                                      Doc ⊃ (X_i ⊃ F)        (x_i negated)
           −  ⋃_i  (Doc ⊃ (X_i ⊃ T)) ∩ (Doc ⊃ (X_i ⊃ F))

*If φ is satisfiable*, the instance with one ``Doc`` containing, for
each variable, an ``X_i`` region holding a ``T`` (σ(x_i) true) or ``F``
(false) region puts ``Doc ∈ e(φ)``.  *Conversely*, if ``Doc ∈ e(φ)(I)``
for any instance, read off σ(x_i) := "``Doc ⊃ (X_i ⊃ T)`` holds"; the
subtracted cheat term guarantees no variable tests true and false at
once, so each clause's satisfied disjunct certifies a true literal.
Hence ``e(φ)`` is empty on **all** instances iff φ is unsatisfiable —
emptiness testing solves Co-3-SAT, and ``|e(φ)|`` is linear in ``|φ|``.

The reduction is validated in the tests against brute-force SAT.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Sequence

from repro.algebra import ast as A
from repro.core.instance import Instance
from repro.errors import ReproError
from repro.workloads.generators import TreeNode, instance_from_trees

__all__ = [
    "Literal",
    "Clause",
    "CNF",
    "cnf_to_expression",
    "assignment_to_instance",
    "brute_force_satisfiable",
    "reduction_index_names",
]


@dataclass(frozen=True, slots=True)
class Literal:
    """A literal: variable index (1-based) and polarity."""

    variable: int
    positive: bool


Clause = tuple[Literal, ...]


@dataclass(frozen=True)
class CNF:
    """A CNF formula; clauses with at most three literals are 3-CNF."""

    variable_count: int
    clauses: tuple[Clause, ...]

    def __post_init__(self) -> None:
        for clause in self.clauses:
            if not clause:
                raise ReproError("empty clause: formula trivially unsatisfiable")
            for literal in clause:
                if not 1 <= literal.variable <= self.variable_count:
                    raise ReproError(
                        f"literal variable {literal.variable} outside "
                        f"1..{self.variable_count}"
                    )


def _var_name(index: int) -> str:
    return f"X{index}"


def reduction_index_names(cnf: CNF) -> tuple[str, ...]:
    """The region index of the reduction: Doc, X_1..X_n, T, F."""
    return ("Doc",) + tuple(_var_name(i) for i in range(1, cnf.variable_count + 1)) + ("T", "F")


def _polarity_test(literal: Literal) -> A.Expr:
    """``Doc ⊃ (X_i ⊃ T)`` (positive) or ``Doc ⊃ (X_i ⊃ F)`` (negated)."""
    marker = "T" if literal.positive else "F"
    return A.Including(
        A.NameRef("Doc"),
        A.Including(A.NameRef(_var_name(literal.variable)), A.NameRef(marker)),
    )


def cnf_to_expression(cnf: CNF) -> A.Expr:
    """The Theorem 3.5 reduction: ``e(φ)`` empty on all instances iff φ unsat."""
    conjunction: A.Expr | None = None
    for clause in cnf.clauses:
        disjunction: A.Expr | None = None
        for literal in clause:
            test = _polarity_test(literal)
            disjunction = test if disjunction is None else A.Union(disjunction, test)
        assert disjunction is not None
        conjunction = (
            disjunction
            if conjunction is None
            else A.Intersection(conjunction, disjunction)
        )
    if conjunction is None:
        raise ReproError("a CNF formula needs at least one clause")
    cheats: A.Expr | None = None
    for i in range(1, cnf.variable_count + 1):
        both = A.Intersection(
            _polarity_test(Literal(i, True)), _polarity_test(Literal(i, False))
        )
        cheats = both if cheats is None else A.Union(cheats, both)
    assert cheats is not None
    return A.Difference(conjunction, cheats)


def assignment_to_instance(cnf: CNF, assignment: Sequence[bool]) -> Instance:
    """The canonical instance encoding a truth assignment.

    One ``Doc`` containing, per variable, an ``X_i`` region with a ``T``
    or ``F`` child according to the assignment.
    """
    if len(assignment) != cnf.variable_count:
        raise ReproError(
            f"assignment length {len(assignment)} != {cnf.variable_count} variables"
        )
    children = [
        TreeNode(_var_name(i + 1), [TreeNode("T" if value else "F")])
        for i, value in enumerate(assignment)
    ]
    doc = TreeNode("Doc", children)
    return instance_from_trees([doc], names=reduction_index_names(cnf))


def brute_force_satisfiable(cnf: CNF) -> Sequence[bool] | None:
    """Reference SAT solver: the first satisfying assignment, or ``None``."""
    for bits in product((False, True), repeat=cnf.variable_count):
        if all(
            any(
                bits[lit.variable - 1] == lit.positive
                for lit in clause
            )
            for clause in cnf.clauses
        ):
            return list(bits)
    return None
