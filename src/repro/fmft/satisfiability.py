"""Emptiness testing and bounded counter-model search (Theorems 3.4/3.6).

Theorem 3.4 reduces "is ``e(I)`` empty for every instance ``I``" to
(un)satisfiability of an FMFT formula — decidable by Rabin's theorem but
with non-elementary cost.  This module substitutes a *bounded-model*
decision procedure (DESIGN.md §2): enumerate every hierarchical instance
up to ``max_nodes`` regions (all ordered forest shapes × name labelings
× pattern labelings), optionally filtered by a RIG, and evaluate the
expression on each.

* A found witness definitively proves **non-emptiness** (and the
  procedure returns it).
* Exhausting the bound proves emptiness *up to the bound*; Theorem 4.1's
  deletion argument justifies small bounds for expression-derived
  formulas, and the test suite cross-validates against the naive
  evaluator.  Theorem 3.5 (Co-NP-hardness, :mod:`repro.fmft.hardness`)
  is why no polynomial shortcut exists.

The formulas of Theorems 3.4/3.6 themselves are also constructed
(:func:`emptiness_formula`, :func:`rig_constraint_formula`) so the
reduction can be inspected and checked on finite models.
"""

from __future__ import annotations

import random
from functools import lru_cache
from itertools import product
from typing import Iterator, Sequence

from repro.algebra import ast as A
from repro.algebra.evaluator import evaluate
from repro.core.instance import Instance
from repro.fmft.formula import And, Exists, ForAll, Formula, Not, Or, PredicateAtom, PrefixAtom
from repro.fmft.translate import algebra_to_formula
from repro.rig.graph import RegionInclusionGraph
from repro.workloads.generators import TreeNode, instance_from_trees, random_instance

__all__ = [
    "enumerate_instances",
    "find_nonempty_witness",
    "is_empty_bounded",
    "find_inequivalence_witness",
    "random_inequivalence_witness",
    "find_model_for_sentence",
    "emptiness_formula",
    "rig_constraint_formula",
]

Shape = tuple["Shape", ...]


@lru_cache(maxsize=None)
def _tree_shapes(nodes: int) -> tuple[Shape, ...]:
    """All ordered rooted trees with ``nodes`` nodes."""
    if nodes == 1:
        return ((),)
    return tuple(
        children for children in _forest_shapes(nodes - 1)
    )


@lru_cache(maxsize=None)
def _forest_shapes(nodes: int) -> tuple[Shape, ...]:
    """All ordered forests with ``nodes`` nodes (possibly empty)."""
    if nodes == 0:
        return ((),)
    out: list[Shape] = []
    for first_size in range(1, nodes + 1):
        for first in _tree_shapes(first_size):
            for rest in _forest_shapes(nodes - first_size):
                out.append((first,) + rest)
    return tuple(out)


def _shape_size(shape: Shape) -> int:
    return 1 + sum(_shape_size(child) for child in shape)


def _label_shape(
    forest: Shape, names: tuple[str, ...], labels: tuple[frozenset[str], ...]
) -> list[TreeNode]:
    """Assign names/pattern-labels to a forest shape in pre-order."""
    position = 0

    def build(shape: Shape) -> TreeNode:
        nonlocal position
        index = position
        position += 1
        children = [build(child) for child in shape]
        return TreeNode(names[index], children, labels[index])

    return [build(tree) for tree in forest]


def enumerate_instances(
    names: Sequence[str],
    patterns: Sequence[str] = (),
    max_nodes: int = 4,
    rig: RegionInclusionGraph | None = None,
) -> Iterator[Instance]:
    """Every hierarchical instance with 1..``max_nodes`` regions.

    All ordered forest shapes, crossed with every name labeling and
    every pattern labeling; with ``rig`` given, instances violating it
    are skipped.  Exponential by design — the emptiness problem is
    Co-NP-hard (Theorem 3.5) — so keep the bounds small.
    """
    name_tuple = tuple(names)
    label_choices = _powerset(tuple(patterns))
    for total in range(1, max_nodes + 1):
        for forest in _forest_shapes(total):
            if not forest:
                continue
            for name_assignment in product(name_tuple, repeat=total):
                for label_assignment in product(label_choices, repeat=total):
                    trees = _label_shape(forest, name_assignment, label_assignment)
                    instance = instance_from_trees(trees, names=name_tuple)
                    if rig is not None and not rig.satisfied_by(instance):
                        continue
                    yield instance


def _powerset(items: tuple[str, ...]) -> tuple[frozenset[str], ...]:
    out: list[frozenset[str]] = [frozenset()]
    for item in items:
        out.extend(s | {item} for s in list(out))
    return tuple(out)


def find_nonempty_witness(
    expr: A.Expr,
    names: Sequence[str] | None = None,
    patterns: Sequence[str] | None = None,
    max_nodes: int = 4,
    rig: RegionInclusionGraph | None = None,
) -> Instance | None:
    """The first bounded instance on which ``expr`` is non-empty."""
    if names is None:
        names = sorted(A.region_names(expr)) or ["R"]
    if patterns is None:
        patterns = sorted(A.pattern_names(expr))
    for instance in enumerate_instances(names, patterns, max_nodes, rig):
        if evaluate(expr, instance):
            return instance
    return None


def is_empty_bounded(
    expr: A.Expr,
    names: Sequence[str] | None = None,
    patterns: Sequence[str] | None = None,
    max_nodes: int = 4,
    rig: RegionInclusionGraph | None = None,
) -> bool:
    """Emptiness up to the bound (sound for ``False``, bounded for ``True``)."""
    return (
        find_nonempty_witness(expr, names, patterns, max_nodes, rig) is None
    )


def find_inequivalence_witness(
    first: A.Expr,
    second: A.Expr,
    names: Sequence[str] | None = None,
    patterns: Sequence[str] | None = None,
    max_nodes: int = 4,
    rig: RegionInclusionGraph | None = None,
) -> Instance | None:
    """A bounded instance where the two expressions disagree.

    This is the paper's equivalence test "``e₁ ≡ e₂`` iff
    ``(e₁ − e₂) ∪ (e₂ − e₁)`` is empty for all instances", run over the
    bounded instance space.
    """
    difference = A.Union(A.Difference(first, second), A.Difference(second, first))
    if names is None:
        names = sorted(A.region_names(difference)) or ["R"]
    if patterns is None:
        patterns = sorted(A.pattern_names(difference))
    return find_nonempty_witness(difference, names, patterns, max_nodes, rig)


def random_inequivalence_witness(
    first: A.Expr,
    second: A.Expr,
    rng: random.Random,
    trials: int = 200,
    names: Sequence[str] | None = None,
    patterns: Sequence[str] | None = None,
    max_nodes: int = 25,
) -> Instance | None:
    """Randomized refutation: larger instances, no exhaustiveness."""
    union_names = sorted(A.region_names(first) | A.region_names(second)) or ["R"]
    union_patterns = sorted(A.pattern_names(first) | A.pattern_names(second))
    names = list(names) if names is not None else union_names
    patterns = list(patterns) if patterns is not None else union_patterns
    for _ in range(trials):
        instance = random_instance(
            rng, names=names, max_nodes=max_nodes, patterns=patterns
        )
        if evaluate(first, instance) != evaluate(second, instance):
            return instance
    return None


def find_model_for_sentence(
    sentence: "Formula",
    names: Sequence[str],
    patterns: Sequence[str] = (),
    max_nodes: int = 4,
) -> "tuple[Instance, object] | None":
    """Bounded satisfiability for an arbitrary FMFT sentence.

    Enumerates hierarchical instances up to ``max_nodes`` regions,
    converts each to its tree model (Def 3.2) and checks the sentence
    with the active-domain semantics.  Returns the witness
    ``(instance, model)`` or ``None`` if no bounded model satisfies it.

    This is the executable form of Theorems 3.4/3.6: e.g. the
    conjunction of :func:`emptiness_formula` and
    :func:`rig_constraint_formula` is satisfiable iff the expression is
    non-empty on some instance satisfying the RIG — and the tests check
    that this agrees with the direct instance-level search.
    """
    from repro.fmft.model import model_from_instance
    from repro.fmft.semantics import holds

    for instance in enumerate_instances(names, patterns, max_nodes):
        model, _ = model_from_instance(instance, patterns=tuple(patterns))
        if holds(sentence, model, {}):
            return instance, model
    return None


# ----------------------------------------------------------------------
# The Theorem 3.4 / 3.6 formulas themselves.
# ----------------------------------------------------------------------


def emptiness_formula(
    expr: A.Expr, names: Sequence[str], patterns: Sequence[str] = ()
) -> Formula:
    """The sentence-shaped reduction of Theorem 3.4.

    ``∃x (φ_e(x)) ∧ conditions(i, ii)`` — satisfiable iff some valid
    model makes ``e`` non-empty, i.e. iff ``e`` is not empty on all
    instances.  The representation conditions (region predicates
    pairwise disjoint, pattern words inside region words) are spelled
    out as restricted-formula-expressible constraints.
    """
    phi = algebra_to_formula(expr, "x")
    sentence: Formula = Exists("x", phi)
    name_list = list(names)
    for i, a in enumerate(name_list):
        for b in name_list[i + 1 :]:
            sentence = And(
                sentence,
                ForAll(
                    "u",
                    Not(
                        And(
                            PredicateAtom("region", a, "u"),
                            PredicateAtom("region", b, "u"),
                        )
                    ),
                ),
            )
    for p in patterns:
        some_region: Formula | None = None
        for name in name_list:
            atom = PredicateAtom("region", name, "u")
            some_region = atom if some_region is None else Or(some_region, atom)
        if some_region is not None:
            sentence = And(
                sentence,
                ForAll("u", Or(Not(PredicateAtom("pattern", p, "u")), some_region)),
            )
    return sentence


def rig_constraint_formula(rig: RegionInclusionGraph) -> Formula:
    """The Theorem 3.6 refinement: instances satisfying a RIG.

    ``∀x ∀y (direct_prefix(x, y) → ⋁_{(R_i,R_j) ∈ E} Q_i(x) ∧ Q_j(y))``
    where ``direct_prefix(x, y)`` is
    ``x ⊃ y ∧ ¬∃z (x ⊃ z ∧ z ⊃ y)``.  Note the inner negated
    existential: this is a *general* FMFT formula, not a restricted one —
    exactly why Theorem 3.6 needs general formulas (direct inclusion is
    not restricted-expressible, Section 5.1).
    """
    direct = And(
        PrefixAtom("x", "y"),
        Not(Exists("z", And(PrefixAtom("x", "z"), PrefixAtom("z", "y")))),
    )
    allowed: Formula | None = None
    for parent, child in rig.edges:
        pair = And(
            PredicateAtom("region", parent, "x"),
            PredicateAtom("region", child, "y"),
        )
        allowed = pair if allowed is None else Or(allowed, pair)
    if allowed is None:
        # No edges: no direct inclusion may occur at all.
        return ForAll("x", ForAll("y", Not(direct)))
    return ForAll("x", ForAll("y", Or(Not(direct), allowed)))
