"""repro — a region algebra for querying text regions.

A production-quality reproduction of *Algebras for Querying Text
Regions* (Consens & Milo, PODS 1995): the PAT-style region algebra, its
tree-model theory, the RIG/ROG schema machinery, the Section 4
deletion/reduction toolkit behind the inexpressibility theorems, and the
Section 6/7 extensions.

Quickstart::

    from repro import Engine

    engine = Engine.from_tagged_text(my_sgml_like_document)
    names = engine.query('Name within Proc_header within Proc')

See README.md for the architecture overview and DESIGN.md for the full
paper-to-module map.
"""

from repro.algebra import Evaluator, evaluate, parse, to_text
from repro.core import (
    Forest,
    Instance,
    LabelWordIndex,
    Region,
    RegionSet,
    TextWordIndex,
)
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "Region",
    "RegionSet",
    "Instance",
    "Forest",
    "TextWordIndex",
    "LabelWordIndex",
    "parse",
    "to_text",
    "evaluate",
    "Evaluator",
    "Engine",
    "ReproError",
    "__version__",
]


def __getattr__(name: str):
    # Engine pulls in the whole engine package; import it lazily so the
    # algebraic core stays importable in minimal environments.
    if name == "Engine":
        from repro.engine import Engine

        return Engine
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
