"""The HTTP transport for shard backends.

Speaks ``POST /shard/query`` to a backend ``repro serve`` process
(:mod:`repro.server.http` serves the other side).  The wire format is
the text protocol of :mod:`repro.backend.base`; two request headers
carry the cross-process context:

* ``X-Repro-Deadline`` — the frontier's *remaining* budget in seconds;
  the backend hands it to its evaluator's cooperative deadline check,
  so a slow slice aborts remotely instead of being abandoned;
* ``X-Repro-Trace`` — the request's
  :class:`~repro.obs.context.TraceContext` as JSON; the backend
  re-activates it (preserving the head-sampling decision) and ships its
  finished span subtree back in the response for the frontier to adopt.

Connections are keep-alive, one per (backend, frontier thread);
anything transport-shaped — refused, reset, half-closed sockets from a
SIGKILL'd process — raises :class:`~repro.errors.BackendError`, the
signal the frontier's breakers and failover consume.  A remote
``query_timeout`` is re-raised as :class:`~repro.errors.QueryTimeout`
(failing over cannot help an expired deadline) and a remote
``backend_unsupported`` as
:class:`~repro.errors.BackendUnsupportedError` (every replica would
refuse identically).
"""

from __future__ import annotations

import http.client
import json
import threading
from typing import Any, Mapping, Sequence

from repro.backend.base import BackendResult, ShardBackend
from repro.errors import (
    BackendError,
    BackendUnsupportedError,
    QueryTimeout,
    ReplicaLaggingError,
)

__all__ = ["HTTPBackend"]

#: Socket-level grace on top of the propagated deadline, so the remote
#: cooperative abort (and its 504 response) wins over a client timeout.
_TIMEOUT_GRACE = 2.0

#: Connect/request timeout when the caller sent no deadline.
_DEFAULT_TIMEOUT = 10.0


class HTTPBackend(ShardBackend):
    """See the module docstring."""

    def __init__(self, node_id: str, host: str, port: int):
        self.node_id = node_id
        self.host = host
        self.port = port
        self._local = threading.local()

    # ------------------------------------------------------------------

    def _connection(self, timeout: float) -> http.client.HTTPConnection:
        connection = getattr(self._local, "connection", None)
        if connection is None:
            connection = http.client.HTTPConnection(
                self.host, self.port, timeout=timeout
            )
            self._local.connection = connection
        else:
            # Refresh the per-call timeout on the kept socket too.
            connection.timeout = timeout
            if connection.sock is not None:
                connection.sock.settimeout(timeout)
        return connection

    def _drop_connection(self) -> None:
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            connection.close()
            self._local.connection = None

    # ------------------------------------------------------------------

    def shard_query(
        self,
        corpus: str,
        group: int,
        groups: int,
        queries: Sequence[str],
        want: str,
        bounds: Mapping[str, int | None],
        deadline: float | None = None,
        trace: Mapping[str, Any] | None = None,
        floor: int = 0,
    ) -> BackendResult:
        body = json.dumps(
            {
                "corpus": corpus,
                "group": group,
                "groups": groups,
                "queries": list(queries),
                "want": want,
                "bounds": dict(bounds),
                "floor": floor,
            }
        )
        headers = {"Content-Type": "application/json"}
        if deadline is not None:
            headers["X-Repro-Deadline"] = f"{deadline:.6f}"
        if trace is not None:
            headers["X-Repro-Trace"] = json.dumps(dict(trace))
        timeout = (
            deadline + _TIMEOUT_GRACE if deadline is not None else _DEFAULT_TIMEOUT
        )
        connection = self._connection(timeout)
        try:
            connection.request("POST", "/shard/query", body=body, headers=headers)
            response = connection.getresponse()
            payload = response.read()
        except (OSError, http.client.HTTPException) as exc:
            self._drop_connection()
            raise BackendError(
                f"backend {self.node_id} ({self.host}:{self.port}): "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        return self._decode(response.status, payload, deadline)

    def _decode(
        self, status: int, payload: bytes, deadline: float | None
    ) -> BackendResult:
        try:
            data = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._drop_connection()
            raise BackendError(
                f"backend {self.node_id}: unparseable response "
                f"(HTTP {status})"
            ) from exc
        if status == 200:
            return BackendResult(
                payload=data["payload"],
                generation=int(data.get("generation", 0)),
                seconds=float(data.get("seconds", 0.0)),
                node=str(data.get("node", self.node_id)),
                span=data.get("span"),
            )
        code = data.get("code", "")
        message = data.get("error", f"HTTP {status}")
        if status == 504 or code == "query_timeout":
            raise QueryTimeout(deadline if deadline is not None else 0.0)
        if code == "backend_unsupported":
            raise BackendUnsupportedError(message)
        if code == "replica_lagging":
            raise ReplicaLaggingError(
                str(data.get("corpus", "")),
                int(data.get("applied", 0)),
                int(data.get("floor", 0)),
            )
        raise BackendError(
            f"backend {self.node_id}: HTTP {status} {code or '?'}: {message}"
        )

    # ------------------------------------------------------------------
    # Replication RPCs — plain JSON POSTs, no deadline/trace context
    # (shipping is a background activity with its own retry discipline
    # in the coordinator; a failure here is "node lagging", not a
    # request failure).
    # ------------------------------------------------------------------

    def _post_json(
        self, path: str, body: dict[str, Any], timeout: float = _DEFAULT_TIMEOUT
    ) -> dict[str, Any]:
        payload_out = json.dumps(body)
        connection = self._connection(timeout)
        try:
            connection.request(
                "POST",
                path,
                body=payload_out,
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            payload = response.read()
        except (OSError, http.client.HTTPException) as exc:
            self._drop_connection()
            raise BackendError(
                f"backend {self.node_id} ({self.host}:{self.port}): "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        try:
            data = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._drop_connection()
            raise BackendError(
                f"backend {self.node_id}: unparseable {path} response "
                f"(HTTP {response.status})"
            ) from exc
        if response.status != 200:
            raise BackendError(
                f"backend {self.node_id}: {path} HTTP {response.status} "
                f"{data.get('code', '?')}: {data.get('error', '')}"
            )
        return data

    def replicate_apply(
        self,
        corpus: str,
        seq: int,
        ops: Sequence[Mapping[str, Any]],
        generation: int,
        checksum: str,
    ) -> dict[str, Any]:
        return self._post_json(
            "/replicate/apply",
            {
                "corpus": corpus,
                "seq": seq,
                "ops": [dict(op) for op in ops],
                "generation": generation,
                "checksum": checksum,
            },
        )

    def replicate_snapshot(
        self, corpus: str, state: Mapping[str, Any], generation: int
    ) -> dict[str, Any]:
        return self._post_json(
            "/replicate/snapshot",
            {"corpus": corpus, "state": dict(state), "generation": generation},
        )

    def replicate_status(self, corpus: str, groups: int) -> dict[str, Any]:
        return self._post_json(
            "/replicate/status", {"corpus": corpus, "groups": groups}
        )

    def describe(self) -> dict[str, Any]:
        return {
            "node": self.node_id,
            "transport": "http",
            "address": f"{self.host}:{self.port}",
        }

    def close(self) -> None:
        self._drop_connection()
