"""Spawning, watching, and respawning backend shard subprocesses.

Each backend node is a plain ``repro serve`` process — the same binary,
HTTP server, and query service as the frontier, reached through its
``POST /shard/query`` endpoint.  There is no slice-specific
configuration to ship: a backend builds slices lazily from the
``(group, groups)`` coordinates in each request, so every node can
serve any replica role the ring assigns it, and a frontier restart
never has to re-plan who holds what.

The supervisor owns the children end to end: allocate a port, spawn,
wait for ``/healthz``, and keep a monitor thread watching for exits.  A
child that dies (a crash, or the chaos harness's SIGKILL) is respawned
on the *same* port after ``respawn_delay`` — same port so the frontier's
:class:`~repro.backend.httpclient.HTTPBackend` needs no re-addressing:
its next connection attempt simply succeeds again, and the node's
circuit breaker closes on the first healthy probe.
"""

from __future__ import annotations

import http.client
import json
import socket
import subprocess
import sys
import threading
from time import monotonic, sleep
from typing import Any, Sequence

from repro.errors import BackendError
from repro.server.config import CorpusSpec

__all__ = ["BackendSupervisor"]


def _free_port(host: str) -> int:
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
        probe.bind((host, 0))
        return probe.getsockname()[1]


def _corpus_json(spec: CorpusSpec) -> str:
    # ``to_dict()`` omits generator parameters (they are noise in
    # ``/healthz``), but a child must reproduce the corpus exactly.
    return json.dumps({**spec.to_dict(), "seed": spec.seed, "scale": spec.scale})


class _Child:
    """One supervised backend process slot (fixed node id, host, port)."""

    def __init__(self, node_id: str, host: str, port: int):
        self.node_id = node_id
        self.host = host
        self.port = port
        self.process: subprocess.Popen | None = None
        self.respawns = 0


class BackendSupervisor:
    """See the module docstring."""

    def __init__(
        self,
        corpora: Sequence[CorpusSpec],
        count: int,
        host: str = "127.0.0.1",
        workers: int = 2,
        respawn_delay: float = 0.5,
        ready_timeout: float = 20.0,
        extra_args: Sequence[str] = (),
        metrics: Any = None,
    ):
        if count < 1:
            raise ValueError("the supervisor needs at least one backend")
        self._corpora = list(corpora)
        self._host = host
        self._workers = workers
        self.respawn_delay = respawn_delay
        self.ready_timeout = ready_timeout
        self._extra_args = list(extra_args)
        self._children = [
            _Child(f"b{i}", host, _free_port(host)) for i in range(count)
        ]
        self._lock = threading.Lock()
        self._stopping = False
        self._monitor: threading.Thread | None = None
        self._respawn_metric = None
        if metrics is not None:
            from repro.obs.metrics import BACKEND_RESPAWNS_TOTAL

            self._respawn_metric = metrics.counter(
                BACKEND_RESPAWNS_TOTAL, help="backend subprocess respawns"
            )

    # ------------------------------------------------------------------

    def start(self) -> list[tuple[str, str, int]]:
        """Spawn every backend, wait until all are ready, and return
        ``(node_id, host, port)`` triples for the frontier's transports."""
        for child in self._children:
            self._spawn(child)
        for child in self._children:
            self._wait_ready(child)
        self._monitor = threading.Thread(
            target=self._watch, name="repro-backend-supervisor", daemon=True
        )
        self._monitor.start()
        return [(c.node_id, c.host, c.port) for c in self._children]

    def _spawn(self, child: _Child) -> None:
        argv = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--host",
            child.host,
            "--port",
            str(child.port),
            "--workers",
            str(self._workers),
        ]
        for spec in self._corpora:
            argv += ["--corpus-json", _corpus_json(spec)]
        argv += self._extra_args
        child.process = subprocess.Popen(
            argv,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            stdin=subprocess.DEVNULL,
        )

    def _wait_ready(self, child: _Child) -> None:
        deadline = monotonic() + self.ready_timeout
        while monotonic() < deadline:
            process = child.process
            if process is not None and process.poll() is not None:
                raise BackendError(
                    f"backend {child.node_id} exited with "
                    f"{process.returncode} during startup"
                )
            try:
                connection = http.client.HTTPConnection(
                    child.host, child.port, timeout=1.0
                )
                try:
                    connection.request("GET", "/healthz")
                    if connection.getresponse().status in (200, 503):
                        return
                finally:
                    connection.close()
            except (OSError, http.client.HTTPException):
                pass
            sleep(0.05)
        raise BackendError(
            f"backend {child.node_id} ({child.host}:{child.port}) "
            f"not ready within {self.ready_timeout:.0f}s"
        )

    # ------------------------------------------------------------------

    def _watch(self) -> None:
        while True:
            with self._lock:
                if self._stopping:
                    return
                dead = [
                    c
                    for c in self._children
                    if c.process is not None and c.process.poll() is not None
                ]
            for child in dead:
                sleep(self.respawn_delay)
                with self._lock:
                    if self._stopping:
                        return
                    # allow_reuse_address on the server side lets the
                    # replacement rebind the same port through TIME_WAIT.
                    self._spawn(child)
                try:
                    self._wait_ready(child)
                except BackendError:
                    continue  # next sweep retries; the slot stays dead
                with self._lock:
                    child.respawns += 1
                if self._respawn_metric is not None:
                    self._respawn_metric.inc(node=child.node_id)
            sleep(0.2)

    # ------------------------------------------------------------------

    def kill(self, node_id: str) -> None:
        """SIGKILL one backend (the chaos harness's hammer).  The
        monitor thread will respawn it after ``respawn_delay``."""
        child = self._child(node_id)
        if child.process is not None:
            child.process.kill()

    def respawns(self, node_id: str) -> int:
        with self._lock:
            return self._child(node_id).respawns

    def describe(self) -> list[dict[str, Any]]:
        with self._lock:
            return [
                {
                    "node": c.node_id,
                    "address": f"{c.host}:{c.port}",
                    "pid": c.process.pid if c.process is not None else None,
                    "alive": c.process is not None and c.process.poll() is None,
                    "respawns": c.respawns,
                }
                for c in self._children
            ]

    def _child(self, node_id: str) -> _Child:
        for child in self._children:
            if child.node_id == node_id:
                return child
        raise KeyError(node_id)

    def stop(self) -> None:
        with self._lock:
            self._stopping = True
        if self._monitor is not None:
            self._monitor.join(timeout=2.0)
        for child in self._children:
            process = child.process
            if process is None or process.poll() is not None:
                continue
            process.terminate()
        for child in self._children:
            process = child.process
            if process is None:
                continue
            try:
                process.wait(timeout=3.0)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=3.0)
