"""The transport-agnostic shard-backend interface and slice evaluation.

A **backend** answers one RPC: *evaluate these query texts against your
slice of a corpus*.  The frontier partitions each corpus into ``G``
shard groups (the same deterministic top-level-forest cut as
:mod:`repro.shard.partition`, so every replica of a group computes an
identical slice independently) and drives the executor's exchange
protocol over a text wire format:

* ``queries`` — sub-plans as canonical query text
  (:func:`~repro.algebra.printer.to_text` round-trips through
  :func:`~repro.algebra.parser.parse`, the same property the result
  cache's normalized keys already rely on);
* ``bounds`` — resolved ordering nodes, keyed by *their* printed text
  and valued by the globally folded scalar (``None`` = globally empty
  right operand).  The backend re-finds each node in its parsed AST by
  printed text — sound because the evaluator's node equality is
  structural and an exchanged scalar is context-independent;
* ``want`` — ``"sets"`` for region results, ``"exchange"`` for the two
  scalars per query that exchange rounds fold.

Match points route exactly as in the in-process executor: the word
index is position-keyed and shared by every restriction, so a backend
keeps only the occurrences whose left endpoint its group owns; an
occurrence spanning a cut raises
:class:`~repro.errors.BackendUnsupportedError`, which the frontier
answers with the always-correct local fallback rather than failover
(every replica would refuse identically).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Mapping, Sequence

from repro.algebra import ast as A
from repro.algebra.parser import parse
from repro.algebra.printer import to_text
from repro.core.instance import Instance
from repro.core.regionset import RegionSet
from repro.core.wordindex import TextWordIndex
from repro.errors import BackendUnsupportedError
from repro.shard.merge import summarize_result
from repro.shard.partition import Segment, partition_instance
from repro.shard.rewrite import ShardEvaluator, rewrite

__all__ = [
    "BackendResult",
    "ShardBackend",
    "ShardSlice",
    "SliceProvider",
    "evaluate_slice",
    "slice_checksum",
]


@dataclass(frozen=True)
class BackendResult:
    """One backend RPC's answer.

    ``payload`` holds one entry per query text: ``[[left, right], …]``
    region pairs for ``want="sets"``, a ``(max_left, min_right)`` pair
    (``None``\\ s when empty) for ``want="exchange"``.  ``span`` is an
    optional :func:`~repro.obs.trace.span_to_dict` dump of the
    backend-side span subtree, for the frontier to re-parent with
    :meth:`~repro.obs.trace.Tracer.adopt`.
    """

    payload: list[Any]
    generation: int
    seconds: float
    node: str = ""
    span: dict[str, Any] | None = None


class ShardBackend:
    """One backend node the frontier can scatter shard work to.

    Implementations: :class:`~repro.backend.inprocess.InProcessBackend`
    (same process) and :class:`~repro.backend.httpclient.HTTPBackend`
    (a ``repro serve`` subprocess).  Both are safe to call from
    concurrent frontier threads.
    """

    node_id: str = ""

    def shard_query(
        self,
        corpus: str,
        group: int,
        groups: int,
        queries: Sequence[str],
        want: str,
        bounds: Mapping[str, int | None],
        deadline: float | None = None,
        trace: Mapping[str, Any] | None = None,
        floor: int = 0,
    ) -> BackendResult:
        """Evaluate ``queries`` against group ``group`` of ``groups``.

        ``floor`` is the read's generation floor: the lowest corpus
        generation this answer may come from (the generation the
        frontier acknowledged the caller's writes at).  A backend whose
        replica is still behind raises
        :class:`~repro.errors.ReplicaLaggingError` — a failover-able
        :class:`~repro.errors.BackendError` — instead of answering from
        the past.

        Raises :class:`~repro.errors.BackendError` for failures worth
        failing over (transport, remote crash, lagging replica),
        :class:`~repro.errors.BackendUnsupportedError` when no replica
        could answer soundly, and :class:`~repro.errors.QueryTimeout`
        when the propagated deadline expired remotely.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Replication (WAL log shipping) — see repro.backend.replication.
    # ------------------------------------------------------------------

    def replicate_apply(
        self,
        corpus: str,
        seq: int,
        ops: Sequence[Mapping[str, Any]],
        generation: int,
        checksum: str,
    ) -> dict[str, Any]:
        """Apply one committed WAL batch to this node's replica of
        ``corpus``, publishing exactly ``generation``.

        Returns ``{"corpus", "applied", "status"}`` where ``applied`` is
        the node's replica generation after the call and ``status`` is
        ``"applied"`` (the batch landed), ``"stale"`` (already at or past
        ``generation`` — an idempotent re-ship), ``"out_of_order"`` (a
        gap: the node needs catch-up first), or ``"checksum_mismatch"``
        (the shipped payload failed verification and was rejected).
        """
        raise NotImplementedError

    def replicate_snapshot(
        self, corpus: str, state: Mapping[str, Any], generation: int
    ) -> dict[str, Any]:
        """Replace this node's replica of ``corpus`` wholesale with
        ``state`` (a :meth:`LiveCorpus.state`-shaped document dump),
        publishing ``generation`` — the catch-up path when shipped batch
        history no longer covers the node's gap, and the repair path
        when anti-entropy finds divergence."""
        raise NotImplementedError

    def replicate_status(self, corpus: str, groups: int) -> dict[str, Any]:
        """This node's replica position for ``corpus``: ``{"corpus",
        "applied", "checksums"}`` with one content checksum per shard
        group (``groups`` of them) — what the anti-entropy sweep
        compares against the frontier's own slices."""
        raise NotImplementedError

    def describe(self) -> dict[str, Any]:
        return {"node": self.node_id, "transport": type(self).__name__}

    def close(self) -> None:  # pragma: no cover - trivial default
        pass


@dataclass(frozen=True)
class ShardSlice:
    """Group ``g``-of-``G`` of one corpus generation, ready to evaluate.

    ``segment.instance`` is the restricted sub-instance; its word index
    is the *full* corpus index (shared by construction —
    ``W(r, p)`` is position-keyed), which is what lets a slice route
    match points by ownership without seeing its siblings.
    """

    segment: Segment
    group: int
    groups: int
    generation: int
    evaluator: ShardEvaluator


class SliceProvider:
    """Builds and caches :class:`ShardSlice`\\ s per corpus generation.

    ``lookup(corpus)`` returns ``(instance, generation)`` for the
    *current* generation — the query service backs it with its corpus
    handles, a backend subprocess with its own engines.  Partitions are
    cached per ``(corpus, generation, groups)`` and older generations
    are dropped on sight, so a hot reload invalidates slices the same
    way it invalidates the result cache.
    """

    def __init__(
        self,
        lookup: Callable[[str], tuple[Instance, int]],
        strategy: str = "indexed",
        tracer: Any = None,
        vm: bool = True,
    ):
        self._lookup = lookup
        self._strategy = strategy
        self._tracer = tracer
        self._vm = vm
        self._lock = threading.Lock()
        #: (corpus, groups) ->
        #:     (generation, partition, evaluator, empty segment | None)
        self._cache: dict[tuple[str, int], list[Any]] = {}

    def slice_for(self, corpus: str, group: int, groups: int) -> ShardSlice:
        if groups < 1 or not (0 <= group < groups):
            raise BackendUnsupportedError(
                f"bad slice request: group {group} of {groups}"
            )
        instance, generation = self._lookup(corpus)
        key = (corpus, groups)
        with self._lock:
            cached = self._cache.get(key)
            if cached is not None and cached[0] == generation:
                _, partition, evaluator, empty = cached
            else:
                partition = partition_instance(instance, groups)
                evaluator = ShardEvaluator(
                    self._strategy, tracer=self._tracer, vm=self._vm
                )
                empty = None
                cached = [generation, partition, evaluator, empty]
                self._cache[key] = cached
            if group >= len(partition.segments):
                # A corpus with fewer top-level trees than groups cannot
                # be cut that finely; surplus groups own nothing and
                # answer every query with an empty slice, which keeps
                # placement uniform across corpora of any shape.
                if empty is None:
                    empty = _empty_segment(instance)
                    cached[3] = empty
                segment = empty
            else:
                segment = partition.segments[group]
        return ShardSlice(
            segment=segment,
            group=group,
            groups=groups,
            generation=generation,
            evaluator=evaluator,
        )

    def invalidate(self, corpus: str) -> None:
        """Drop every cached partition of ``corpus``.

        The generation check on lookup already catches normal churn;
        this exists for the one case content changes *without* a bump —
        a replication snapshot repair re-publishing the same generation
        with corrected regions."""
        with self._lock:
            for key in [k for k in self._cache if k[0] == corpus]:
                del self._cache[key]


def _empty_segment(instance: Instance) -> Segment:
    """A segment owning no positions and holding no regions — what a
    surplus group (more groups than top-level trees) evaluates against.
    The inverted ownership span makes ``owns()`` false everywhere, so
    match-point routing keeps nothing either."""
    hollow = Instance(
        {name: RegionSet(()) for name in instance.names},
        instance.word_index,
        validate=False,
    )
    return Segment(
        index=-1, instance=hollow, roots=(), own_left=1, own_right=0
    )


def _route_points(slice_: ShardSlice, patterns: set[str]) -> dict[str, tuple]:
    """This slice's share of each pattern's occurrences, by ownership of
    the left endpoint — the backend-side half of the executor's router."""
    if not patterns:
        return {}
    word_index = slice_.segment.instance.word_index
    if not isinstance(word_index, TextWordIndex):
        raise BackendUnsupportedError(
            "match points need a text-backed word index"
        )
    segment = slice_.segment
    routed: dict[str, tuple] = {}
    for pattern in patterns:
        kept = []
        for region in word_index.match_points(pattern):
            if not segment.owns(region.left):
                continue
            if segment.own_right is not None and region.right > segment.own_right:
                # The occurrence crosses a cut: no slice can host it
                # soundly, so the whole query must go single-process.
                raise BackendUnsupportedError(
                    f"occurrence of {pattern!r} spans a partition cut"
                )
            kept.append(region)
        routed[pattern] = tuple(kept)
    return routed


def evaluate_slice(
    slice_: ShardSlice,
    queries: Sequence[str],
    want: str,
    bounds: Mapping[str, int | None],
    deadline: float | None = None,
) -> tuple[list[Any], float]:
    """Evaluate query texts against one slice; the shared core of both
    backend implementations (and of the HTTP server's ``/shard/query``).

    Returns ``(payload, seconds)`` with ``payload`` per
    :class:`BackendResult`.
    """
    if want not in ("sets", "exchange"):
        raise BackendUnsupportedError(f"unknown want {want!r}")
    exprs = [parse(text) for text in queries]
    node_bounds: dict[A.Expr, int | None] = {}
    patterns: set[str] = set()
    for expr in exprs:
        for node in A.walk(expr):
            if isinstance(node, A.MatchPoints):
                patterns.add(node.pattern)
            elif isinstance(node, (A.Preceding, A.Following)):
                if node not in node_bounds:
                    resolved = bounds.get(to_text(node), _UNRESOLVED)
                    if resolved is not _UNRESOLVED:
                        node_bounds[node] = resolved
    points = _route_points(slice_, patterns)
    memo: dict[A.Expr, Any] = {}
    payload: list[Any] = []
    started = perf_counter()
    for expr in exprs:
        rewritten = rewrite(expr, node_bounds, points)
        result = slice_.evaluator.evaluate_with(
            rewritten, slice_.segment.instance, memo, deadline=deadline
        )
        if want == "exchange":
            payload.append(list(summarize_result(result)))
        else:
            payload.append([[r.left, r.right] for r in result])
    return payload, perf_counter() - started


def slice_checksum(slice_: ShardSlice) -> str:
    """A content checksum of one slice's served region data: sha256 of
    the canonical JSON of every region set in the slice's segment
    instance, by name.  Generation-independent — two replicas at
    different generations with identical content compare equal — so the
    anti-entropy sweep flags real divergence, not clock skew."""
    import hashlib
    import json as _json

    instance = slice_.segment.instance
    content = {
        name: [[r.left, r.right] for r in instance.region_set(name)]
        for name in sorted(instance.names)
    }
    canonical = _json.dumps(content, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


#: Sentinel distinguishing "no bound sent" from "bound is None (empty)".
_UNRESOLVED = object()
