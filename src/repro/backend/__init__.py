"""Multi-process shard backends behind a frontier.

PR 5 made sharded evaluation parallel *within* one process; this
package promotes shard groups to independent **backends** so the
serving layer survives the death of a whole evaluation process:

* :mod:`repro.backend.base` — the transport-agnostic
  :class:`ShardBackend` interface, plus the slice machinery both
  implementations share: a backend serves group ``g`` of a corpus
  partitioned into ``G`` groups, evaluating rewritten sub-plans (the
  same text-protocol exchange rounds the in-process executor runs)
  against its restricted sub-instance;
* :mod:`repro.backend.inprocess` — backends as plain objects in the
  frontier's process (the refactored form of the executor's pools, and
  the test/bench harness for failover and hedging);
* :mod:`repro.backend.httpclient` — backends as separate ``repro
  serve`` subprocesses spoken to over ``POST /shard/query`` with
  deadline and trace context propagated in headers;
* :mod:`repro.backend.ring` — consistent-hash placement of
  ``(corpus, group)`` onto R of N backend nodes;
* :mod:`repro.backend.frontier` — scatter-gather with per-backend
  circuit breakers, replica failover, and hedged requests;
* :mod:`repro.backend.supervisor` — subprocess lifecycle: spawn, watch,
  respawn after a crash (and SIGKILL on demand, for the chaos harness);
* :mod:`repro.backend.replication` — WAL log shipping of committed
  ingest batches to every backend replica, generation-floor reads,
  batch/snapshot catch-up for lagging nodes, and the periodic
  anti-entropy checksum sweep.

``docs/server.md`` ("Topology & failover") is the operator guide;
``docs/robustness.md`` documents the backend-kill chaos mode.
"""

from repro.backend.base import (
    BackendResult,
    ShardBackend,
    SliceProvider,
    evaluate_slice,
    slice_checksum,
)
from repro.backend.frontier import BackendNode, FrontierExecutor, FrontierStats
from repro.backend.httpclient import HTTPBackend
from repro.backend.inprocess import InProcessBackend
from repro.backend.replication import ReplicationCoordinator
from repro.backend.ring import HashRing
from repro.backend.supervisor import BackendSupervisor

__all__ = [
    "BackendNode",
    "BackendResult",
    "BackendSupervisor",
    "FrontierExecutor",
    "FrontierStats",
    "HTTPBackend",
    "HashRing",
    "InProcessBackend",
    "ReplicationCoordinator",
    "ShardBackend",
    "SliceProvider",
    "evaluate_slice",
    "slice_checksum",
]
