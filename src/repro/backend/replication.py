"""WAL log shipping to backend replicas, catch-up, and anti-entropy.

The missing half of live ingestion over a multi-process topology: the
frontier owns the WAL (durability) and the backends own serving slices
(availability), so every committed batch must travel from the one to
the many before reads can rely on the replicas.  The
:class:`ReplicationCoordinator` runs frontier-side and does three jobs:

**Shipping.**  ``ship()`` is called synchronously from the ingest
commit path, while the corpus writer lock is still held — shipping in
commit order is what lets a replica apply batches as a pure sequence
with no reordering buffer.  Each batch becomes a checksummed record
(the same canonical-JSON sha256 discipline as the WAL's on-disk
records), is serialized once, passed through the ``replication.ship``
fault point *per node* (so an injected corruption hits one replica's
copy, not the commit), re-parsed, and delivered via
``replicate_apply``.  The receiving node recomputes the checksum and
rejects mismatches; the coordinator treats any non-``applied`` answer
as that node falling behind — **a ship failure never fails the
ingest**; the write was already durable in the frontier's WAL.

**Catch-up.**  A bounded per-corpus history of shipped batches lets a
briefly-absent node (respawned, partitioned, or one that rejected a
corrupt copy) be walked forward batch-by-batch.  When the gap is older
than the history window, the node gets a full state snapshot (the same
``LiveCorpus.state`` shape the WAL checkpoints) at the current
generation instead.  Catch-up runs from the periodic sweep, and is
re-entrant per ``(node, corpus)``.

**Anti-entropy.**  The sweep also audits nodes that *claim* to be
current: ``replicate_status`` returns a content checksum per shard
group (:func:`~repro.backend.base.slice_checksum` — generation-
independent, so it compares served bytes, not clocks), and the
coordinator compares them against checksums computed from the
frontier's own authoritative slices.  Divergence — a replica at the
right generation serving the wrong regions — is repaired with a
snapshot re-ship and counted in ``replication_divergence_total``.

Lag feeds health: a node more than ``lag_limit`` generations behind
(or unreachable) raises ``replication:<node>`` pressure on the health
monitor, which degrades the service the same way an open corpus
breaker does.  Reads are protected independently of all of this by the
generation floor (see ``ShardBackend.shard_query``); the coordinator's
job is to make replicas *catch up to* the floor, not to gate reads.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from time import perf_counter
from typing import Any, Callable, Mapping, Sequence

from repro.errors import BackendError, FaultInjected
from repro.faults import registry as _faults
from repro.ingest.wal import wal_checksum
from repro.obs import metrics as _m
from repro.obs.trace import maybe_span

__all__ = ["ReplicationCoordinator"]

#: Shipped batches remembered per corpus for batch-wise catch-up; a gap
#: older than this is repaired with a full snapshot instead.
HISTORY_LIMIT = 256


class _NodeLedger:
    """What the coordinator believes about one node's replicas."""

    def __init__(self) -> None:
        #: corpus -> generation the node acked last.
        self.applied: dict[str, int] = {}
        self.reachable = True
        self.last_error: str | None = None
        self.catchups = 0

    def snapshot(self) -> dict[str, Any]:
        return {
            "applied": dict(sorted(self.applied.items())),
            "reachable": self.reachable,
            "last_error": self.last_error,
            "catchups": self.catchups,
        }


class ReplicationCoordinator:
    """See the module docstring.

    ``state_provider(corpus)`` must return a consistent
    ``(state, generation)`` pair — the service backs it with the corpus
    writer lock, so the snapshot and the generation it publishes always
    agree.  ``checksum_provider(corpus)`` returns the frontier's own
    ``(generation, {group: checksum})`` truth for anti-entropy.
    ``corpora()`` enumerates the writable corpora worth sweeping.
    """

    def __init__(
        self,
        frontier: Any,
        corpora: Callable[[], Sequence[str]],
        state_provider: Callable[[str], tuple[dict[str, Any], int]],
        checksum_provider: Callable[[str], tuple[int, dict[int, str]]],
        metrics: Any,
        tracer: Any = None,
        health: Any = None,
        interval: float = 2.0,
        lag_limit: int = 8,
        history_limit: int = HISTORY_LIMIT,
        generation_provider: Callable[[str], int] | None = None,
    ):
        self.frontier = frontier
        self._corpora = corpora
        self._state_provider = state_provider
        self._checksum_provider = checksum_provider
        self._generation_provider = generation_provider
        self._tracer = tracer
        self._health = health
        self.interval = float(interval)
        self.lag_limit = int(lag_limit)
        self._history_limit = int(history_limit)
        #: corpus -> deque of (generation, seq, ops) in commit order.
        self._history: dict[str, deque] = {}
        self._ledgers: dict[str, _NodeLedger] = {
            node.id: _NodeLedger() for node in frontier.nodes
        }
        self._lock = threading.RLock()
        self._shipped = metrics.counter(
            _m.REPLICATION_BATCHES_SHIPPED_TOTAL,
            "WAL batches shipped to backend replicas, by outcome",
        )
        self._ship_failures = metrics.counter(
            _m.REPLICATION_SHIP_FAILURES_TOTAL,
            "per-node ship attempts that did not end in an apply",
        )
        self._apply_seconds = metrics.histogram(
            _m.REPLICATION_APPLY_SECONDS,
            help="round-trip seconds for one replicate_apply",
        )
        self._lag_gauge = metrics.gauge(
            _m.REPLICATION_LAG,
            "generations a node's worst replica trails the frontier",
        )
        self._catchups = metrics.counter(
            _m.REPLICATION_CATCHUPS_TOTAL,
            "catch-up repairs, by kind (batches | snapshot)",
        )
        self._sweeps = metrics.counter(
            _m.REPLICATION_ANTI_ENTROPY_RUNS_TOTAL,
            "anti-entropy sweep passes completed",
        )
        self._divergence = metrics.counter(
            _m.REPLICATION_DIVERGENCE_TOTAL,
            "checksum divergences found (and repaired) by the sweep",
        )
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start the periodic catch-up / anti-entropy sweep thread."""
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, name="repro-replication", daemon=True
        )
        self._thread.start()

    def close(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.sweep()
            except Exception:  # pragma: no cover - sweep must never die
                pass

    # ------------------------------------------------------------------
    # The ship path (called from the ingest commit, writer lock held).
    # ------------------------------------------------------------------

    def ship(
        self,
        corpus: str,
        seq: int,
        ops: Sequence[Mapping[str, Any]],
        generation: int,
    ) -> dict[str, Any]:
        """Ship one committed batch to every node serving ``corpus``.

        Returns ``{"nodes", "applied", "failed"}`` counts for the ingest
        response.  Never raises: a node that cannot take the batch is
        left to the sweep's catch-up.
        """
        record = {
            "corpus": corpus,
            "seq": int(seq),
            "generation": int(generation),
            "ops": [dict(op) for op in ops],
        }
        record["checksum"] = wal_checksum(record)
        wire = json.dumps(
            record, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        with self._lock:
            history = self._history.setdefault(
                corpus, deque(maxlen=self._history_limit)
            )
            history.append((record["generation"], record["seq"], record["ops"]))
        nodes = self._nodes_for(corpus)
        applied = failed = 0
        with maybe_span(
            self._tracer,
            "replication.ship",
            corpus=corpus,
            generation=generation,
            nodes=len(nodes),
        ):
            for node in nodes:
                if self._ship_one(node, corpus, wire, generation):
                    applied += 1
                else:
                    failed += 1
        self._refresh_lag()
        return {"nodes": len(nodes), "applied": applied, "failed": failed}

    def _ship_one(
        self, node: Any, corpus: str, wire: bytes, generation: int
    ) -> bool:
        """One node's copy of the batch: fault point, parse, deliver."""
        ledger = self._ledger(node.id)
        try:
            payload = _faults.fire("replication.ship", bytes(wire))
        except FaultInjected as exc:
            self._ship_failures.inc(node=node.id, reason="fault")
            ledger.last_error = str(exc)
            return False
        started = perf_counter()
        try:
            shipped = json.loads((payload or b"").decode("utf-8"))
            answer = node.backend.replicate_apply(
                corpus=str(shipped["corpus"]),
                seq=int(shipped["seq"]),
                ops=shipped["ops"],
                generation=int(shipped["generation"]),
                checksum=str(shipped["checksum"]),
            )
        except (ValueError, KeyError, TypeError, UnicodeDecodeError) as exc:
            # The injected corruption mangled the copy before it left:
            # same outcome as a remote checksum rejection.
            self._ship_failures.inc(node=node.id, reason="corrupt")
            ledger.last_error = f"corrupt ship payload: {exc}"
            return False
        except BackendError as exc:
            self._ship_failures.inc(node=node.id, reason="transport")
            ledger.reachable = False
            ledger.last_error = str(exc)
            return False
        self._apply_seconds.observe(perf_counter() - started, node=node.id)
        ledger.reachable = True
        status = str(answer.get("status", ""))
        with self._lock:
            ledger.applied[corpus] = max(
                ledger.applied.get(corpus, 0), int(answer.get("applied", 0))
            )
        if status in ("applied", "stale"):
            ledger.last_error = None
            self._shipped.inc(node=node.id, outcome=status)
            return True
        self._ship_failures.inc(node=node.id, reason=status or "unknown")
        ledger.last_error = f"replicate_apply answered {status or '?'}"
        return False

    # ------------------------------------------------------------------
    # Catch-up and anti-entropy.
    # ------------------------------------------------------------------

    def sweep(self) -> dict[str, Any]:
        """One catch-up + anti-entropy pass over every (node, corpus).

        Safe to call directly (tests, chaos harnesses) as well as from
        the background thread.
        """
        report: dict[str, Any] = {"corpora": {}, "repaired": 0}
        for corpus in list(self._corpora()):
            truth_gen, truth_sums = self._checksum_provider(corpus)
            corpus_report = {}
            for node in self._nodes_for(corpus):
                outcome = self._audit(node, corpus, truth_gen, truth_sums)
                corpus_report[node.id] = outcome
                if outcome in ("caught_up", "repaired"):
                    report["repaired"] += 1
            report["corpora"][corpus] = corpus_report
        self._refresh_lag()
        self._sweeps.inc()
        return report

    def _audit(
        self,
        node: Any,
        corpus: str,
        truth_gen: int,
        truth_sums: Mapping[int, str],
    ) -> str:
        ledger = self._ledger(node.id)
        try:
            status = node.backend.replicate_status(corpus, self.frontier.groups)
        except BackendError as exc:
            ledger.reachable = False
            ledger.last_error = str(exc)
            return "unreachable"
        ledger.reachable = True
        applied = int(status.get("applied", 0))
        with self._lock:
            ledger.applied[corpus] = applied
        if applied < truth_gen:
            return self._catch_up(node, corpus, applied, truth_gen)
        if applied > truth_gen:
            # A replica from a previous frontier incarnation (the
            # frontier restarted and its generation counter reset):
            # its number line no longer means anything — reset it.
            return self._snapshot_ship(node, corpus)
        reported = {
            int(group): checksum
            for group, checksum in dict(status.get("checksums", {})).items()
        }
        diverged = [
            group
            for group, checksum in truth_sums.items()
            if reported.get(group) != checksum
        ]
        if applied == truth_gen and diverged:
            self._divergence.inc(node=node.id, corpus=corpus)
            ledger.last_error = (
                f"divergence in groups {sorted(diverged)} at "
                f"generation {applied}"
            )
            return self._snapshot_ship(node, corpus)
        return "current"

    def _catch_up(
        self, node: Any, corpus: str, applied: int, target: int
    ) -> str:
        """Walk one lagging node forward: batches when the history still
        covers its gap, a full snapshot otherwise."""
        ledger = self._ledger(node.id)
        ledger.catchups += 1
        with self._lock:
            history = list(self._history.get(corpus, ()))
        missing = [
            entry for entry in history if applied < entry[0] <= target
        ]
        covered = bool(missing) and missing[0][0] == applied + 1 and all(
            b[0] == a[0] + 1 for a, b in zip(missing, missing[1:])
        ) and missing[-1][0] >= target
        if not covered:
            return self._snapshot_ship(node, corpus)
        with maybe_span(
            self._tracer,
            "replication.catchup",
            node=node.id,
            corpus=corpus,
            batches=len(missing),
        ):
            for generation, seq, ops in missing:
                record = {
                    "corpus": corpus,
                    "seq": int(seq),
                    "generation": int(generation),
                    "ops": ops,
                }
                record["checksum"] = wal_checksum(record)
                wire = json.dumps(
                    record, sort_keys=True, separators=(",", ":")
                ).encode("utf-8")
                if not self._ship_one(node, corpus, wire, generation):
                    # Mid-walk failure (restarted again, new corruption):
                    # fall back to the unconditional repair.
                    return self._snapshot_ship(node, corpus)
        self._catchups.inc(node=node.id, kind="batches")
        return "caught_up"

    def _snapshot_ship(self, node: Any, corpus: str) -> str:
        """Replace the node's replica wholesale at the current
        generation — the repair of last resort, always sufficient."""
        ledger = self._ledger(node.id)
        state, generation = self._state_provider(corpus)
        try:
            with maybe_span(
                self._tracer,
                "replication.snapshot",
                node=node.id,
                corpus=corpus,
                generation=generation,
            ):
                answer = node.backend.replicate_snapshot(
                    corpus, state, generation
                )
        except BackendError as exc:
            ledger.reachable = False
            ledger.last_error = str(exc)
            self._ship_failures.inc(node=node.id, reason="snapshot")
            return "unreachable"
        ledger.reachable = True
        ledger.last_error = None
        with self._lock:
            ledger.applied[corpus] = int(answer.get("applied", generation))
        self._catchups.inc(node=node.id, kind="snapshot")
        return "repaired"

    # ------------------------------------------------------------------
    # Lag accounting.
    # ------------------------------------------------------------------

    def _refresh_lag(self) -> None:
        """Worst-corpus lag per node -> gauge + health pressure."""
        for node in self.frontier.nodes:
            ledger = self._ledger(node.id)
            worst = 0
            for corpus in list(self._corpora()):
                truth_gen, _ = self._truth_generation(corpus)
                with self._lock:
                    applied = ledger.applied.get(corpus, 0)
                worst = max(worst, truth_gen - applied)
            if not ledger.reachable:
                worst = max(worst, self.lag_limit + 1)
            self._lag_gauge.set(worst, node=node.id)
            if self._health is not None:
                self._health.set_pressure(
                    f"replication:{node.id}", worst > self.lag_limit
                )

    def _truth_generation(self, corpus: str) -> tuple[int, None]:
        with self._lock:
            history = self._history.get(corpus)
            if history:
                return history[-1][0], None
        # No batch shipped yet this process: whatever the frontier's
        # published generation says.
        try:
            if self._generation_provider is not None:
                return int(self._generation_provider(corpus)), None
            generation, _ = self._checksum_provider(corpus)
        except Exception:  # pragma: no cover - corpus dropped mid-walk
            generation = 0
        return generation, None

    def lag(self, node_id: str, corpus: str) -> int:
        truth, _ = self._truth_generation(corpus)
        with self._lock:
            ledger = self._ledgers.get(node_id)
            applied = ledger.applied.get(corpus, 0) if ledger else 0
        return max(0, truth - applied)

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """The ``/backends`` replication block."""
        with self._lock:
            nodes = {
                node_id: ledger.snapshot()
                for node_id, ledger in sorted(self._ledgers.items())
            }
            history = {
                corpus: len(entries)
                for corpus, entries in sorted(self._history.items())
            }
        return {
            "interval": self.interval,
            "lag_limit": self.lag_limit,
            "history_limit": self._history_limit,
            "history": history,
            "nodes": nodes,
        }

    # ------------------------------------------------------------------

    def _ledger(self, node_id: str) -> _NodeLedger:
        with self._lock:
            ledger = self._ledgers.get(node_id)
            if ledger is None:
                ledger = self._ledgers[node_id] = _NodeLedger()
            return ledger

    def _nodes_for(self, corpus: str) -> list[Any]:
        """Every node serving at least one group of ``corpus``, in a
        stable order."""
        seen: dict[str, Any] = {}
        for group in range(self.frontier.groups):
            for node in self.frontier.replicas_for(corpus, group):
                seen.setdefault(node.id, node)
        return [seen[node_id] for node_id in sorted(seen)]
