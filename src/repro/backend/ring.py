"""Consistent-hash placement of shard groups onto backend nodes.

A classic hash ring with virtual nodes: each backend id is hashed onto
the ring ``vnodes`` times, and a key's replica set is the first ``n``
*distinct* nodes clockwise from the key's hash.  Placement is a pure
function of the node-id set, so the frontier and any observer (the
``/backends`` endpoint, tests) agree on who serves ``(corpus, group)``
without coordination, and adding or removing one node moves only the
keys adjacent to its vnodes.

Hashing uses :mod:`hashlib` (md5, not for security — for a stable,
platform-independent 64-bit ring position; Python's builtin ``hash`` is
salted per process, which would scramble placement between frontier
restarts).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable

__all__ = ["HashRing"]


def _position(text: str) -> int:
    return int.from_bytes(
        hashlib.md5(text.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """Immutable after construction; see the module docstring."""

    def __init__(self, node_ids: Iterable[str], vnodes: int = 64):
        if vnodes < 1:
            raise ValueError("vnodes must be at least 1")
        self.node_ids = tuple(dict.fromkeys(node_ids))
        if not self.node_ids:
            raise ValueError("a hash ring needs at least one node")
        points: list[tuple[int, str]] = []
        for node in self.node_ids:
            for v in range(vnodes):
                points.append((_position(f"{node}#{v}"), node))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [node for _, node in points]

    def __len__(self) -> int:
        return len(self.node_ids)

    def nodes_for(self, key: str, n: int = 1) -> list[str]:
        """The first ``n`` distinct nodes clockwise from ``key`` (all of
        them, in ring order, when ``n`` exceeds the node count)."""
        n = min(max(1, n), len(self.node_ids))
        start = bisect.bisect_left(self._points, _position(key))
        chosen: list[str] = []
        seen: set[str] = set()
        for i in range(len(self._owners)):
            node = self._owners[(start + i) % len(self._owners)]
            if node not in seen:
                seen.add(node)
                chosen.append(node)
                if len(chosen) == n:
                    break
        return chosen
