"""Shard backends living in the frontier's own process.

The refactored descendant of the shard executor's pools: each
:class:`InProcessBackend` is one logical node of the topology, serving
any ``(corpus, group)`` slice from a shared :class:`SliceProvider`.
The frontier treats it exactly like a remote backend — breakers,
failover, and hedging all apply — which is what makes single-process
deployments, the test suite, and the hedging benchmark exercise the
same code paths as the subprocess topology.

Two plain attributes exist purely as fault hooks for tests, benches,
and chaos scenarios (real injected faults use the ``backend.rpc``
registry point, which fires frontier-side for every transport):

* ``inject_latency`` — seconds slept before evaluating, the "slow
  replica" the hedging benchmark measures against;
* ``fail_requests`` — the next N calls raise
  :class:`~repro.errors.BackendError`, a dead-replica stand-in.
"""

from __future__ import annotations

from time import sleep
from typing import Any, Mapping, Sequence

from repro.backend.base import (
    BackendResult,
    ShardBackend,
    SliceProvider,
    evaluate_slice,
    slice_checksum,
)
from repro.errors import BackendError, ReplicaLaggingError
from repro.obs.trace import maybe_span

__all__ = ["InProcessBackend"]


class InProcessBackend(ShardBackend):
    """See the module docstring."""

    def __init__(self, node_id: str, slices: SliceProvider, tracer: Any = None):
        self.node_id = node_id
        self._slices = slices
        self._tracer = tracer
        self.inject_latency = 0.0
        self.fail_requests = 0

    def shard_query(
        self,
        corpus: str,
        group: int,
        groups: int,
        queries: Sequence[str],
        want: str,
        bounds: Mapping[str, int | None],
        deadline: float | None = None,
        trace: Mapping[str, Any] | None = None,
        floor: int = 0,
    ) -> BackendResult:
        if self.fail_requests > 0:
            self.fail_requests -= 1
            raise BackendError(f"backend {self.node_id}: injected failure")
        if self.inject_latency > 0:
            sleep(self.inject_latency)
        slice_ = self._slices.slice_for(corpus, group, groups)
        if floor > 0 and slice_.generation < floor:
            # Cannot happen in a healthy in-process topology (slices
            # come from the frontier's own handles) — but the contract
            # is uniform, so tests can drive the lagging path here too.
            raise ReplicaLaggingError(corpus, slice_.generation, floor)
        # The span lands directly in the frontier's tracer (same
        # process, contextvars carried the parent in), mirroring the
        # ``backend.query`` span a subprocess ships back for adoption.
        with maybe_span(
            self._tracer, "backend.query", node=self.node_id, group=group
        ):
            payload, seconds = evaluate_slice(
                slice_, queries, want, bounds, deadline=deadline
            )
        return BackendResult(
            payload=payload,
            generation=slice_.generation,
            seconds=seconds,
            node=self.node_id,
        )

    # ------------------------------------------------------------------
    # Replication: an in-process node reads the frontier's own corpus
    # handles, so every committed batch is visible the moment it is
    # installed — shipping is acknowledged as already-applied.
    # ------------------------------------------------------------------

    def replicate_apply(
        self,
        corpus: str,
        seq: int,
        ops: Sequence[Mapping[str, Any]],
        generation: int,
        checksum: str,
    ) -> dict[str, Any]:
        return {"corpus": corpus, "applied": generation, "status": "applied"}

    def replicate_snapshot(
        self, corpus: str, state: Mapping[str, Any], generation: int
    ) -> dict[str, Any]:
        return {"corpus": corpus, "applied": generation, "status": "applied"}

    def replicate_status(self, corpus: str, groups: int) -> dict[str, Any]:
        checksums = {}
        applied = 0
        for group in range(groups):
            slice_ = self._slices.slice_for(corpus, group, groups)
            applied = slice_.generation
            checksums[group] = slice_checksum(slice_)
        return {"corpus": corpus, "applied": applied, "checksums": checksums}

    def describe(self) -> dict[str, Any]:
        return {"node": self.node_id, "transport": "inprocess"}
