"""The frontier: scatter sub-plans to backends, survive their deaths.

:class:`FrontierExecutor` mirrors the in-process
:class:`~repro.shard.ShardExecutor` round for round — exchange rounds
folding two scalars per ordering node, then a final scatter and an
order-preserving k-way merge — but each shard group's task goes to a
**backend node** chosen by consistent hashing, with three layers of
robustness per call:

1. **Per-backend circuit breakers** — a node that keeps failing stops
   being asked (its breaker opens), is re-probed on a timer, and its
   replicas absorb the traffic meanwhile;
2. **Replica failover** — each ``(corpus, group)`` maps to ``R``
   distinct nodes in ring order; a failed or breaker-open replica
   means trying the next, and only when *every* replica of some group
   is gone does the frontier raise
   :class:`~repro.errors.BackendUnavailableError` (the query service
   then degrades to local single-process evaluation — complete and
   correct, just not distributed);
3. **Hedged requests** — when the primary replica has not answered
   within its own recent latency quantile, the same call is issued to
   the next replica and the first answer wins.  Hedges are metered by
   a budget (a fraction of primary calls) so tail tolerance cannot
   double the request volume.

Deadlines and trace context propagate into every call; backend span
subtrees are adopted under the frontier's current span, so one stitched
trace crosses the process hop.  The ``backend.rpc`` fault point fires
frontier-side per call attempt, covering both transports.
"""

from __future__ import annotations

import contextvars
import threading
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from time import monotonic, perf_counter
from typing import Any, Mapping, Sequence

from repro.algebra import ast as A
from repro.algebra.printer import to_text
from repro.backend.base import ShardBackend
from repro.backend.ring import HashRing
from repro.core.region import Region
from repro.core.regionset import RegionSet
from repro.errors import (
    BackendError,
    BackendUnavailableError,
    BackendUnsupportedError,
    FaultInjected,
    QueryTimeout,
    ReplicaLaggingError,
)
from repro.faults import registry as _faults
from repro.faults.retry import CircuitBreaker
from repro.obs import context as _trace_context
from repro.shard.merge import merge_region_sets
from repro.shard.planner import classify

__all__ = ["BackendNode", "FrontierExecutor", "FrontierStats"]

#: Latency samples kept per node for the hedge-trigger quantile.
_LATENCY_WINDOW = 64


class BackendNode:
    """One backend plus its frontier-side health state."""

    def __init__(self, backend: ShardBackend, breaker: CircuitBreaker):
        self.backend = backend
        self.id = backend.node_id
        self.breaker = breaker
        self._lock = threading.Lock()
        self._latencies: list[float] = []
        self._next = 0
        self.requests = 0

    def observe(self, seconds: float) -> None:
        with self._lock:
            self.requests += 1
            if len(self._latencies) < _LATENCY_WINDOW:
                self._latencies.append(seconds)
            else:
                self._latencies[self._next] = seconds
                self._next = (self._next + 1) % _LATENCY_WINDOW
    def latency_quantile(self, fraction: float) -> float | None:
        """The windowed latency quantile, or ``None`` with no samples."""
        with self._lock:
            if not self._latencies:
                return None
            ordered = sorted(self._latencies)
        rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
        return ordered[rank]

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            samples = sorted(self._latencies)
            requests = self.requests
        quantile = lambda f: (  # noqa: E731 - tiny local helper
            round(samples[min(len(samples) - 1, round(f * (len(samples) - 1)))] * 1e3, 3)
            if samples
            else None
        )
        return {
            **self.backend.describe(),
            "breaker": self.breaker.snapshot(),
            "requests": requests,
            "latency_ms": {"p50": quantile(0.50), "p95": quantile(0.95)},
        }


@dataclass
class FrontierStats:
    """Accounting for one :meth:`FrontierExecutor.run`."""

    groups: int
    rounds: int = 0
    hedges: int = 0
    hedge_wins: int = 0
    failovers: int = 0
    breaker_skips: int = 0
    nodes_used: list[str] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "groups": self.groups,
            "rounds": self.rounds,
            "hedges": self.hedges,
            "hedge_wins": self.hedge_wins,
            "failovers": self.failovers,
            "nodes": sorted(set(self.nodes_used)),
        }


class _HedgeBudget:
    """Token meter: hedges may not exceed ``budget`` × primary calls."""

    def __init__(self, budget: float):
        self.budget = budget
        self._lock = threading.Lock()
        self._primaries = 0
        self._hedges = 0

    def record_primary(self) -> None:
        with self._lock:
            self._primaries += 1

    def take(self) -> bool:
        if self.budget <= 0:
            return False
        with self._lock:
            if self._hedges + 1 <= self.budget * max(1, self._primaries):
                self._hedges += 1
                return True
            return False

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return {"primaries": self._primaries, "hedges": self._hedges}


class FrontierExecutor:
    """See the module docstring."""

    def __init__(
        self,
        nodes: Sequence[BackendNode],
        groups: int,
        replicas: int = 1,
        hedge_quantile: float = 0.95,
        hedge_min_seconds: float = 0.05,
        hedge_budget: float = 0.1,
        metrics: Any = None,
        tracer: Any = None,
    ):
        if groups < 1:
            raise ValueError("the frontier needs at least one shard group")
        if not nodes:
            raise ValueError("the frontier needs at least one backend node")
        self.nodes = list(nodes)
        self.groups = groups
        self.replicas = min(max(1, replicas), len(self.nodes))
        self.hedge_quantile = hedge_quantile
        self.hedge_min_seconds = hedge_min_seconds
        self._budget = _HedgeBudget(hedge_budget)
        self.tracer = tracer
        self._by_id = {node.id: node for node in self.nodes}
        self._ring = HashRing([node.id for node in self.nodes])
        # Group fan-out and hedged calls run on separate pools so a
        # hedge can never deadlock behind the group tasks that need it.
        self._group_pool = ThreadPoolExecutor(
            max_workers=max(2, groups), thread_name_prefix="repro-frontier"
        )
        self._call_pool = ThreadPoolExecutor(
            max_workers=max(4, 2 * groups + 2), thread_name_prefix="repro-hedge"
        )
        self._requests = self._rpc_seconds = None
        self._failovers = self._hedges = self._hedge_wins = None
        if metrics is not None:
            from repro.obs.metrics import (
                BACKEND_FAILOVERS_TOTAL,
                BACKEND_HEDGE_WINS_TOTAL,
                BACKEND_HEDGES_TOTAL,
                BACKEND_REQUESTS_TOTAL,
                BACKEND_RPC_SECONDS,
            )

            self._requests = metrics.counter(
                BACKEND_REQUESTS_TOTAL, help="backend RPCs by node and outcome"
            )
            self._rpc_seconds = metrics.histogram(BACKEND_RPC_SECONDS)
            self._failovers = metrics.counter(BACKEND_FAILOVERS_TOTAL)
            self._hedges = metrics.counter(BACKEND_HEDGES_TOTAL)
            self._hedge_wins = metrics.counter(BACKEND_HEDGE_WINS_TOTAL)

    # ------------------------------------------------------------------

    def close(self) -> None:
        self._group_pool.shutdown(wait=False, cancel_futures=True)
        self._call_pool.shutdown(wait=False, cancel_futures=True)
        for node in self.nodes:
            node.backend.close()

    def replicas_for(self, corpus: str, group: int) -> list[BackendNode]:
        """The ring-ordered replica set serving ``(corpus, group)``."""
        ids = self._ring.nodes_for(f"{corpus}|{group}", self.replicas)
        return [self._by_id[node_id] for node_id in ids]

    def placement(self, corpora: Sequence[str]) -> dict[str, dict[str, list[str]]]:
        return {
            corpus: {
                str(group): [n.id for n in self.replicas_for(corpus, group)]
                for group in range(self.groups)
            }
            for corpus in corpora
        }

    def snapshot(self) -> dict[str, Any]:
        return {
            "groups": self.groups,
            "replicas": self.replicas,
            "hedge": {
                "quantile": self.hedge_quantile,
                "min_seconds": self.hedge_min_seconds,
                "budget": self._budget.budget,
                **self._budget.snapshot(),
            },
            "nodes": [node.snapshot() for node in self.nodes],
        }

    # ------------------------------------------------------------------
    # The query path.
    # ------------------------------------------------------------------

    def run(
        self,
        corpus: str,
        expr: A.Expr,
        deadline: float | None = None,
        floor: int = 0,
    ) -> tuple[RegionSet, FrontierStats]:
        """Evaluate ``expr`` over all shard groups of ``corpus``.

        Same result as single-process evaluation.  ``floor`` stamps
        every backend call with the read's generation floor (see
        :meth:`~repro.backend.base.ShardBackend.shard_query`); a replica
        behind the floor fails over like any other backend failure, so
        the caller never reads a generation older than the one its
        writes were acknowledged at.  Raises
        :class:`~repro.errors.BackendUnsupportedError` (caller must
        evaluate locally), :class:`~repro.errors.BackendUnavailableError`
        (caller should evaluate locally and mark the response degraded),
        or :class:`~repro.errors.QueryTimeout`.
        """
        deadline_at = monotonic() + deadline if deadline is not None else None
        stats = FrontierStats(groups=self.groups)
        trace = _trace_context.current()
        trace_dict = trace.to_dict() if trace is not None else None
        plan = classify(expr)
        stats.rounds = plan.rounds
        bounds_text: dict[str, int | None] = {}
        for round_no in range(1, plan.rounds + 1):
            nodes_in_round = plan.nodes_in_round(round_no)
            rights = list(dict.fromkeys(b.node.right for b in nodes_in_round))
            texts = [to_text(right) for right in rights]
            per_group = self._scatter(
                corpus, texts, "exchange", dict(bounds_text), deadline_at,
                trace_dict, stats, floor,
            )
            for j, right in enumerate(rights):
                max_left: int | None = None
                min_right: int | None = None
                for group_payload in per_group:
                    ml, mr = group_payload[j]
                    if ml is not None and (max_left is None or ml > max_left):
                        max_left = ml
                    if mr is not None and (min_right is None or mr < min_right):
                        min_right = mr
                for b in nodes_in_round:
                    if b.node.right == right:
                        bounds_text[to_text(b.node)] = (
                            max_left
                            if isinstance(b.node, A.Preceding)
                            else min_right
                        )
        per_group = self._scatter(
            corpus,
            [to_text(expr)],
            "sets",
            dict(bounds_text),
            deadline_at,
            trace_dict,
            stats,
            floor,
        )
        merged = merge_region_sets(
            [
                RegionSet(Region(int(l), int(r)) for l, r in payload[0])
                for payload in per_group
            ]
        )
        return merged, stats

    # ------------------------------------------------------------------

    def _scatter(
        self, corpus, texts, want, bounds, deadline_at, trace, stats, floor=0
    ) -> list[list[Any]]:
        """One parallel phase: every group's payload, in group order."""
        if self.groups == 1:
            return [
                self._call_group(
                    corpus, 0, texts, want, bounds, deadline_at, trace, stats, floor
                )
            ]
        futures = []
        for group in range(self.groups):
            ctx = contextvars.copy_context()
            futures.append(
                self._group_pool.submit(
                    ctx.run,
                    self._call_group,
                    corpus,
                    group,
                    texts,
                    want,
                    bounds,
                    deadline_at,
                    trace,
                    stats,
                    floor,
                )
            )
        outs: list[list[Any]] = []
        error: BaseException | None = None
        for future in futures:
            try:
                outs.append(future.result())
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                error = error or exc
        if error is not None:
            raise error
        return outs

    def _call_group(
        self, corpus, group, texts, want, bounds, deadline_at, trace, stats, floor=0
    ) -> list[Any]:
        """One group's payload: hedged first wave, then failover."""
        order = self.replicas_for(corpus, group)
        tried: set[str] = set()
        attempts: list[str] = []
        primary = self._next_replica(order, tried, attempts, stats)
        if primary is not None:
            payload = self._hedged_call(
                primary, order, tried, attempts,
                corpus, group, texts, want, bounds, deadline_at, trace, stats, floor,
            )
            if payload is not None:
                return payload
        while True:
            node = self._next_replica(order, tried, attempts, stats)
            if node is None:
                break
            tried.add(node.id)
            try:
                payload = self._invoke(
                    node, corpus, group, texts, want, bounds, deadline_at,
                    trace, stats, floor,
                )
                node.breaker.record_success()
                return payload
            except (BackendUnsupportedError, QueryTimeout):
                raise
            except BackendError as exc:
                node.breaker.record_failure()
                self._count_failover(corpus)
                stats.failovers += 1
                attempts.append(f"{node.id}: {exc}")
        raise BackendUnavailableError(corpus, group, attempts)

    def _next_replica(self, order, tried, attempts, stats) -> BackendNode | None:
        """The next untried replica whose breaker admits a call.

        ``allow()`` is consulted immediately before use — a half-open
        breaker's single probe slot must go to a call that actually
        happens."""
        for node in order:
            if node.id in tried:
                continue
            if node.breaker.allow():
                return node
            tried.add(node.id)
            stats.breaker_skips += 1
            attempts.append(f"{node.id}: breaker open")
        return None

    def _hedged_call(
        self, primary, order, tried, attempts,
        corpus, group, texts, want, bounds, deadline_at, trace, stats, floor=0,
    ) -> list[Any] | None:
        """First wave: primary, plus one hedge if it dawdles.  Returns
        the winning payload, or ``None`` when the whole wave failed
        (sequential failover then continues over untried replicas)."""
        tried.add(primary.id)
        self._budget.record_primary()
        ctx = contextvars.copy_context()
        futures: dict[Future, BackendNode] = {
            self._call_pool.submit(
                ctx.run, self._invoke,
                primary, corpus, group, texts, want, bounds, deadline_at,
                trace, stats, floor,
            ): primary
        }
        hedge_node: BackendNode | None = None
        delay = self._hedge_delay(primary, deadline_at)
        if delay is not None:
            done, _ = wait(set(futures), timeout=delay)
            if not done:
                hedge_node = self._next_replica(order, tried, attempts, stats)
                if hedge_node is not None and self._budget.take():
                    tried.add(hedge_node.id)
                    stats.hedges += 1
                    if self._hedges is not None:
                        self._hedges.inc(corpus=corpus)
                    ctx2 = contextvars.copy_context()
                    futures[
                        self._call_pool.submit(
                            ctx2.run, self._invoke,
                            hedge_node, corpus, group, texts, want, bounds,
                            deadline_at, trace, stats, floor,
                        )
                    ] = hedge_node
                elif hedge_node is not None:
                    # Candidate consulted but not called: give back its
                    # untried status so failover can still use it.
                    tried.discard(hedge_node.id)
                    hedge_node = None
        pending = set(futures)
        winner: list[Any] | None = None
        while pending and winner is None:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                node = futures[future]
                try:
                    payload = future.result()
                except (BackendUnsupportedError, QueryTimeout):
                    self._absorb_losers(pending, futures)
                    raise
                except BackendError as exc:
                    node.breaker.record_failure()
                    self._count_failover(corpus)
                    stats.failovers += 1
                    attempts.append(f"{node.id}: {exc}")
                    continue
                node.breaker.record_success()
                if winner is None:
                    winner = payload
                    if node is hedge_node:
                        stats.hedge_wins += 1
                        if self._hedge_wins is not None:
                            self._hedge_wins.inc(corpus=corpus)
        self._absorb_losers(pending, futures)
        return winner

    def _absorb_losers(self, pending, futures) -> None:
        """Record late outcomes of abandoned calls on their breakers."""
        for future in pending:
            node = futures[future]

            def settle(f: Future, node: BackendNode = node) -> None:
                exc = f.exception()
                if exc is None:
                    node.breaker.record_success()
                elif isinstance(exc, BackendError):
                    node.breaker.record_failure()

            future.add_done_callback(settle)

    def _hedge_delay(self, node: BackendNode, deadline_at) -> float | None:
        """How long to give the primary before hedging (None = never)."""
        if self._budget.budget <= 0 or len(self.nodes) < 2:
            return None
        quantile = node.latency_quantile(self.hedge_quantile)
        delay = max(self.hedge_min_seconds, quantile or 0.0)
        if deadline_at is not None:
            remaining = deadline_at - monotonic()
            if remaining <= 0:
                return None
            delay = min(delay, remaining)
        return delay

    def _count_failover(self, corpus: str) -> None:
        if self._failovers is not None:
            self._failovers.inc(corpus=corpus)

    # ------------------------------------------------------------------

    def _invoke(
        self, node, corpus, group, texts, want, bounds, deadline_at, trace,
        stats, floor=0,
    ) -> list[Any]:
        """One attempt against one node: fault point, deadline math,
        latency/metric accounting, and trace adoption."""
        if _faults._active is not None:
            try:
                _faults._active.fire("backend.rpc")
            except FaultInjected as exc:
                if self._requests is not None:
                    self._requests.inc(node=node.id, outcome="fault")
                raise BackendError(f"backend {node.id}: {exc}") from exc
        remaining: float | None = None
        if deadline_at is not None:
            remaining = deadline_at - monotonic()
            if remaining <= 0:
                raise QueryTimeout(0.0)
        started = perf_counter()
        try:
            result = node.backend.shard_query(
                corpus, group, self.groups, texts, want, bounds,
                deadline=remaining, trace=trace, floor=floor,
            )
        except BackendError as exc:
            if self._requests is not None:
                outcome = (
                    "lagging" if isinstance(exc, ReplicaLaggingError) else "error"
                )
                self._requests.inc(node=node.id, outcome=outcome)
            raise
        seconds = perf_counter() - started
        node.observe(seconds)
        stats.nodes_used.append(node.id)
        if self._requests is not None:
            self._requests.inc(node=node.id, outcome="ok")
        if self._rpc_seconds is not None:
            self._rpc_seconds.observe(seconds)
        if (
            result.span is not None
            and self.tracer is not None
            and getattr(self.tracer, "enabled", False)
        ):
            adopted = self.tracer.adopt(result.span)
            if adopted is not None:
                adopted.set("node", node.id)
        return result.payload
