"""Bounded enumeration of region-algebra expressions.

The inexpressibility arguments of Section 5 are universally quantified
over expressions ("assume there is an algebra expression e computing
…").  The test suite complements the paper's proof technique with brute
force: enumerate *every* core expression up to a size bound and check
that none of them computes the target operator on the counter-example
family.  The optimizer's exhaustive search (Section 3: "we need to check
only a finite number of expressions") reuses the same generator.

Enumeration is by operation count, with light canonical pruning — the
commutative operators only combine operands in one order — which shrinks
the space without removing any expressible query.
"""

from __future__ import annotations

from itertools import product
from typing import Iterable, Iterator, Sequence

from repro.algebra import ast as A

__all__ = ["enumerate_expressions", "count_expressions"]

_COMMUTATIVE = (A.Union, A.Intersection)
_NONCOMMUTATIVE_CORE = (
    A.Difference,
    A.Including,
    A.IncludedIn,
    A.Preceding,
    A.Following,
)
_EXTENDED = (A.DirectlyIncluding, A.DirectlyIncluded)


def enumerate_expressions(
    names: Sequence[str],
    max_ops: int,
    patterns: Sequence[str] = (),
    extended: bool = False,
) -> Iterator[A.Expr]:
    """Yield every expression with at most ``max_ops`` operator nodes.

    ``names`` are the available region names, ``patterns`` the selection
    patterns allowed under ``σ``.  With ``extended`` the direct operators
    ``⊃_d``/``⊂_d`` are included (used by the Prop 5.5 independence
    tests).  Commutative duplicates ``a ∪ b`` / ``b ∪ a`` are emitted
    once.
    """
    for by_size in _tables(names, max_ops, patterns, extended):
        yield from by_size


def count_expressions(
    names: Sequence[str],
    max_ops: int,
    patterns: Sequence[str] = (),
    extended: bool = False,
) -> int:
    """The number of expressions :func:`enumerate_expressions` yields."""
    return sum(
        len(level) for level in _tables(names, max_ops, patterns, extended)
    )


def _tables(
    names: Sequence[str],
    max_ops: int,
    patterns: Sequence[str],
    extended: bool,
) -> list[list[A.Expr]]:
    """``tables[k]`` holds every expression with exactly ``k`` operators."""
    binary_ops: tuple[type[A.BinaryOp], ...] = _NONCOMMUTATIVE_CORE
    if extended:
        binary_ops = binary_ops + _EXTENDED

    tables: list[list[A.Expr]] = [[A.NameRef(name) for name in names]]
    for k in range(1, max_ops + 1):
        level: list[A.Expr] = []
        # σ_p over any expression of size k-1.
        for pattern in patterns:
            level.extend(A.Select(pattern, child) for child in tables[k - 1])
        # Binary operators splitting the remaining budget.
        for left_size in range(0, k):
            right_size = k - 1 - left_size
            lefts, rights = tables[left_size], tables[right_size]
            for op in binary_ops:
                level.extend(op(l, r) for l, r in product(lefts, rights))
            for op in _COMMUTATIVE:
                if left_size < right_size:
                    level.extend(op(l, r) for l, r in product(lefts, rights))
                elif left_size == right_size:
                    # Same-size operands: emit each unordered pair once.
                    for i, l in enumerate(lefts):
                        level.extend(op(l, rights[j]) for j in range(i, len(rights)))
        tables.append(level)
    return tables


def distinct_on(
    expressions: Iterable[A.Expr],
    fingerprint,
) -> Iterator[A.Expr]:
    """Filter ``expressions`` to one representative per fingerprint value.

    ``fingerprint`` maps an expression to a hashable summary (typically
    its results on a panel of probe instances); only the first expression
    per summary is yielded.  Used to cut the optimizer's candidate space.
    """
    seen: set = set()
    for expr in expressions:
        key = fingerprint(expr)
        if key not in seen:
            seen.add(key)
            yield expr
