"""Parser for the textual region-algebra query language.

The concrete syntax (shared with :mod:`repro.algebra.printer`)::

    expr       := additive
    additive   := intersect (("union"|"+"|"|"|"∪"|"except"|"-"|"−") intersect)*
    intersect  := structural (("isect"|"^"|"&"|"∩") structural)*
    structural := postfix [STRUCTOP structural]          # right-associative
    STRUCTOP   := "containing"|"⊃" | "within"|"⊂" | "before"|"<"
                | "after"|">" | "dcontaining"|"⊃d" | "dwithin"|"⊂d"
    postfix    := primary ("@" STRING)*
    primary    := NAME | STRING | "empty" | "(" expr ")"
                | "bi" "(" expr "," expr "," expr ")"
                | "select" "(" STRING "," expr ")"

PAT-style extras: a bare STRING is a word query (the pattern's match
points), and ``A not STRUCTOP B`` is sugar for ``A except (A STRUCTOP
B)`` (one-way: the printer emits the core form).  Nesting is bounded by
:data:`MAX_NESTING_DEPTH` so pathological inputs fail cleanly.

Examples::

    Name within Proc_header within Proc within Program
    Proc containing (Var @ "x")
    bi(Proc, Var @ "x", Var @ "y")

The structural operators are right-associative to match the paper's
convention that omitted parentheses group from the right.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.algebra import ast as A
from repro.errors import ParseError

__all__ = ["parse"]


@dataclass(frozen=True, slots=True)
class _Token:
    kind: str  # NAME, STRING, OP, KEYWORD, EOF
    value: str
    position: int


_KEYWORDS = {
    "union",
    "except",
    "isect",
    "containing",
    "within",
    "before",
    "after",
    "dcontaining",
    "dwithin",
    "bi",
    "select",
    "empty",
    "not",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<dop>⊃d|⊂d)
  | (?P<op>[()@,+\-^|&<>∪∩−⊃⊂])
    """,
    re.VERBOSE,
)

_SYMBOL_ALIASES = {
    "+": "union",
    "|": "union",
    "∪": "union",
    "-": "except",
    "−": "except",
    "^": "isect",
    "&": "isect",
    "∩": "isect",
    "⊃": "containing",
    "⊂": "within",
    "<": "before",
    ">": "after",
    "⊃d": "dcontaining",
    "⊂d": "dwithin",
}

_STRUCTURAL = {
    "containing": A.Including,
    "within": A.IncludedIn,
    "before": A.Preceding,
    "after": A.Following,
    "dcontaining": A.DirectlyIncluding,
    "dwithin": A.DirectlyIncluded,
}


def _lex(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError(f"unexpected character {text[pos]!r}", pos)
        if match.lastgroup == "string":
            raw = match.group("string")
            value = raw[1:-1].replace('\\"', '"').replace("\\\\", "\\")
            tokens.append(_Token("STRING", value, pos))
        elif match.lastgroup == "name":
            value = match.group("name")
            kind = "KEYWORD" if value in _KEYWORDS else "NAME"
            tokens.append(_Token(kind, value, pos))
        elif match.lastgroup in ("op", "dop"):
            raw = match.group(match.lastgroup)
            value = _SYMBOL_ALIASES.get(raw, raw)
            kind = "KEYWORD" if value in _KEYWORDS else "OP"
            tokens.append(_Token(kind, value, pos))
        pos = match.end()
    tokens.append(_Token("EOF", "", len(text)))
    return tokens


#: Maximum parenthesis/operator nesting accepted by the parser.  A
#: recursive-descent parser consumes Python stack per level; the guard
#: turns pathological inputs into a clean ParseError instead of a
#: RecursionError (found by the fuzz tests).
MAX_NESTING_DEPTH = 75


class _Parser:
    def __init__(self, text: str):
        self._tokens = _lex(text)
        self._index = 0
        self._depth = 0

    @property
    def _current(self) -> _Token:
        return self._tokens[self._index]

    def _advance(self) -> _Token:
        token = self._current
        self._index += 1
        return token

    def _expect(self, kind: str, value: str | None = None) -> _Token:
        token = self._current
        if token.kind != kind or (value is not None and token.value != value):
            wanted = value if value is not None else kind
            raise ParseError(
                f"expected {wanted!r}, found {token.value or 'end of input'!r}",
                token.position,
            )
        return self._advance()

    def _keyword_is(self, *values: str) -> bool:
        token = self._current
        return token.kind == "KEYWORD" and token.value in values

    # -- grammar -------------------------------------------------------

    def parse(self) -> A.Expr:
        expr = self._additive()
        if self._current.kind != "EOF":
            raise ParseError(
                f"unexpected trailing input {self._current.value!r}",
                self._current.position,
            )
        return expr

    def _additive(self) -> A.Expr:
        self._depth += 1
        if self._depth > MAX_NESTING_DEPTH:
            raise ParseError(
                f"query nested deeper than {MAX_NESTING_DEPTH} levels",
                self._current.position,
            )
        try:
            expr = self._intersect()
            while self._keyword_is("union", "except"):
                op = self._advance().value
                right = self._intersect()
                expr = (
                    A.Union(expr, right)
                    if op == "union"
                    else A.Difference(expr, right)
                )
            return expr
        finally:
            self._depth -= 1

    def _intersect(self) -> A.Expr:
        expr = self._structural()
        while self._keyword_is("isect"):
            self._advance()
            expr = A.Intersection(expr, self._structural())
        return expr

    def _structural(self, chain_depth: int = 0) -> A.Expr:
        if chain_depth > 4 * MAX_NESTING_DEPTH:
            raise ParseError(
                f"structural chain longer than {4 * MAX_NESTING_DEPTH}",
                self._current.position,
            )
        left = self._postfix()
        if self._keyword_is("not"):
            # PAT-style negated structural operators: ``A not containing B``
            # is sugar for ``A except (A containing B)``.
            self._advance()
            token = self._current
            if not self._keyword_is(*_STRUCTURAL):
                raise ParseError(
                    f"expected a structural operator after 'not', "
                    f"found {token.value or 'end of input'!r}",
                    token.position,
                )
            op = self._advance().value
            right = self._structural(chain_depth + 1)
            return A.Difference(left, _STRUCTURAL[op](left, right))
        if self._keyword_is(*_STRUCTURAL):
            op = self._advance().value
            right = self._structural(chain_depth + 1)  # right-associative
            return _STRUCTURAL[op](left, right)
        return left

    def _postfix(self) -> A.Expr:
        expr = self._primary()
        while self._current.kind == "OP" and self._current.value == "@":
            self._advance()
            pattern = self._expect("STRING")
            expr = A.Select(pattern.value, expr)
        return expr

    def _primary(self) -> A.Expr:
        token = self._current
        if token.kind == "NAME":
            self._advance()
            return A.NameRef(token.value)
        if token.kind == "STRING":
            # A bare pattern is a PAT word query: its match points.
            self._advance()
            return A.MatchPoints(token.value)
        if self._keyword_is("empty"):
            self._advance()
            return A.Empty()
        if token.kind == "OP" and token.value == "(":
            self._advance()
            expr = self._additive()
            self._expect("OP", ")")
            return expr
        if self._keyword_is("bi"):
            self._advance()
            self._expect("OP", "(")
            source = self._additive()
            self._expect("OP", ",")
            first = self._additive()
            self._expect("OP", ",")
            second = self._additive()
            self._expect("OP", ")")
            return A.BothIncluded(source, first, second)
        if self._keyword_is("select"):
            self._advance()
            self._expect("OP", "(")
            pattern = self._expect("STRING")
            self._expect("OP", ",")
            child = self._additive()
            self._expect("OP", ")")
            return A.Select(pattern.value, child)
        raise ParseError(
            f"expected an expression, found {token.value or 'end of input'!r}",
            token.position,
        )


def parse(text: str) -> A.Expr:
    """Parse query text into an expression tree.

    Raises :class:`~repro.errors.ParseError` with the offending position
    on malformed input.
    """
    return _Parser(text).parse()
