"""Abstract syntax of region-algebra expressions.

The node types mirror Definition 2.2 of the paper::

    e -> R_i | e ∪ e | e ∩ e | e − e
       | e ⊃ e | e ⊂ e | e < e | e > e | σ_p(e) | (e)

plus the three *extended* operators studied in Sections 5 and 6:

* :class:`DirectlyIncluding` / :class:`DirectlyIncluded` — ``⊃_d``/``⊂_d``,
* :class:`BothIncluded` — the ternary ``BI`` operator of Section 5.2,

and an explicit :class:`Empty` literal, which the rewrite engine uses as
the normal form of expressions proven empty.

Expressions are immutable dataclasses; :func:`size` counts operator
nodes (the paper's ``|e|``), :func:`order_op_count` counts ``<``/``>``
occurrences (the ``k`` of Theorem 4.4), and :func:`is_core` tells whether
an expression stays inside the plain algebra of Definition 2.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

__all__ = [
    "Expr",
    "NameRef",
    "Empty",
    "Union",
    "Intersection",
    "Difference",
    "Including",
    "IncludedIn",
    "Preceding",
    "Following",
    "Select",
    "MatchPoints",
    "DirectlyIncluding",
    "DirectlyIncluded",
    "BothIncluded",
    "BinaryOp",
    "STRUCTURAL_OPS",
    "SET_OPS",
    "size",
    "order_op_count",
    "pattern_names",
    "region_names",
    "is_core",
    "children",
    "walk",
    "replace_child",
    "including_chain",
]


@dataclass(frozen=True, slots=True)
class Expr:
    """Base class of all expression nodes."""


@dataclass(frozen=True, slots=True)
class NameRef(Expr):
    """A region name ``R_i`` — the atoms of the algebra."""

    name: str


@dataclass(frozen=True, slots=True)
class Empty(Expr):
    """The empty region set (normal form for expressions proven empty)."""


@dataclass(frozen=True, slots=True)
class BinaryOp(Expr):
    """Shared shape for the binary operators."""

    left: Expr
    right: Expr


@dataclass(frozen=True, slots=True)
class Union(BinaryOp):
    """``e ∪ e``."""


@dataclass(frozen=True, slots=True)
class Intersection(BinaryOp):
    """``e ∩ e``."""


@dataclass(frozen=True, slots=True)
class Difference(BinaryOp):
    """``e − e``."""


@dataclass(frozen=True, slots=True)
class Including(BinaryOp):
    """``e ⊃ e`` — keep left regions strictly including some right region."""


@dataclass(frozen=True, slots=True)
class IncludedIn(BinaryOp):
    """``e ⊂ e`` — keep left regions strictly included in some right region."""


@dataclass(frozen=True, slots=True)
class Preceding(BinaryOp):
    """``e < e`` — keep left regions that precede some right region."""


@dataclass(frozen=True, slots=True)
class Following(BinaryOp):
    """``e > e`` — keep left regions that follow some right region."""


@dataclass(frozen=True, slots=True)
class Select(Expr):
    """``σ_p(e)`` — keep regions whose word index satisfies pattern ``p``."""

    pattern: str
    child: Expr


@dataclass(frozen=True, slots=True)
class MatchPoints(Expr):
    """The match points of a pattern — PAT's word-index queries.

    The full PAT algebra manipulates *match point* sets alongside region
    sets (Section 2.1); the paper's core algebra reaches the word index
    only through ``σ_p``, so this leaf is an engine extension: it is not
    part of the Definition 2.2 grammar (``is_core`` is false), has no
    FMFT translation, and needs a text-backed word index to evaluate.
    """

    pattern: str


@dataclass(frozen=True, slots=True)
class DirectlyIncluding(BinaryOp):
    """``e ⊃_d e`` (Section 5.1): strict inclusion with no instance region
    in between — the parent relation of the instance forest."""


@dataclass(frozen=True, slots=True)
class DirectlyIncluded(BinaryOp):
    """``e ⊂_d e`` (Section 5.1): the converse of ``⊃_d``."""


@dataclass(frozen=True, slots=True)
class BothIncluded(Expr):
    """``R BI (S, T)`` (Section 5.2): keep R-regions strictly including an
    S-region that precedes a T-region also strictly inside them."""

    source: Expr
    first: Expr
    second: Expr


SET_OPS = (Union, Intersection, Difference)
STRUCTURAL_OPS = (Including, IncludedIn, Preceding, Following)
_EXTENDED_OPS = (DirectlyIncluding, DirectlyIncluded, BothIncluded, MatchPoints)


def children(expr: Expr) -> tuple[Expr, ...]:
    """The immediate sub-expressions of a node."""
    if isinstance(expr, BinaryOp):
        return (expr.left, expr.right)
    if isinstance(expr, Select):
        return (expr.child,)
    if isinstance(expr, BothIncluded):
        return (expr.source, expr.first, expr.second)
    return ()


def walk(expr: Expr) -> Iterator[Expr]:
    """All nodes of the expression, pre-order."""
    yield expr
    for child in children(expr):
        yield from walk(child)


def replace_child(expr: Expr, index: int, new: Expr) -> Expr:
    """A copy of ``expr`` with its ``index``-th child replaced by ``new``."""
    if isinstance(expr, BinaryOp):
        if index == 0:
            return type(expr)(new, expr.right)
        if index == 1:
            return type(expr)(expr.left, new)
    elif isinstance(expr, Select) and index == 0:
        return Select(expr.pattern, new)
    elif isinstance(expr, BothIncluded):
        parts = [expr.source, expr.first, expr.second]
        parts[index] = new
        return BothIncluded(*parts)
    raise IndexError(f"{type(expr).__name__} has no child {index}")


def size(expr: Expr) -> int:
    """The paper's ``|e|``: the number of operations in the expression.

    Region names and the empty literal contribute 0; every operator node
    (including ``σ_p``) contributes 1.
    """
    total = 0
    for node in walk(expr):
        if not isinstance(node, (NameRef, Empty, MatchPoints)):
            total += 1
    return total


def order_op_count(expr: Expr) -> int:
    """The number of ``<`` and ``>`` operations — Theorem 4.4's ``k``."""
    return sum(1 for node in walk(expr) if isinstance(node, (Preceding, Following)))


def pattern_names(expr: Expr) -> frozenset[str]:
    """The set of patterns ``P`` appearing in selections of ``expr``."""
    return frozenset(
        node.pattern
        for node in walk(expr)
        if isinstance(node, (Select, MatchPoints))
    )


def region_names(expr: Expr) -> frozenset[str]:
    """The region names referenced by the expression."""
    return frozenset(node.name for node in walk(expr) if isinstance(node, NameRef))


def is_core(expr: Expr) -> bool:
    """True when the expression uses only Definition 2.2 operators."""
    return not any(isinstance(node, _EXTENDED_OPS) for node in walk(expr))


def including_chain(names: list[str], op: type[BinaryOp] = IncludedIn) -> Expr:
    """Build the right-grouped chain ``R1 op (R2 op (... op Rn))``.

    This is the shape of the paper's running example
    ``Name ⊂ Proc_header ⊂ Proc ⊂ Program`` and of the Section 6
    inclusion sequences.
    """
    if not names:
        raise ValueError("chain needs at least one region name")
    expr: Expr = NameRef(names[-1])
    for name in reversed(names[:-1]):
        expr = op(NameRef(name), expr)
    return expr
