"""Instrumented evaluation: per-operator cardinalities and timings.

``EXPLAIN ANALYZE`` for the region algebra: :func:`profile` evaluates an
expression while recording, for every node, its output cardinality and
cumulative wall time.  The report feeds the cost model's calibration
tests (estimated vs actual cardinalities) and makes the engine's
behaviour inspectable from the CLI and examples.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.algebra import ast as A
from repro.algebra.evaluator import Evaluator, Strategy
from repro.algebra.parser import parse
from repro.algebra.printer import to_text
from repro.core.instance import Instance
from repro.core.regionset import RegionSet

__all__ = ["NodeProfile", "QueryProfile", "profile"]


@dataclass(frozen=True)
class NodeProfile:
    """One evaluated node: its text, output size, and inclusive time."""

    expression: A.Expr
    cardinality: int
    seconds: float
    depth: int

    @property
    def text(self) -> str:
        return to_text(self.expression)


@dataclass
class QueryProfile:
    """The full per-node breakdown of one evaluation."""

    result: RegionSet
    nodes: list[NodeProfile] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return self.nodes[0].seconds if self.nodes else 0.0

    def hottest(self, count: int = 3) -> list[NodeProfile]:
        """The nodes with the largest inclusive times."""
        return sorted(self.nodes, key=lambda n: n.seconds, reverse=True)[:count]

    def __str__(self) -> str:  # pragma: no cover - display helper
        lines = []
        for node in self.nodes:
            indent = "  " * node.depth
            lines.append(
                f"{indent}{node.text}  -> {node.cardinality} regions, "
                f"{node.seconds * 1e6:.0f} µs"
            )
        return "\n".join(lines)


class _ProfilingEvaluator(Evaluator):
    """An evaluator that records every node evaluation, pre-order.

    Memoization is disabled so each node's inclusive time is attributed
    where it occurs in the tree.
    """

    def __init__(self, strategy: Strategy):
        super().__init__(strategy, memoize=False)
        self.records: list[NodeProfile] = []
        self._depth = 0

    def _eval(self, expr, instance, memo):
        slot = len(self.records)
        self.records.append(None)  # type: ignore[arg-type]  # reserve pre-order slot
        depth = self._depth
        self._depth += 1
        started = time.perf_counter()
        try:
            result = super()._eval(expr, instance, memo)
        finally:
            self._depth -= 1
        elapsed = time.perf_counter() - started
        self.records[slot] = NodeProfile(expr, len(result), elapsed, depth)
        return result


def profile(
    expr: A.Expr | str, instance: Instance, strategy: Strategy = "indexed"
) -> QueryProfile:
    """Evaluate ``expr`` and return the per-node breakdown."""
    if isinstance(expr, str):
        expr = parse(expr)
    evaluator = _ProfilingEvaluator(strategy)
    result = evaluator.evaluate(expr, instance)
    return QueryProfile(result=result, nodes=evaluator.records)
