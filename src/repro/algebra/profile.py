"""Instrumented evaluation: per-operator cardinalities and timings.

``EXPLAIN ANALYZE`` for the region algebra: :func:`profile` evaluates an
expression while recording, for every node, its output cardinality and
cumulative wall time.  The report feeds the cost model's calibration
tests (estimated vs actual cardinalities) and makes the engine's
behaviour inspectable from the CLI and examples.

Since the observability layer landed this is a thin view over a trace:
:func:`profile` runs the ordinary :class:`Evaluator` under an enabled
:class:`~repro.obs.trace.Tracer` and flattens the span tree, pre-order,
into :class:`NodeProfile` rows.  Memoization stays **on** — matching
production behaviour on DAG-shaped queries — so a repeated
sub-expression shows up as a cache hit (``cache_hit=True``, near-zero
time) rather than being re-timed as if the engine recomputed it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra import ast as A
from repro.algebra.evaluator import Evaluator, Strategy
from repro.algebra.parser import parse
from repro.algebra.printer import to_text
from repro.core.instance import Instance
from repro.core.regionset import RegionSet
from repro.obs.trace import Span, Tracer

__all__ = ["NodeProfile", "QueryProfile", "profile", "profile_from_span"]


@dataclass(frozen=True)
class NodeProfile:
    """One evaluated node: its text, output size, and inclusive time."""

    expression: A.Expr
    cardinality: int
    seconds: float
    depth: int
    cache_hit: bool = False

    @property
    def text(self) -> str:
        return to_text(self.expression)


@dataclass
class QueryProfile:
    """The full per-node breakdown of one evaluation."""

    result: RegionSet
    nodes: list[NodeProfile] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return self.nodes[0].seconds if self.nodes else 0.0

    @property
    def cache_hits(self) -> int:
        """Memoization hits across the whole evaluation."""
        return sum(1 for node in self.nodes if node.cache_hit)

    def hottest(self, count: int = 3) -> list[NodeProfile]:
        """The nodes with the largest inclusive times."""
        return sorted(self.nodes, key=lambda n: n.seconds, reverse=True)[:count]

    def __str__(self) -> str:  # pragma: no cover - display helper
        lines = []
        for node in self.nodes:
            indent = "  " * node.depth
            tag = " (cached)" if node.cache_hit else ""
            lines.append(
                f"{indent}{node.text}  -> {node.cardinality} regions, "
                f"{node.seconds * 1e6:.0f} µs{tag}"
            )
        return "\n".join(lines)


def profile_from_span(root: Span, result: RegionSet) -> QueryProfile:
    """Flatten an evaluator span tree into a :class:`QueryProfile`.

    Only ``eval.*`` spans carry node data; other spans (``query``,
    ``parse``, …) are transparent — their children are walked at the
    same depth.
    """
    nodes: list[NodeProfile] = []
    _flatten(root, 0, nodes)
    return QueryProfile(result=result, nodes=nodes)


def _flatten(span: Span, depth: int, out: list[NodeProfile]) -> None:
    if span.name.startswith("eval.") and "expression" in span.attributes:
        out.append(
            NodeProfile(
                expression=span.attributes["expression"],
                cardinality=span.attributes.get("cardinality", 0),
                seconds=span.duration,
                depth=depth,
                cache_hit=bool(span.attributes.get("cached", False)),
            )
        )
        depth += 1
    for child in span.children:
        _flatten(child, depth, out)


def profile(
    expr: A.Expr | str,
    instance: Instance,
    strategy: Strategy = "indexed",
    memoize: bool = True,
) -> QueryProfile:
    """Evaluate ``expr`` and return the per-node breakdown."""
    if isinstance(expr, str):
        expr = parse(expr)
    tracer = Tracer(enabled=True)
    evaluator = Evaluator(strategy, memoize=memoize, tracer=tracer)
    result = evaluator.evaluate(expr, instance)
    root = tracer.last_root
    if root is None:  # pragma: no cover - evaluate always opens a span
        return QueryProfile(result=result)
    return profile_from_span(root, result)
