"""Cost estimation for region-algebra expressions.

Section 3 of the paper assumes "a price function p estimating the
expected cost of an algebra expression" where "every operation adds some
cost".  Two models are provided:

* :func:`operation_count` — the purely syntactic ``|e|`` used by the
  optimization results (fewer operations ⇒ cheaper, the premise of the
  Section 2.2 rewriting example);
* :class:`CostModel` — a cardinality-aware estimator in the style of a
  relational optimizer: it propagates estimated set sizes bottom-up from
  per-name statistics and charges each operator for the (sorted-merge)
  work on its estimated inputs.  Monotone in operation count, so the
  optimizer's search bound stays valid.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra import ast as A
from repro.core.instance import Instance

__all__ = ["operation_count", "CostEstimate", "CostModel"]


def operation_count(expr: A.Expr) -> int:
    """The paper's price in its simplest form: the number of operations."""
    return A.size(expr)


@dataclass(frozen=True, slots=True)
class CostEstimate:
    """Estimated evaluation cost and output cardinality of an expression."""

    cost: float
    cardinality: float


@dataclass
class CostModel:
    """A simple statistics-driven cost model.

    ``name_sizes`` gives the cardinality of each region-name set; when
    built :meth:`from_instance` they are exact.  ``selectivity`` bounds
    every filtering operator's output as a fraction of its left input —
    a deliberately crude but monotone estimate (the paper's optimization
    argument only needs *some* price function where adding operations
    adds cost).
    """

    name_sizes: dict[str, float] = field(default_factory=dict)
    default_name_size: float = 1000.0
    selectivity: float = 0.5
    pattern_selectivity: float = 0.1
    operation_overhead: float = 1.0

    @classmethod
    def from_instance(cls, instance: Instance, **kwargs: float) -> "CostModel":
        sizes = {name: float(len(instance.region_set(name))) for name in instance.names}
        return cls(name_sizes=sizes, **kwargs)

    def estimate(self, expr: A.Expr) -> CostEstimate:
        """Estimated total cost and output cardinality for ``expr``."""
        if isinstance(expr, A.NameRef):
            return CostEstimate(0.0, self.name_sizes.get(expr.name, self.default_name_size))
        if isinstance(expr, A.Empty):
            return CostEstimate(0.0, 0.0)
        if isinstance(expr, A.MatchPoints):
            # A word query is one inverted-index probe; without corpus
            # statistics per pattern, guess like an unknown name scaled
            # by the pattern selectivity.
            return CostEstimate(
                0.0, self.default_name_size * self.pattern_selectivity
            )
        if isinstance(expr, A.Select):
            child = self.estimate(expr.child)
            return CostEstimate(
                child.cost + self.operation_overhead + child.cardinality,
                child.cardinality * self.pattern_selectivity,
            )
        if isinstance(expr, A.BothIncluded):
            source = self.estimate(expr.source)
            first = self.estimate(expr.first)
            second = self.estimate(expr.second)
            work = source.cardinality + first.cardinality + second.cardinality
            cost = (
                source.cost + first.cost + second.cost
                + self.operation_overhead + work
            )
            return CostEstimate(cost, source.cardinality * self.selectivity)
        if isinstance(expr, A.BinaryOp):
            left = self.estimate(expr.left)
            right = self.estimate(expr.right)
            work = left.cardinality + right.cardinality
            cost = left.cost + right.cost + self.operation_overhead + work
            if isinstance(expr, A.Union):
                out = left.cardinality + right.cardinality
            elif isinstance(expr, A.Intersection):
                out = min(left.cardinality, right.cardinality) * self.selectivity
            elif isinstance(expr, A.Difference):
                out = left.cardinality
            else:  # the structural semi-joins keep a fraction of the left side
                out = left.cardinality * self.selectivity
            return CostEstimate(cost, out)
        raise TypeError(f"cannot estimate {type(expr).__name__}")

    def price(self, expr: A.Expr) -> float:
        """The scalar price of ``expr`` under this model."""
        return self.estimate(expr).cost
