"""Evaluation of region-algebra expressions against instances.

Two interchangeable strategies implement Definition 2.3:

* ``"indexed"`` (the default) — the production engine.  Structural
  semi-joins run on sorted region arrays (see
  :mod:`repro.core.regionset`), the direct operators use the instance
  forest, and ``both-included`` uses two-sided containment windows over a
  sparse range-minimum table.  This reproduces the set-at-a-time
  efficiency the paper attributes to the PAT engine.
* ``"naive"`` — a literal transcription of the definitions, quadratic or
  cubic per operator.  It is the semantic oracle: the test suite checks
  the two strategies agree on randomly generated instances.

Common sub-expressions are evaluated once per query: results are memoized
on the (hashable, immutable) expression nodes for the duration of one
:meth:`Evaluator.evaluate` call.
"""

from __future__ import annotations

import threading
from bisect import bisect_left, bisect_right
from collections import OrderedDict
from dataclasses import dataclass
from time import monotonic, perf_counter
from typing import TYPE_CHECKING, Literal, Protocol, runtime_checkable

from repro.algebra import ast as A
from repro.algebra.parser import parse
from repro.core.instance import Instance
from repro.core.region import Region
from repro.core.regionset import RegionSet
from repro.core.sparse import RangeMin
from repro.core.wordindex import TextWordIndex
from repro.errors import EvaluationError, QueryCancelled, QueryTimeout
from repro.faults import registry as _faults
from repro.obs import context as _context

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.trace import Tracer

__all__ = ["Evaluator", "EvalStats", "evaluate", "Strategy", "CancelToken"]

Strategy = Literal["indexed", "naive"]


@runtime_checkable
class CancelToken(Protocol):
    """Anything with ``is_set()`` — e.g. :class:`threading.Event`."""

    def is_set(self) -> bool: ...  # pragma: no cover - protocol


@dataclass
class EvalStats:
    """Per-:meth:`Evaluator.evaluate` accounting (observed mode only).

    ``compiled`` marks that the call executed a :mod:`repro.vm` program
    rather than walking the AST.  The VM mirrors the interpreter's
    counts exactly: ``nodes_evaluated = instructions + cse_hits`` and
    ``memo_hits = cse_hits`` (a compile-time CSE register read is the
    same elided work as a memo-table hit).
    """

    nodes_evaluated: int = 0
    memo_hits: int = 0
    compiled: bool = False


#: Distinguishes "never compiled" from a cached ``None`` (compiler declined).
_PROGRAM_MISS = object()


class _Limits:
    """Per-call deadline/cancellation state, checked once per operator.

    Lives in the evaluator's thread-local slot for the duration of one
    :meth:`Evaluator.evaluate` call, so concurrent queries on a shared
    evaluator (the server's worker threads) never see each other's
    deadlines.
    """

    __slots__ = ("budget", "started", "deadline_at", "cancel")

    def __init__(self, budget: float | None, cancel: CancelToken | None):
        self.budget = budget
        self.cancel = cancel
        self.started = monotonic()
        self.deadline_at = (
            self.started + budget if budget is not None else None
        )

    def check(self) -> None:
        """Raise if the deadline passed or the token was cancelled."""
        if self.cancel is not None and self.cancel.is_set():
            raise QueryCancelled()
        if self.deadline_at is not None:
            now = monotonic()
            if now > self.deadline_at:
                raise QueryTimeout(self.budget, elapsed=now - self.started)


class _ContainmentWindow:
    """Pre-sorted view of a region set supporting containment probes.

    For a probe region ``r`` it answers: the minimum right endpoint over
    members with ``left ∈ [lo, hi]`` — the primitive both-included needs.
    """

    __slots__ = ("_lefts", "_range_min")

    def __init__(self, regions: RegionSet):
        ordered = regions.regions  # already sorted by (left, right)
        self._lefts = [r.left for r in ordered]
        self._range_min = RangeMin([r.right for r in ordered])

    def min_right_with_left_in(self, lo: int, hi: int, strict_lo: bool) -> int | None:
        i = (
            bisect_right(self._lefts, lo)
            if strict_lo
            else bisect_left(self._lefts, lo)
        )
        j = bisect_right(self._lefts, hi)
        return self._range_min.query(i, j)


def _both_included_indexed(
    source: RegionSet, first: RegionSet, second: RegionSet
) -> RegionSet:
    """``R BI (S, T)`` via two containment-window probes per R-region.

    For each ``r``: the best witness ``s`` is the strictly-contained
    S-region with the smallest right endpoint ``m``; ``r`` qualifies iff
    some T-region with ``left > m`` is strictly contained in ``r``.
    """
    if not source or not first or not second:
        return RegionSet.empty()
    s_window = _ContainmentWindow(first)
    t_window = _ContainmentWindow(second)
    out: list[Region] = []
    for r in source:
        m = s_window.min_right_with_left_in(r.left, r.right, strict_lo=False)
        # m == r.right can only be witnessed by s sharing r's right endpoint,
        # after which no contained t can start beyond it — treat as failure.
        if m is None or m >= r.right:
            continue
        t_min = t_window.min_right_with_left_in(m, r.right, strict_lo=True)
        if t_min is not None and t_min <= r.right:
            out.append(r)
    return RegionSet(out)


def _both_included_naive(
    source: RegionSet, first: RegionSet, second: RegionSet
) -> RegionSet:
    """Definition 5.2 transcribed literally (the oracle)."""
    out = []
    for r in source:
        if any(
            r.includes(s) and r.includes(t) and s.precedes(t)
            for s in first
            for t in second
        ):
            out.append(r)
    return RegionSet(out)


def _direct_including_naive(
    instance: Instance, r_set: RegionSet, s_set: RegionSet
) -> RegionSet:
    """``R ⊃_d S`` by quantifying over all instance regions (the oracle)."""
    universe = instance.all_regions()
    out = []
    for r in r_set:
        for s in s_set:
            if r.includes(s) and not any(
                r.includes(t) and t.includes(s) for t in universe
            ):
                out.append(r)
                break
    return RegionSet(out)


def _direct_included_naive(
    instance: Instance, r_set: RegionSet, s_set: RegionSet
) -> RegionSet:
    universe = instance.all_regions()
    out = []
    for r in r_set:
        for s in s_set:
            if s.includes(r) and not any(
                s.includes(t) and t.includes(r) for t in universe
            ):
                out.append(r)
                break
    return RegionSet(out)


class Evaluator:
    """Evaluates expressions against instances with a chosen strategy.

    ``memoize`` controls per-query caching of common sub-expressions;
    disabling it exists for the ablation benchmarks.

    ``tracer``/``metrics`` attach the observability layer: with either
    present, every node evaluation is timed into the
    ``eval_node_seconds{op=...}`` histogram, memo hits are counted, and
    (when the tracer is enabled) each node emits a span carrying its
    expression and output cardinality.  With both absent — the default —
    evaluation takes the original uninstrumented path; the only
    per-node overhead is one attribute check (see
    ``benchmarks/bench_e12_obs_overhead.py``).
    """

    #: Capacity of the per-evaluator compiled-program LRU cache.
    PROGRAM_CACHE_CAPACITY = 256

    def __init__(
        self,
        strategy: Strategy = "indexed",
        memoize: bool = True,
        tracer: "Tracer | None" = None,
        metrics: "MetricsRegistry | None" = None,
        vm: bool = True,
    ):
        if strategy not in ("indexed", "naive"):
            raise EvaluationError(f"unknown strategy {strategy!r}")
        self.strategy: Strategy = strategy
        self.memoize = memoize
        self.tracer = tracer
        self.metrics = metrics
        # The plan VM only implements the indexed operator semantics;
        # the naive strategy is the oracle and always interprets.
        self.vm_enabled = bool(vm) and strategy == "indexed"
        self._observed = tracer is not None or metrics is not None
        self._node_hist = None
        if self._observed:
            # Shadow the class-level _eval with the instrumented twin so
            # the uninstrumented hot path stays byte-for-byte the seed
            # code — no per-node "is observability on?" check at all.
            self._eval = self._eval_observed
        self._vm_compile_counter = None
        self._vm_fallback_counter = None
        self._vm_kernel_counter = None
        self._vm_exec_hist = None
        if metrics is not None:
            from repro.obs.metrics import (
                EVAL_NODE_SECONDS,
                VM_COMPILE_TOTAL,
                VM_EXEC_SECONDS,
                VM_FALLBACK_TOTAL,
                VM_KERNEL_INVOCATIONS_TOTAL,
            )

            self._node_hist = metrics.histogram(EVAL_NODE_SECONDS)
            self._vm_compile_counter = metrics.counter(VM_COMPILE_TOTAL)
            self._vm_fallback_counter = metrics.counter(VM_FALLBACK_TOTAL)
            self._vm_kernel_counter = metrics.counter(VM_KERNEL_INVOCATIONS_TOTAL)
            self._vm_exec_hist = metrics.histogram(VM_EXEC_SECONDS)
        # Compiled-program cache (expr -> Program, or None for plans the
        # compiler declined).  Engines build a fresh evaluator per index
        # generation, so the cache is generation-invalidated for free —
        # the same lifecycle as the Engine's CostModel cache.
        self._programs: "OrderedDict[A.Expr, object]" = OrderedDict()
        self._programs_lock = threading.Lock()
        # Per-thread call state (deadline/cancel limits, last stats), so
        # one evaluator instance is safe to share across server workers.
        self._local = threading.local()

    @property
    def last_stats(self) -> EvalStats | None:
        """Accounting for this thread's most recent ``evaluate`` call;
        ``None`` unless a tracer or metrics registry is attached."""
        return getattr(self._local, "stats", None)

    @last_stats.setter
    def last_stats(self, stats: EvalStats | None) -> None:
        self._local.stats = stats

    def evaluate(
        self,
        expr: A.Expr | str,
        instance: Instance,
        deadline: float | None = None,
        cancel: CancelToken | None = None,
    ) -> RegionSet:
        """The result ``e(I)`` of Definition 2.3.

        Accepts either an expression tree or query text (parsed first).

        ``deadline`` is a wall-clock budget in seconds for this call;
        when it runs out the evaluation aborts with
        :class:`~repro.errors.QueryTimeout`.  ``cancel`` is a
        :class:`threading.Event`-like token polled alongside the
        deadline; once set, evaluation aborts with
        :class:`~repro.errors.QueryCancelled`.  Both are checked
        cooperatively, once per operator evaluation, so an abort lands
        within one node of the trigger.  With neither given there is no
        per-node clock read.
        """
        if isinstance(expr, str):
            expr = parse(expr)
        limited = deadline is not None or cancel is not None
        if limited:
            if deadline is not None and deadline < 0:
                raise EvaluationError("deadline must be non-negative")
            self._local.limits = limits = _Limits(deadline, cancel)
        try:
            if limited:
                limits.check()  # an already-expired budget aborts up front
            program = self._vm_program(expr) if self.vm_enabled else None
            if program is not None:
                if not self._observed:
                    return self._run_program(program, instance)
                self.last_stats = stats = EvalStats(
                    nodes_evaluated=program.size + program.cse_hits,
                    memo_hits=program.cse_hits,
                    compiled=True,
                )
                result = self._run_program(program, instance)
            else:
                memo: dict[A.Expr, RegionSet] = {}
                if not self._observed:
                    return self._eval(expr, instance, memo)
                self.last_stats = stats = EvalStats()
                result = self._eval(expr, instance, memo)
        finally:
            if limited:
                self._local.limits = None
        if self.metrics is not None:
            from repro.obs.metrics import EVAL_NODES_TOTAL, MEMO_HITS_TOTAL

            self.metrics.counter(EVAL_NODES_TOTAL).inc(stats.nodes_evaluated)
            if stats.memo_hits:
                self.metrics.counter(MEMO_HITS_TOTAL).inc(stats.memo_hits)
        return result

    # ------------------------------------------------------------------
    # Compiled execution (repro.vm).
    # ------------------------------------------------------------------

    def compiled_program(self, expr: A.Expr) -> tuple[object, bool]:
        """``(program, was_cached)`` for ``expr``.

        ``program`` is ``None`` when the compiler declined the plan
        (unknown node type) — the miss is cached too, so the fallback
        decision is O(1) on repeat queries.
        """
        _MISS = _PROGRAM_MISS
        with self._programs_lock:
            program = self._programs.get(expr, _MISS)
            if program is not _MISS:
                self._programs.move_to_end(expr)
                if self._vm_compile_counter is not None:
                    self._vm_compile_counter.inc(outcome="hit")
                return program, True
        from repro.vm.compiler import compile_expr

        program = compile_expr(expr)
        if self._vm_compile_counter is not None:
            outcome = "compiled" if program is not None else "uncompilable"
            self._vm_compile_counter.inc(outcome=outcome)
        with self._programs_lock:
            self._programs[expr] = program
            while len(self._programs) > self.PROGRAM_CACHE_CAPACITY:
                self._programs.popitem(last=False)
        return program, False

    def program_cached(self, expr: A.Expr) -> bool:
        """Is a compiled program for ``expr`` already in the cache?"""
        with self._programs_lock:
            return self._programs.get(expr) is not None

    def _vm_program(self, expr: A.Expr):
        """The program to execute for this call, or ``None`` to fall back.

        Fallback rules: per-node detail tracing needs one span per AST
        node (the interpreter's shape), and ``memoize=False`` ablations
        must not silently regain CSE through registers.
        """
        fallback_reason = None
        if not self.memoize:
            fallback_reason = "memoize-off"
        else:
            tracer = self.tracer
            if tracer is not None and tracer.enabled and _context.detail_enabled():
                fallback_reason = "trace-detail"
        if fallback_reason is None:
            program, _cached = self.compiled_program(expr)
            if program is not None:
                return program
            fallback_reason = "uncompilable"
        if self._vm_fallback_counter is not None:
            self._vm_fallback_counter.inc(reason=fallback_reason)
        return None

    def _run_program(self, program, instance: Instance) -> RegionSet:
        from repro.vm.machine import execute

        limits = getattr(self._local, "limits", None)
        metrics = self.metrics
        tracer = self.tracer
        started = perf_counter() if metrics is not None else 0.0
        if tracer is not None and tracer.enabled:
            with tracer.span(
                "vm.execute",
                instructions=program.size,
                cse_hits=program.cse_hits,
            ) as span:
                result = execute(program, instance, limits, self._node_hist)
                span.set("cardinality", len(result))
        else:
            result = execute(program, instance, limits, self._node_hist)
        if metrics is not None:
            self._vm_exec_hist.observe(perf_counter() - started)
            kernel_counter = self._vm_kernel_counter
            for op, count in program.op_counts.items():
                kernel_counter.inc(count, op=op)
        return result

    # ------------------------------------------------------------------

    def _eval(
        self, expr: A.Expr, instance: Instance, memo: dict[A.Expr, RegionSet]
    ) -> RegionSet:
        if not self.memoize:
            return self._dispatch(expr, instance, memo)
        cached = memo.get(expr)
        if cached is not None:
            return cached
        result = self._dispatch(expr, instance, memo)
        memo[expr] = result
        return result

    def _eval_observed(
        self, expr: A.Expr, instance: Instance, memo: dict[A.Expr, RegionSet]
    ) -> RegionSet:
        """The instrumented twin of :meth:`_eval` (tracer/metrics set)."""
        stats = self.last_stats
        if stats is None:  # direct _eval call without evaluate()
            self.last_stats = stats = EvalStats()
        stats.nodes_evaluated += 1
        tracer = self.tracer
        # Per-operator detail is the expensive part of a trace, so it is
        # double-gated: the tracer must be on, and the active request's
        # head-sampling decision (if a request context exists) must say
        # yes.  The coarse request/shard skeleton is recorded regardless.
        tracing = (
            tracer is not None and tracer.enabled and _context.detail_enabled()
        )
        op = type(expr).__name__
        if self.memoize:
            cached = memo.get(expr)
            if cached is not None:
                stats.memo_hits += 1
                if tracing:
                    with tracer.span(
                        f"eval.{op}",
                        expression=expr,
                        cardinality=len(cached),
                        cached=True,
                    ):
                        pass
                return cached
        if tracing:
            with tracer.span(f"eval.{op}", expression=expr, cached=False) as span:
                started = perf_counter()
                result = self._dispatch(expr, instance, memo)
                elapsed = perf_counter() - started
                span.set("cardinality", len(result))
        else:
            started = perf_counter()
            result = self._dispatch(expr, instance, memo)
            elapsed = perf_counter() - started
        if self._node_hist is not None:
            self._node_hist.observe(elapsed, op=op)
        if self.memoize:
            memo[expr] = result
        return result

    def _dispatch(
        self, expr: A.Expr, instance: Instance, memo: dict[A.Expr, RegionSet]
    ) -> RegionSet:
        # Cooperative deadline/cancellation point: one thread-local read
        # per operator when no limits are active (see `evaluate`).
        limits = getattr(self._local, "limits", None)
        if limits is not None:
            limits.check()
        # Fault point (repro.faults): a module-attribute None check when
        # no registry is active, so the disabled cost stays in the noise.
        if _faults._active is not None:
            _faults._active.fire("evaluator.step")
        indexed = self.strategy == "indexed"
        if isinstance(expr, A.NameRef):
            return instance.region_set(expr.name)
        if isinstance(expr, A.Empty):
            return RegionSet.empty()
        if isinstance(expr, A.Select):
            child = self._eval(expr.child, instance, memo)
            pattern = expr.pattern
            return child.select(lambda r: instance.matches(r, pattern))
        if isinstance(expr, A.MatchPoints):
            word_index = instance.word_index
            if not isinstance(word_index, TextWordIndex):
                raise EvaluationError(
                    "match-point queries need a text-backed word index; "
                    "this instance carries an abstract label index"
                )
            return word_index.match_points(expr.pattern)
        if isinstance(expr, A.BothIncluded):
            source = self._eval(expr.source, instance, memo)
            first = self._eval(expr.first, instance, memo)
            second = self._eval(expr.second, instance, memo)
            fn = _both_included_indexed if indexed else _both_included_naive
            return fn(source, first, second)
        if isinstance(expr, A.BinaryOp):
            left = self._eval(expr.left, instance, memo)
            right = self._eval(expr.right, instance, memo)
            return self._binary(expr, left, right, instance, indexed)
        raise EvaluationError(f"cannot evaluate node {type(expr).__name__}")

    @staticmethod
    def _binary(
        expr: A.BinaryOp,
        left: RegionSet,
        right: RegionSet,
        instance: Instance,
        indexed: bool,
    ) -> RegionSet:
        kind = type(expr)
        if kind is A.Union:
            return left.union(right)
        if kind is A.Intersection:
            return left.intersection(right)
        if kind is A.Difference:
            return left.difference(right)
        if kind is A.Including:
            return left.including(right) if indexed else left.including_naive(right)
        if kind is A.IncludedIn:
            return (
                left.included_in(right) if indexed else left.included_in_naive(right)
            )
        if kind is A.Preceding:
            return left.preceding(right) if indexed else left.preceding_naive(right)
        if kind is A.Following:
            return left.following(right) if indexed else left.following_naive(right)
        if kind is A.DirectlyIncluding:
            if indexed:
                return instance.forest().directly_including(left, right)
            return _direct_including_naive(instance, left, right)
        if kind is A.DirectlyIncluded:
            if indexed:
                return instance.forest().directly_included(left, right)
            return _direct_included_naive(instance, left, right)
        raise EvaluationError(f"cannot evaluate operator {kind.__name__}")


_DEFAULT = Evaluator("indexed")
_ORACLE = Evaluator("naive")


def evaluate(
    expr: A.Expr | str,
    instance: Instance,
    strategy: Strategy = "indexed",
    deadline: float | None = None,
    cancel: CancelToken | None = None,
) -> RegionSet:
    """Module-level convenience wrapper around :class:`Evaluator`."""
    evaluator = _DEFAULT if strategy == "indexed" else _ORACLE
    return evaluator.evaluate(expr, instance, deadline=deadline, cancel=cancel)
