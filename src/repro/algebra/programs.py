"""The Section 6 while-programs: direct inclusion in an embedded language.

The paper shows that once the algebra is embedded in a host language with
assignment and ``while``, the inexpressible direct operators become
computable.  Two programs are transcribed here verbatim:

* :func:`direct_including_program` — the single-operator program that
  peels the layers of ``R1`` (``R1 − (R1 ⊂ R1)`` is the outermost layer)
  and, per layer, filters ``R2`` down to the regions with *no* instance
  region in between (``R2 − (R2 ⊂ All ⊂ R1_layer)``).
* :func:`direct_chain_program` — the one-loop program for a whole chain
  ``R1 ⊃_d R2 ⊃_d … ⊃_d Rn``, whose interference set is
  ``All = ⋃_T T(⊂T)^{#_e^T}`` with ``#_e^T`` the number of occurrences
  of ``T`` among ``R2 … R_{n-1}``.

Both report the number of loop iterations executed, which the paper notes
equals the nesting depth of the input — benchmark E9 measures exactly
that.  The ``universe_names`` parameter restricts the interference set
``All`` to a subset of region names, which is the Section 6 *minimal set*
optimization (benchmark E10); correctness then relies on the subset
hitting every RIG path between consecutive chain names.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.instance import Instance
from repro.core.regionset import RegionSet
from repro.errors import EvaluationError

__all__ = [
    "ProgramResult",
    "direct_including_program",
    "direct_included_program",
    "direct_chain_program",
    "direct_chain_by_iterated_program",
]


@dataclass(frozen=True, slots=True)
class ProgramResult:
    """Result of a while-program run, with its iteration count."""

    regions: RegionSet
    iterations: int


def _universe(instance: Instance, universe_names: Sequence[str] | None) -> RegionSet:
    """``All = ⋃_{T ∈ I'} T`` for the chosen subset of region names."""
    if universe_names is None:
        return instance.all_regions()
    out = RegionSet.empty()
    for name in universe_names:
        out = out.union(instance.region_set(name))
    return out


def direct_including_program(
    instance: Instance,
    r1: RegionSet,
    r2: RegionSet,
    universe_names: Sequence[str] | None = None,
) -> ProgramResult:
    """Compute ``R1 ⊃_d R2`` with the paper's layer-peeling loop.

    Transcription of the first Section 6 program; every step uses only
    core-algebra operations on region sets.
    """
    layer = r1.top_layer()  # R1 − (R1 ⊂ R1)
    rest = r1.difference(layer)
    result = RegionSet.empty()
    all_regions = _universe(instance, universe_names)
    iterations = 0
    while layer.including(r2):
        iterations += 1
        shielded = r2.included_in(all_regions.included_in(layer))
        result = result.union(layer.including(r2.difference(shielded)))
        layer = rest.top_layer()
        rest = rest.difference(layer)
    return ProgramResult(result, iterations)


def direct_included_program(
    instance: Instance,
    r1: RegionSet,
    r2: RegionSet,
    universe_names: Sequence[str] | None = None,
) -> ProgramResult:
    """Compute ``R1 ⊂_d R2`` — the analogous program the paper alludes to.

    Layers are peeled from the *including* side ``R2``; per layer, the
    kept ``R1`` regions are those not shielded from the layer by an
    intermediate region.
    """
    layer = r2.top_layer()
    rest = r2.difference(layer)
    result = RegionSet.empty()
    all_regions = _universe(instance, universe_names)
    iterations = 0
    while r1.included_in(layer):
        iterations += 1
        shielded = r1.included_in(all_regions.included_in(layer))
        result = result.union(r1.difference(shielded).included_in(layer))
        layer = rest.top_layer()
        rest = rest.difference(layer)
    return ProgramResult(result, iterations)


def _chain_interference_set(
    instance: Instance,
    chain: Sequence[str],
    universe_names: Sequence[str] | None,
) -> RegionSet:
    """``All = ⋃_{T} T(⊂T)^{#_e^T}``.

    ``#_e^T`` counts the occurrences of ``T`` among the *interior* names
    ``R2 … R_{n-1}``: a region of type ``T`` can only shield the chain's
    endpoint if it is nested below more ``T`` regions than the chain
    itself passes through.
    """
    interior = list(chain[1:-1])
    names = instance.names if universe_names is None else tuple(universe_names)
    out = RegionSet.empty()
    for name in names:
        exponent = interior.count(name)
        t_set = instance.region_set(name)
        # T(⊂T)^k groups from the right: T ⊂ (T ⊂ (… ⊂ T)), i.e. the
        # T-regions with at least k T-ancestors.
        current = t_set
        for _ in range(exponent):
            current = t_set.included_in(current)
        out = out.union(current)
    return out


def direct_chain_program(
    instance: Instance,
    chain: Sequence[str],
    universe_names: Sequence[str] | None = None,
) -> ProgramResult:
    """One-loop computation of ``R1 ⊃_d R2 ⊃_d … ⊃_d Rn`` (Section 6).

    ``chain`` is the list of region names ``[R1, …, Rn]``; the result is
    the set of ``R1`` regions heading a chain of *direct* inclusions
    through the named types.
    """
    if len(chain) < 2:
        raise EvaluationError("a direct-inclusion chain needs at least two names")
    r1 = instance.region_set(chain[0])
    last = instance.region_set(chain[-1])
    layer = r1.top_layer()
    rest = r1.difference(layer)
    result = RegionSet.empty()
    all_regions = _chain_interference_set(instance, chain, universe_names)
    iterations = 0
    while layer:
        iterations += 1
        shielded = last.included_in(all_regions.included_in(layer))
        inner = last.difference(shielded)
        for name in reversed(chain[1:-1]):
            inner = instance.region_set(name).including(inner)
        result = result.union(layer.including(inner))
        layer = rest.top_layer()
        rest = rest.difference(layer)
    return ProgramResult(result, iterations)


def direct_chain_program_corrected(
    instance: Instance,
    chain: Sequence[str],
    universe_names: Sequence[str] | None = None,
) -> ProgramResult:
    """One-loop chain computation with *layer-relative* interference sets.

    The printed Section 6 program counts a shield's self-nesting depth
    globally (``T(⊂T)^{#_e^T}``), which makes it incomplete on instances
    where an interior type also occurs *above* ``R1`` regions: the
    chain's own intermediate then reaches the global threshold and
    shields its own endpoint (see EXPERIMENTS.md, E9).  This variant
    counts depth *inside the current layer region* — the shield set for
    layer ``L`` and type ``T`` with interior count ``k`` is
    ``T ⊂ (T ⊂ (… (T ⊂ L)))`` with ``k`` nested ``T`` steps — restoring
    exact equivalence with the direct chain while keeping the single
    loop.  For ``k = 0`` the shield set degenerates to ``T ⊂ L``, which
    makes the whole body coincide with the paper's single-operator
    program when ``n = 2``.
    """
    if len(chain) < 2:
        raise EvaluationError("a direct-inclusion chain needs at least two names")
    interior = list(chain[1:-1])
    names = instance.names if universe_names is None else tuple(universe_names)
    r1 = instance.region_set(chain[0])
    last = instance.region_set(chain[-1])
    layer = r1.top_layer()
    rest = r1.difference(layer)
    result = RegionSet.empty()
    iterations = 0
    while layer:
        iterations += 1
        shields = RegionSet.empty()
        for name in names:
            t_set = instance.region_set(name)
            current = t_set.included_in(layer)
            for _ in range(interior.count(name)):
                current = t_set.included_in(current)
            shields = shields.union(current)
        inner = last.difference(last.included_in(shields))
        for name in reversed(interior):
            inner = instance.region_set(name).including(inner)
        result = result.union(layer.including(inner))
        layer = rest.top_layer()
        rest = rest.difference(layer)
    return ProgramResult(result, iterations)


def direct_chain_by_iterated_program(
    instance: Instance,
    chain: Sequence[str],
) -> ProgramResult:
    """The naive chain evaluation: one full loop per ``⊃_d`` operation.

    Evaluates the right-grouped chain ``R1 ⊃_d (R2 ⊃_d (… ⊃_d Rn))`` by
    invoking :func:`direct_including_program` once per operator — the
    expensive baseline the one-loop program improves on.
    """
    if len(chain) < 2:
        raise EvaluationError("a direct-inclusion chain needs at least two names")
    current = instance.region_set(chain[-1])
    iterations = 0
    for name in reversed(chain[:-1]):
        step = direct_including_program(instance, instance.region_set(name), current)
        current = step.regions
        iterations += step.iterations
    return ProgramResult(current, iterations)
