"""Rendering expressions back to query text.

The printer and the parser (:mod:`repro.algebra.parser`) share one
precedence table, so ``parse(to_text(e)) == e`` for every expression —
a property the test suite checks exhaustively on enumerated and random
expressions.

Precedence, loosest binding first:

1. ``union``/``except`` (left-associative),
2. ``isect`` (left-associative),
3. the structural operators ``containing within before after dcontaining
   dwithin`` (right-associative, matching the paper's convention that an
   unparenthesized chain groups from the right),
4. the postfix selection ``@ "pattern"``.
"""

from __future__ import annotations

from repro.algebra import ast as A

__all__ = ["to_text"]

_LEVEL_ADDITIVE = 1
_LEVEL_INTERSECT = 2
_LEVEL_STRUCTURAL = 3
_LEVEL_ATOM = 4

_STRUCTURAL_KEYWORD = {
    A.Including: "containing",
    A.IncludedIn: "within",
    A.Preceding: "before",
    A.Following: "after",
    A.DirectlyIncluding: "dcontaining",
    A.DirectlyIncluded: "dwithin",
}

_STRUCTURAL_SYMBOL = {
    A.Including: "⊃",
    A.IncludedIn: "⊂",
    A.Preceding: "<",
    A.Following: ">",
    A.DirectlyIncluding: "⊃d",
    A.DirectlyIncluded: "⊂d",
}


def to_text(expr: A.Expr, unicode_ops: bool = False) -> str:
    """Render ``expr`` as parseable query text.

    With ``unicode_ops`` the structural and set operators use the paper's
    symbols (``⊃ ⊂ < > ∪ ∩ −``); the parser accepts both spellings.
    """
    return _render(expr, 0, unicode_ops)


def _render(expr: A.Expr, context_level: int, uni: bool) -> str:
    text, level = _render_inner(expr, uni)
    if level < context_level:
        return f"({text})"
    return text


def _render_inner(expr: A.Expr, uni: bool) -> tuple[str, int]:
    if isinstance(expr, A.NameRef):
        return expr.name, _LEVEL_ATOM
    if isinstance(expr, A.Empty):
        return "empty", _LEVEL_ATOM
    if isinstance(expr, A.Union):
        op = "∪" if uni else "union"
        return (
            f"{_render(expr.left, _LEVEL_ADDITIVE, uni)} {op} "
            f"{_render(expr.right, _LEVEL_ADDITIVE + 1, uni)}",
            _LEVEL_ADDITIVE,
        )
    if isinstance(expr, A.Difference):
        op = "−" if uni else "except"
        return (
            f"{_render(expr.left, _LEVEL_ADDITIVE, uni)} {op} "
            f"{_render(expr.right, _LEVEL_ADDITIVE + 1, uni)}",
            _LEVEL_ADDITIVE,
        )
    if isinstance(expr, A.Intersection):
        op = "∩" if uni else "isect"
        return (
            f"{_render(expr.left, _LEVEL_INTERSECT, uni)} {op} "
            f"{_render(expr.right, _LEVEL_INTERSECT + 1, uni)}",
            _LEVEL_INTERSECT,
        )
    if isinstance(expr, A.BinaryOp):  # the six structural operators
        table = _STRUCTURAL_SYMBOL if uni else _STRUCTURAL_KEYWORD
        op = table[type(expr)]
        # Right-associative: the left operand needs one level tighter.
        return (
            f"{_render(expr.left, _LEVEL_STRUCTURAL + 1, uni)} {op} "
            f"{_render(expr.right, _LEVEL_STRUCTURAL, uni)}",
            _LEVEL_STRUCTURAL,
        )
    if isinstance(expr, A.Select):
        return (
            f'{_render(expr.child, _LEVEL_ATOM, uni)} @ "{expr.pattern}"',
            _LEVEL_ATOM,
        )
    if isinstance(expr, A.MatchPoints):
        return f'"{expr.pattern}"', _LEVEL_ATOM
    if isinstance(expr, A.BothIncluded):
        return (
            f"bi({_render(expr.source, 0, uni)}, "
            f"{_render(expr.first, 0, uni)}, {_render(expr.second, 0, uni)})",
            _LEVEL_ATOM,
        )
    raise TypeError(f"cannot render {type(expr).__name__}")
