"""Bounded expansions of the extended operators into the plain algebra.

Section 5 shows that ``⊃_d``/``⊂_d`` and ``BI`` are inexpressible in
general but become expressible under boundedness assumptions:

* **Proposition 5.2** — direct inclusion is expressible when the
  including side's *self-nesting* is bounded (files with an acyclic RIG
  have no self-nesting at all).  The construction follows the paper's
  proof sketch: slice ``Q`` into self-nesting layers
  ``layer_i = H_{i-1} − H_i`` with ``H_i = Q ⊂ (Q ⊂ (… ⊂ Q))`` (depth
  ≥ i), compute direct inclusion per layer with the non-nested formula
  ``layer ⊃ (R − (R ⊂ (All ⊂ layer)))``, and union the layers.

* **Proposition 5.4** — ``BI`` is expressible when the number of
  non-overlapping regions is bounded by ``k``.  The paper omits the
  construction ("similar to the case of direct inclusion"); we engineered
  one and proved it correct (the tests validate it against the native
  operator): slice ``S`` by *follow-position* — the length of the longest
  ``<``-chain of S-regions ending at ``s``, computable as
  ``G_1 = S, G_{i+1} = S > G_i`` — and take

  ``BI(R, S, T) = ⋃_{i=1..k} (R ⊃ (G_i − G_{i+1})) ∩ (R ⊃ (T > G_i))``.

  Soundness: if ``r`` is selected at index ``i`` via ``s ⊂ r`` with
  follow-position exactly ``i`` and ``t ⊂ r`` following an S-chain
  ``c_1 < … < c_i < t``, then not every ``c_m`` can lie before ``r`` —
  ``c_i < r`` would extend ``s``'s chain past ``i`` — so some ``c_m``
  lies strictly inside ``r`` and ``(c_m, t)`` is a genuine witness.
  Completeness: a genuine witness ``(s, t)`` with ``i`` the
  follow-position of ``s`` satisfies both conjuncts at index ``i``.
  A bound of ``k`` non-overlapping regions caps every ``<``-chain at
  ``k``, so ``k`` slices suffice.
"""

from __future__ import annotations

from repro.algebra import ast as A
from repro.errors import OptimizationError

__all__ = [
    "union_of_names",
    "expand_directly_including",
    "expand_directly_included",
    "expand_both_included",
]


def union_of_names(names: tuple[str, ...] | list[str]) -> A.Expr:
    """``All = ⋃_{T ∈ I} T`` as an expression."""
    if not names:
        raise OptimizationError("cannot build the union of zero region names")
    expr: A.Expr = A.NameRef(names[0])
    for name in names[1:]:
        expr = A.Union(expr, A.NameRef(name))
    return expr


def _self_nesting_slices(source: A.Expr, depth_bound: int) -> list[A.Expr]:
    """Expressions for ``layer_1 … layer_{depth_bound}`` of ``source``.

    ``H_i`` (regions with ≥ i source-ancestors) is the right-grouped
    ``source ⊂ H_{i-1}``; the ``i``-th layer is ``H_{i-1} − H_i``.
    """
    if depth_bound < 1:
        raise OptimizationError("self-nesting depth bound must be >= 1")
    h = [source]
    for _ in range(depth_bound):
        h.append(A.IncludedIn(source, h[-1]))
    return [A.Difference(h[i], h[i + 1]) for i in range(depth_bound)]


def expand_directly_including(
    source: A.Expr,
    target: A.Expr,
    all_names: tuple[str, ...] | list[str],
    depth_bound: int = 1,
) -> A.Expr:
    """Core-algebra expression for ``source ⊃_d target`` (Prop 5.2).

    Correct on every instance where no ``source``-result region is
    nested inside more than ``depth_bound - 1`` other ``source``-result
    regions.  ``depth_bound=1`` (the acyclic-RIG case, where a region
    name can never nest within itself) yields the paper's one-liner
    ``Q ⊃ (R − (R ⊂ (All ⊂ Q)))``.
    """
    universe = union_of_names(all_names)
    parts: list[A.Expr] = []
    for layer in _self_nesting_slices(source, depth_bound):
        shielded = A.IncludedIn(target, A.IncludedIn(universe, layer))
        parts.append(A.Including(layer, A.Difference(target, shielded)))
    return _union_all(parts)


def expand_directly_included(
    source: A.Expr,
    target: A.Expr,
    all_names: tuple[str, ...] | list[str],
    depth_bound: int = 1,
) -> A.Expr:
    """Core-algebra expression for ``source ⊂_d target`` (Prop 5.2).

    Symmetric to :func:`expand_directly_including`: the *including* side
    ``target`` is sliced into self-nesting layers, and per layer the kept
    ``source`` regions are those not shielded from it.
    """
    universe = union_of_names(all_names)
    parts: list[A.Expr] = []
    for layer in _self_nesting_slices(target, depth_bound):
        shielded = A.IncludedIn(source, A.IncludedIn(universe, layer))
        parts.append(A.IncludedIn(A.Difference(source, shielded), layer))
    return _union_all(parts)


def expand_both_included(
    source: A.Expr,
    first: A.Expr,
    second: A.Expr,
    width_bound: int,
) -> A.Expr:
    """Core-algebra expression for ``source BI (first, second)`` (Prop 5.4).

    Correct on every instance whose number of pairwise non-overlapping
    regions is at most ``width_bound`` (which caps the length of any
    ``<``-chain).  See the module docstring for the construction and its
    correctness argument.
    """
    if width_bound < 1:
        raise OptimizationError("width bound must be >= 1")
    # G_i = first-regions ending an S-chain of length >= i.
    g = [first]
    for _ in range(width_bound):
        g.append(A.Following(first, g[-1]))
    parts: list[A.Expr] = []
    for i in range(width_bound):
        slice_i = A.Difference(g[i], g[i + 1])
        has_s = A.Including(source, slice_i)
        has_t = A.Including(source, A.Following(second, g[i]))
        parts.append(A.Intersection(has_s, has_t))
    return _union_all(parts)


def _union_all(parts: list[A.Expr]) -> A.Expr:
    expr = parts[0]
    for part in parts[1:]:
        expr = A.Union(expr, part)
    return expr
