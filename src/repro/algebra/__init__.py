"""The region algebra: expressions, parsing, evaluation, and extensions."""

from repro.algebra.ast import (
    BothIncluded,
    MatchPoints,
    Difference,
    DirectlyIncluded,
    DirectlyIncluding,
    Empty,
    Expr,
    Following,
    Including,
    IncludedIn,
    Intersection,
    NameRef,
    Preceding,
    Select,
    Union,
    including_chain,
    is_core,
    order_op_count,
    pattern_names,
    region_names,
    size,
)
from repro.algebra.cost import CostModel, operation_count
from repro.algebra.enumerate import count_expressions, enumerate_expressions
from repro.algebra.evaluator import Evaluator, evaluate
from repro.algebra.expand import (
    expand_both_included,
    expand_directly_included,
    expand_directly_including,
    union_of_names,
)
from repro.algebra.parser import parse
from repro.algebra.printer import to_text
from repro.algebra.profile import NodeProfile, QueryProfile, profile
from repro.algebra.programs import (
    ProgramResult,
    direct_chain_by_iterated_program,
    direct_chain_program,
    direct_chain_program_corrected,
    direct_included_program,
    direct_including_program,
)
from repro.algebra.relational import (
    RegionRelation,
    relational_both_included,
    relational_directly_including,
)

__all__ = [
    "Expr",
    "NameRef",
    "Empty",
    "Union",
    "Intersection",
    "Difference",
    "Including",
    "IncludedIn",
    "Preceding",
    "Following",
    "Select",
    "MatchPoints",
    "DirectlyIncluding",
    "DirectlyIncluded",
    "BothIncluded",
    "parse",
    "to_text",
    "profile",
    "QueryProfile",
    "NodeProfile",
    "evaluate",
    "Evaluator",
    "size",
    "order_op_count",
    "pattern_names",
    "region_names",
    "is_core",
    "including_chain",
    "operation_count",
    "CostModel",
    "enumerate_expressions",
    "count_expressions",
    "expand_directly_including",
    "expand_directly_included",
    "expand_both_included",
    "union_of_names",
    "ProgramResult",
    "direct_including_program",
    "direct_included_program",
    "direct_chain_program",
    "direct_chain_program_corrected",
    "direct_chain_by_iterated_program",
    "RegionRelation",
    "relational_directly_including",
    "relational_both_included",
]
