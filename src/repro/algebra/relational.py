"""The Section 7 extension: n-ary relations over the region domain.

The conclusion of the paper proposes extending the algebra with n-ary
relations (attributes ranging over regions) and full joins instead of
semi-joins, observing that the extension corresponds to *safe* FMFT
formulas, remains optimizable, and expresses both ``⊃_d`` and ``BI``.

:class:`RegionRelation` implements that extension: an immutable relation
with named region-valued attributes, supporting selection by structural
predicates, theta-joins, projection, and the set operations.  The two
demonstration queries at the bottom express the extended operators in
it — the test suite checks them against the native implementations,
which is the executable content of Section 7's "it is easy to see".
"""

from __future__ import annotations

from itertools import product
from typing import Callable, Iterable, Mapping, Sequence

from repro.core.instance import Instance
from repro.core.region import Region
from repro.core.regionset import RegionSet
from repro.errors import EvaluationError

__all__ = [
    "RegionRelation",
    "STRUCTURAL_PREDICATES",
    "relational_directly_including",
    "relational_both_included",
]

Row = tuple[Region, ...]

STRUCTURAL_PREDICATES: Mapping[str, Callable[[Region, Region], bool]] = {
    "includes": Region.includes,
    "included_in": Region.included_in,
    "precedes": Region.precedes,
    "follows": Region.follows,
    "equals": lambda a, b: a == b,
}


class RegionRelation:
    """An immutable n-ary relation whose attributes are regions."""

    __slots__ = ("_attributes", "_rows")

    def __init__(self, attributes: Sequence[str], rows: Iterable[Row] = ()):
        if len(set(attributes)) != len(attributes):
            raise EvaluationError(f"duplicate attribute names in {attributes!r}")
        self._attributes = tuple(attributes)
        checked: set[Row] = set()
        for row in rows:
            row = tuple(row)
            if len(row) != len(self._attributes):
                raise EvaluationError(
                    f"row arity {len(row)} does not match schema {self._attributes!r}"
                )
            checked.add(row)
        self._rows = frozenset(checked)

    @classmethod
    def from_region_set(cls, attribute: str, regions: RegionSet) -> "RegionRelation":
        """Lift a unary region set into a one-attribute relation."""
        return cls((attribute,), ((r,) for r in regions))

    # ------------------------------------------------------------------

    @property
    def attributes(self) -> tuple[str, ...]:
        return self._attributes

    @property
    def rows(self) -> frozenset[Row]:
        return self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RegionRelation):
            return NotImplemented
        return self._attributes == other._attributes and self._rows == other._rows

    def __hash__(self) -> int:
        return hash((self._attributes, self._rows))

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return f"RegionRelation({self._attributes!r}, {len(self._rows)} rows)"

    def _position(self, attribute: str) -> int:
        try:
            return self._attributes.index(attribute)
        except ValueError:
            raise EvaluationError(
                f"unknown attribute {attribute!r}; schema is {self._attributes!r}"
            ) from None

    # ------------------------------------------------------------------
    # Relational operators.
    # ------------------------------------------------------------------

    def select(
        self, left: str, predicate: str, right: str
    ) -> "RegionRelation":
        """Keep rows where ``predicate(row[left], row[right])`` holds."""
        fn = STRUCTURAL_PREDICATES.get(predicate)
        if fn is None:
            raise EvaluationError(
                f"unknown predicate {predicate!r}; "
                f"choose from {sorted(STRUCTURAL_PREDICATES)}"
            )
        i, j = self._position(left), self._position(right)
        return RegionRelation(
            self._attributes, (row for row in self._rows if fn(row[i], row[j]))
        )

    def select_pattern(self, attribute: str, pattern: str, instance: Instance) -> "RegionRelation":
        """Keep rows whose ``attribute`` region satisfies ``W(·, pattern)``."""
        i = self._position(attribute)
        return RegionRelation(
            self._attributes,
            (row for row in self._rows if instance.matches(row[i], pattern)),
        )

    def project(self, attributes: Sequence[str]) -> "RegionRelation":
        positions = [self._position(a) for a in attributes]
        return RegionRelation(
            tuple(attributes),
            (tuple(row[p] for p in positions) for row in self._rows),
        )

    def rename(self, mapping: Mapping[str, str]) -> "RegionRelation":
        return RegionRelation(
            tuple(mapping.get(a, a) for a in self._attributes), self._rows
        )

    def cross(self, other: "RegionRelation") -> "RegionRelation":
        overlap = set(self._attributes) & set(other._attributes)
        if overlap:
            raise EvaluationError(
                f"cross product with shared attributes {sorted(overlap)}; rename first"
            )
        return RegionRelation(
            self._attributes + other._attributes,
            (a + b for a, b in product(self._rows, other._rows)),
        )

    def join(
        self, other: "RegionRelation", left: str, predicate: str, right: str
    ) -> "RegionRelation":
        """Theta-join on a structural predicate between two attributes."""
        return self.cross(other).select(left, predicate, right)

    def union(self, other: "RegionRelation") -> "RegionRelation":
        self._check_schema(other)
        return RegionRelation(self._attributes, self._rows | other._rows)

    def difference(self, other: "RegionRelation") -> "RegionRelation":
        self._check_schema(other)
        return RegionRelation(self._attributes, self._rows - other._rows)

    def intersection(self, other: "RegionRelation") -> "RegionRelation":
        self._check_schema(other)
        return RegionRelation(self._attributes, self._rows & other._rows)

    def _check_schema(self, other: "RegionRelation") -> None:
        if self._attributes != other._attributes:
            raise EvaluationError(
                f"schema mismatch: {self._attributes!r} vs {other._attributes!r}"
            )

    def column(self, attribute: str) -> RegionSet:
        """The attribute's values as a region set (projection + dedup)."""
        i = self._position(attribute)
        return RegionSet(row[i] for row in self._rows)


def relational_directly_including(
    instance: Instance, source: RegionSet, target: RegionSet
) -> RegionSet:
    """``source ⊃_d target`` written in the Section 7 relational extension.

    ``π_r(σ_{r ⊃ s}(R × S)) − π_r(σ_{r ⊃ t ∧ t ⊃ s}(R × All × S))`` —
    pairs with an interposed region are subtracted, then the witness
    column is projected out.  Note the *pairs* are subtracted before
    projection: a region may directly include one target while
    non-directly including another.
    """
    r_rel = RegionRelation.from_region_set("r", source)
    s_rel = RegionRelation.from_region_set("s", target)
    all_rel = RegionRelation.from_region_set("t", instance.all_regions())
    pairs = r_rel.join(s_rel, "r", "includes", "s")
    blocked = (
        pairs.cross(all_rel)
        .select("r", "includes", "t")
        .select("t", "includes", "s")
        .project(("r", "s"))
    )
    return pairs.difference(blocked).column("r")


def relational_both_included(
    source: RegionSet, first: RegionSet, second: RegionSet
) -> RegionSet:
    """``source BI (first, second)`` in the relational extension.

    ``π_r(σ_{r ⊃ s ∧ r ⊃ t ∧ s < t}(R × S × T))`` — a single ternary
    join, which is exactly the correlation the unary algebra cannot
    express (Theorem 5.3).
    """
    r_rel = RegionRelation.from_region_set("r", source)
    s_rel = RegionRelation.from_region_set("s", first)
    t_rel = RegionRelation.from_region_set("t", second)
    return (
        r_rel.cross(s_rel)
        .cross(t_rel)
        .select("r", "includes", "s")
        .select("r", "includes", "t")
        .select("s", "precedes", "t")
        .column("r")
    )
