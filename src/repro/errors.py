"""Exception hierarchy for the region-algebra library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing the common cases.

Every class carries a stable, machine-readable ``code`` — the string the
query server puts in its JSON error envelope (``{"error": …, "code":
…}``) so clients can branch on failures without parsing prose.  The
taxonomy is documented in ``docs/server.md``; codes are append-only
(renaming one is a breaking API change).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""

    #: Stable machine-readable identifier for this error family.
    code = "internal"


def error_code(exc: BaseException) -> str:
    """The stable ``code`` for any exception (``"internal"`` outside the
    :class:`ReproError` hierarchy)."""
    return exc.code if isinstance(exc, ReproError) else "internal"


class InvalidRegionError(ReproError):
    """A region with inconsistent endpoints was constructed or supplied."""

    code = "invalid_region"


class HierarchyError(ReproError):
    """An instance violates the hierarchical nesting constraints.

    The paper (Section 2.1) requires that every region belongs to exactly
    one region set, and that any two regions are either disjoint or one
    strictly includes the other.
    """

    code = "hierarchy_violation"


class UnknownRegionNameError(ReproError):
    """A query referenced a region name that the index does not define."""

    code = "unknown_region_name"

    def __init__(self, name: str, known: tuple[str, ...] = ()):
        self.name = name
        self.known = known
        hint = f"; known names: {', '.join(sorted(known))}" if known else ""
        super().__init__(f"unknown region name {name!r}{hint}")


class ParseError(ReproError):
    """The textual query (or document) could not be parsed."""

    code = "parse_error"

    def __init__(self, message: str, position: int | None = None):
        self.position = position
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)


class EvaluationError(ReproError):
    """An expression could not be evaluated against an instance."""

    code = "evaluation_error"


class QueryTimeout(EvaluationError):
    """A query exceeded its deadline and was cooperatively aborted.

    The evaluator checks the deadline between operator evaluations, so a
    timed-out query stops within one node of the budget running out —
    the resource-limit enforcement the Co-NP-hardness of emptiness
    (FMFT Theorem 3.5) makes mandatory for a shared serving layer.
    """

    code = "query_timeout"

    def __init__(self, budget: float, elapsed: float | None = None):
        self.budget = budget
        self.elapsed = elapsed
        detail = f" after {elapsed:.3f}s" if elapsed is not None else ""
        super().__init__(
            f"query exceeded its {budget:.3f}s deadline{detail}"
        )


class QueryCancelled(EvaluationError):
    """A query was cancelled while (or before) evaluating."""

    code = "query_cancelled"

    def __init__(self, message: str = "query was cancelled"):
        super().__init__(message)


class ServerOverloadedError(ReproError):
    """The query service rejected a request at admission time.

    Raised when the worker pool's bounded queue is full; HTTP callers
    see it as ``429 Too Many Requests`` with a ``Retry-After`` hint.
    """

    code = "server_overloaded"

    def __init__(self, message: str, retry_after: float = 1.0):
        self.retry_after = retry_after
        super().__init__(message)


class ServiceUnhealthyError(ReproError):
    """The service is shedding load because it judged itself unhealthy.

    Raised on the request path while the health state machine (see
    ``docs/robustness.md``) is in its ``unhealthy`` state; HTTP callers
    see ``503 Service Unavailable`` with a ``Retry-After`` hint.
    """

    code = "service_unhealthy"

    def __init__(self, message: str, retry_after: float = 1.0):
        self.retry_after = retry_after
        super().__init__(message)


class CorpusUnavailableError(ReproError):
    """A corpus cannot be (re)loaded right now — its circuit breaker is
    open after repeated load failures.  HTTP callers see ``503``."""

    code = "corpus_unavailable"

    def __init__(self, name: str, retry_after: float = 1.0):
        self.name = name
        self.retry_after = retry_after
        super().__init__(
            f"corpus {name!r} is unavailable (circuit breaker open); "
            f"retry in {retry_after:.1f}s"
        )


class WorkerCrashedError(ReproError):
    """A worker thread died while holding this request's job.

    The pool replaces the dead worker and the service retries dispatch;
    callers only see this when the retry budget is exhausted.
    """

    code = "worker_crashed"


class PatternError(ReproError):
    """A pattern string was malformed for the selected pattern language."""

    code = "pattern_error"


class GrammarError(ReproError):
    """A grammar definition was malformed."""

    code = "grammar_error"


class OptimizationError(ReproError):
    """The optimizer was given inputs it cannot handle."""

    code = "optimization_error"


class StorageError(ReproError):
    """An index could not be serialized or deserialized."""

    code = "storage_error"


class CorruptIndexError(StorageError):
    """An index file exists but its contents fail validation — checksum
    mismatch, undecodable bytes, or malformed JSON.

    Distinguished from :class:`StorageError` so the serving layer can
    quarantine the file and rebuild from source text instead of merely
    reporting an I/O failure.
    """

    code = "corrupt_index"


class FaultInjected(ReproError):
    """An error deliberately raised by the fault-injection registry
    (:mod:`repro.faults`).  Never raised in production configurations —
    it surfaces only when a :class:`~repro.faults.FaultRegistry` is
    active, and maps to HTTP 500 so chaos runs can tell injected
    failures from client errors."""

    code = "fault_injected"

    def __init__(self, point: str, message: str | None = None):
        self.point = point
        super().__init__(message or f"injected fault at {point!r}")


class WorkerKilled(FaultInjected):
    """A ``kill``-mode fault: the worker thread that drew this fault
    must die.  Raised at the ``pool.worker`` fault point and translated
    by the pool into :class:`WorkerCrashedError` on the job's future."""

    code = "worker_killed"

    def __init__(self, point: str = "pool.worker"):
        super().__init__(point, f"injected worker death at {point!r}")


class BackendError(ReproError):
    """A shard-backend RPC failed: transport trouble (connection refused
    or reset while a backend process is down) or a remote-side error the
    frontier should treat as "this replica is unhealthy".  The frontier
    records it on the replica's circuit breaker and fails over to the
    next replica of the group."""

    code = "backend_error"


class ReplicaLaggingError(BackendError):
    """A backend answered a generation-floored read while its replica of
    the corpus was still behind the floor.  A :class:`BackendError`
    subclass so the frontier's normal failover machinery (breaker
    bookkeeping, next-replica retry, hedging) applies; HTTP callers that
    hit a lagging backend directly see ``503`` with a ``Retry-After``
    hint sized to the replication interval."""

    code = "replica_lagging"

    def __init__(
        self,
        corpus: str,
        applied: int,
        floor: int,
        retry_after: float = 0.5,
    ):
        self.corpus = corpus
        self.applied = applied
        self.floor = floor
        self.retry_after = retry_after
        super().__init__(
            f"replica of corpus {corpus!r} is at generation {applied}, "
            f"behind the read floor {floor}"
        )


class BackendUnsupportedError(ReproError):
    """A backend cannot evaluate its slice of this query soundly (a word
    occurrence spans a partition cut, or the corpus has no text-backed
    word index).  Not a replica failure: retrying another replica would
    fail identically, so the frontier falls back to local single-process
    evaluation — the same always-correct fallback the in-process shard
    executor uses."""

    code = "backend_unsupported"


class BackendUnavailableError(ReproError):
    """Every replica of some shard group failed (or had an open
    breaker).  The frontier degrades to local single-process evaluation;
    the response is still complete and correct, but marked degraded."""

    code = "backend_unavailable"

    def __init__(self, corpus: str, group: int, attempts: "list[str] | None" = None):
        self.corpus = corpus
        self.group = group
        self.attempts = list(attempts or [])
        detail = f" ({'; '.join(self.attempts)})" if self.attempts else ""
        super().__init__(
            f"no live replica for shard group {group} of corpus {corpus!r}{detail}"
        )


class IngestError(ReproError):
    """Base class for live-ingestion failures.

    Raised when an ingest batch is malformed or cannot be applied; the
    corpus is left exactly as it was (batches are all-or-nothing)."""

    code = "ingest_error"


class IngestDisabledError(IngestError):
    """Ingestion was requested for a corpus that does not accept writes
    (the server was started without ``--ingest``, or the corpus kind
    has no text-backed index to extend)."""

    code = "ingest_disabled"


class UnknownDocumentError(IngestError):
    """An update or delete referenced a document id that does not exist
    (or was already deleted) in the target corpus."""

    code = "unknown_document"


class DuplicateDocumentError(IngestError):
    """An append used a document id that is already live in the target
    corpus, or the same id appeared twice in one batch."""

    code = "duplicate_document"


class IngestUnreplicatedError(IngestError):
    """A write targeted a corpus that is actively served through remote
    backend processes while WAL shipping to those backends is disabled —
    committing it would silently fork the frontier's view from what the
    replicas keep serving.  HTTP callers see ``409 Conflict``; enable
    replication (the default) or drop to in-process backends to write."""

    code = "ingest_unreplicated"

    def __init__(self, corpus: str):
        self.corpus = corpus
        super().__init__(
            f"corpus {corpus!r} is served by remote backends but "
            f"replication is disabled; writes would diverge"
        )
