"""Exception hierarchy for the region-algebra library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing the common cases.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class InvalidRegionError(ReproError):
    """A region with inconsistent endpoints was constructed or supplied."""


class HierarchyError(ReproError):
    """An instance violates the hierarchical nesting constraints.

    The paper (Section 2.1) requires that every region belongs to exactly
    one region set, and that any two regions are either disjoint or one
    strictly includes the other.
    """


class UnknownRegionNameError(ReproError):
    """A query referenced a region name that the index does not define."""

    def __init__(self, name: str, known: tuple[str, ...] = ()):
        self.name = name
        self.known = known
        hint = f"; known names: {', '.join(sorted(known))}" if known else ""
        super().__init__(f"unknown region name {name!r}{hint}")


class ParseError(ReproError):
    """The textual query (or document) could not be parsed."""

    def __init__(self, message: str, position: int | None = None):
        self.position = position
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)


class EvaluationError(ReproError):
    """An expression could not be evaluated against an instance."""


class QueryTimeout(EvaluationError):
    """A query exceeded its deadline and was cooperatively aborted.

    The evaluator checks the deadline between operator evaluations, so a
    timed-out query stops within one node of the budget running out —
    the resource-limit enforcement the Co-NP-hardness of emptiness
    (FMFT Theorem 3.5) makes mandatory for a shared serving layer.
    """

    def __init__(self, budget: float, elapsed: float | None = None):
        self.budget = budget
        self.elapsed = elapsed
        detail = f" after {elapsed:.3f}s" if elapsed is not None else ""
        super().__init__(
            f"query exceeded its {budget:.3f}s deadline{detail}"
        )


class QueryCancelled(EvaluationError):
    """A query was cancelled while (or before) evaluating."""

    def __init__(self, message: str = "query was cancelled"):
        super().__init__(message)


class ServerOverloadedError(ReproError):
    """The query service rejected a request at admission time.

    Raised when the worker pool's bounded queue is full; HTTP callers
    see it as ``429 Too Many Requests`` with a ``Retry-After`` hint.
    """

    def __init__(self, message: str, retry_after: float = 1.0):
        self.retry_after = retry_after
        super().__init__(message)


class PatternError(ReproError):
    """A pattern string was malformed for the selected pattern language."""


class GrammarError(ReproError):
    """A grammar definition was malformed."""


class OptimizationError(ReproError):
    """The optimizer was given inputs it cannot handle."""


class StorageError(ReproError):
    """An index could not be serialized or deserialized."""
