"""Region inclusion/order graphs: the schema layer of Section 2.2."""

from repro.rig.derive import rig_from_instances, rog_from_instances
from repro.rig.grammar import Grammar
from repro.rig.graph import RegionInclusionGraph, figure_1_rig
from repro.rig.minimal_set import (
    covers,
    minimal_set_bruteforce,
    minimal_set_greedy,
    minimal_set_single_pair,
    minimum_vertex_cover_bruteforce,
    vertex_cover_to_minimal_set,
)
from repro.rig.rog import RegionOrderGraph, direct_precedence_pairs

__all__ = [
    "RegionInclusionGraph",
    "RegionOrderGraph",
    "Grammar",
    "figure_1_rig",
    "rig_from_instances",
    "rog_from_instances",
    "direct_precedence_pairs",
    "covers",
    "minimal_set_bruteforce",
    "minimal_set_single_pair",
    "minimal_set_greedy",
    "vertex_cover_to_minimal_set",
    "minimum_vertex_cover_bruteforce",
]
