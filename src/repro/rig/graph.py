"""Region inclusion graphs (Section 2.2).

A RIG is a directed graph over region names whose edges state which
*direct* inclusions may occur: ``(R_i, R_j) ∈ E`` iff an ``R_i`` region
can directly include an ``R_j`` region.  A RIG plays the role of a
schema: expression equivalence and emptiness are defined relative to the
set of instances satisfying it (Definitions 2.4/2.5), and the optimizer
uses it to drop redundant inclusion tests.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import networkx as nx

from repro.core.instance import Instance
from repro.errors import UnknownRegionNameError

__all__ = ["RegionInclusionGraph", "figure_1_rig"]


class RegionInclusionGraph:
    """An immutable directed graph over region names."""

    __slots__ = ("_graph",)

    def __init__(self, names: Iterable[str], edges: Iterable[tuple[str, str]] = ()):
        graph = nx.DiGraph()
        graph.add_nodes_from(names)
        for parent, child in edges:
            for name in (parent, child):
                if name not in graph:
                    raise UnknownRegionNameError(name, tuple(graph.nodes))
            graph.add_edge(parent, child)
        self._graph = graph

    # ------------------------------------------------------------------

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._graph.nodes)

    @property
    def edges(self) -> tuple[tuple[str, str], ...]:
        return tuple(self._graph.edges)

    def has_edge(self, parent: str, child: str) -> bool:
        return self._graph.has_edge(parent, child)

    def successors(self, name: str) -> tuple[str, ...]:
        self._require(name)
        return tuple(self._graph.successors(name))

    def predecessors(self, name: str) -> tuple[str, ...]:
        self._require(name)
        return tuple(self._graph.predecessors(name))

    def _require(self, name: str) -> None:
        if name not in self._graph:
            raise UnknownRegionNameError(name, tuple(self._graph.nodes))

    def as_networkx(self) -> nx.DiGraph:
        """A *copy* of the underlying graph, for external algorithms."""
        return self._graph.copy()

    def __contains__(self, name: object) -> bool:
        return name in self._graph

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RegionInclusionGraph):
            return NotImplemented
        return (
            set(self._graph.nodes) == set(other._graph.nodes)
            and set(self._graph.edges) == set(other._graph.edges)
        )

    def __hash__(self) -> int:
        return hash(
            (frozenset(self._graph.nodes), frozenset(self._graph.edges))
        )

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return (
            f"RegionInclusionGraph({len(self._graph)} names, "
            f"{self._graph.number_of_edges()} edges)"
        )

    # ------------------------------------------------------------------
    # Structural properties used by the theory.
    # ------------------------------------------------------------------

    def is_acyclic(self) -> bool:
        """Acyclic RIGs bound the nesting depth of satisfying instances
        (the premise of Proposition 5.2)."""
        return nx.is_directed_acyclic_graph(self._graph)

    def longest_path_length(self) -> int:
        """Number of nodes on the longest path (acyclic RIGs only).

        This bounds the nesting depth of any instance satisfying the RIG.
        """
        if not self.is_acyclic():
            raise ValueError("longest path is unbounded on a cyclic RIG")
        if not self._graph:
            return 0
        return nx.dag_longest_path_length(self._graph) + 1

    def self_nesting_bound(self, name: str) -> int | None:
        """Max number of ``name``-regions on a nesting chain, or ``None``
        when unbounded (``name`` lies on a cycle).

        This is the ``depth_bound`` Proposition 5.2's expansion needs for
        the left side of a direct inclusion.
        """
        self._require(name)
        # A nesting chain visiting `name` twice is a RIG walk from `name`
        # back to itself, i.e. a cycle through `name`; without one the
        # bound is exactly 1.
        if self._graph.has_edge(name, name):
            return None
        for component in nx.strongly_connected_components(self._graph):
            if name in component and len(component) > 1:
                return None
        return 1

    def paths_avoiding(
        self, source: str, target: str, blocked: Iterable[str]
    ) -> bool:
        """Is there a walk ``source → … → target`` of length ≥ 2 whose
        interior avoids ``blocked``?

        This is the feasibility check of the Section 6 minimal-set
        problem (the endpoints themselves need not be avoided).
        """
        self._require(source)
        self._require(target)
        barred = set(blocked)
        frontier = [
            v for v in self._graph.successors(source) if v not in barred and v != target
        ]
        seen = set(frontier)
        while frontier:
            node = frontier.pop()
            for succ in self._graph.successors(node):
                if succ == target:
                    return True
                if succ not in barred and succ not in seen:
                    seen.add(succ)
                    frontier.append(succ)
        return False

    def interior_nodes(self, source: str, target: str) -> frozenset[str]:
        """Names that can appear strictly inside a ``source → target``
        nesting chain: interior nodes of walks from ``source`` to
        ``target``."""
        self._require(source)
        self._require(target)
        reachable_from_source = set(nx.descendants(self._graph, source))
        reaching_target = set(nx.ancestors(self._graph, target))
        return frozenset(reachable_from_source & reaching_target)

    def satisfied_by(self, instance: Instance) -> bool:
        """Definition 2.4: every direct inclusion in the instance is an
        edge of this RIG (and every region name is known)."""
        for name in instance.names:
            if name not in self._graph and len(instance.region_set(name)):
                return False
        forest = instance.forest()
        for parent, child in forest.iter_edges():
            if not self._graph.has_edge(
                instance.name_of(parent), instance.name_of(child)
            ):
                return False
        return True

    def violations(
        self, instance: Instance
    ) -> Iterator[tuple[str, str]]:
        """The direct-inclusion name pairs that break Definition 2.4."""
        forest = instance.forest()
        for parent, child in forest.iter_edges():
            pair = (instance.name_of(parent), instance.name_of(child))
            if not self._graph.has_edge(*pair):
                yield pair


def figure_1_rig() -> RegionInclusionGraph:
    """The paper's Figure 1: the RIG for source-code regions.

    Programs have a header (containing the program name) and a body
    containing variable definitions and procedures; procedures have a
    header (with their name) and a body that may define more variables
    and nested procedures.
    """
    names = (
        "Program",
        "Prog_header",
        "Prog_body",
        "Proc",
        "Proc_header",
        "Proc_body",
        "Name",
        "Var",
    )
    edges = (
        ("Program", "Prog_header"),
        ("Program", "Prog_body"),
        ("Prog_header", "Name"),
        ("Prog_body", "Var"),
        ("Prog_body", "Proc"),
        ("Proc", "Proc_header"),
        ("Proc", "Proc_body"),
        ("Proc_header", "Name"),
        ("Proc_body", "Var"),
        ("Proc_body", "Proc"),
    )
    return RegionInclusionGraph(names, edges)
