"""Deriving RIGs and ROGs from observed instances.

The tightest RIG an instance satisfies has exactly the direct-inclusion
name pairs that occur in it; likewise for the ROG with direct
precedence.  These are useful both for schema discovery over a corpus
and for the test suite, which checks that grammar-derived graphs cover
every instance the corresponding generator produces.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.instance import Instance
from repro.rig.graph import RegionInclusionGraph
from repro.rig.rog import RegionOrderGraph, direct_precedence_pairs

__all__ = ["rig_from_instances", "rog_from_instances"]


def rig_from_instances(instances: Iterable[Instance]) -> RegionInclusionGraph:
    """The minimal RIG satisfied by every given instance."""
    names: list[str] = []
    edges: set[tuple[str, str]] = set()
    for instance in instances:
        for name in instance.names:
            if name not in names:
                names.append(name)
        forest = instance.forest()
        for parent, child in forest.iter_edges():
            edges.add((instance.name_of(parent), instance.name_of(child)))
    return RegionInclusionGraph(names, sorted(edges))


def rog_from_instances(instances: Iterable[Instance]) -> RegionOrderGraph:
    """The minimal ROG satisfied by every given instance."""
    names: list[str] = []
    edges: set[tuple[str, str]] = set()
    for instance in instances:
        for name in instance.names:
            if name not in names:
                names.append(name)
        for before, after in direct_precedence_pairs(instance):
            edges.add((instance.name_of(before), instance.name_of(after)))
    return RegionOrderGraph(names, sorted(edges))
