"""Grammars describing file structure, and the graphs they induce.

Section 2.2: "if the structure of the file follows some grammar G …,
then the RIG can be automatically derived from G.  The nodes are the
non-terminals of G, and the graph has an edge (A_i, A_j) iff G has a
rule where A_i appears as the left side, and A_j as the right side."
The same section notes a ROG can also be derived from a grammar.

The grammar model here is the one the paper's examples need: every
non-terminal occurrence in a parse produces a region named after it,
terminals produce region-free text, and productions are non-empty.  The
ROG derivation accounts for the fact that direct precedence crosses
subtree boundaries: when siblings ``A B`` are adjacent in a rule body,
*every* region on ``A``'s rightmost spine directly precedes *every*
region on ``B``'s leftmost spine.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from functools import cached_property
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.errors import GrammarError
from repro.rig.graph import RegionInclusionGraph
from repro.rig.rog import RegionOrderGraph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.instance import Instance

__all__ = ["Grammar"]


@dataclass(frozen=True)
class Grammar:
    """A context-free grammar over region-producing non-terminals.

    ``productions`` maps each non-terminal to its alternative bodies;
    body symbols that are themselves non-terminals produce nested
    regions, everything else is treated as terminal text.
    """

    start: str
    productions: Mapping[str, Sequence[Sequence[str]]]
    _nonterminals: frozenset[str] = field(init=False, repr=False, compare=False, default=frozenset())

    def __post_init__(self) -> None:
        if self.start not in self.productions:
            raise GrammarError(f"start symbol {self.start!r} has no productions")
        for head, bodies in self.productions.items():
            if not bodies:
                raise GrammarError(f"non-terminal {head!r} has no alternatives")
            for body in bodies:
                if not body:
                    raise GrammarError(
                        f"empty production for {head!r}: regions must cover text"
                    )
        object.__setattr__(self, "_nonterminals", frozenset(self.productions))

    @property
    def nonterminals(self) -> frozenset[str]:
        return self._nonterminals

    def is_nonterminal(self, symbol: str) -> bool:
        return symbol in self._nonterminals

    # ------------------------------------------------------------------
    # Graph derivations (Section 2.2).
    # ------------------------------------------------------------------

    def derive_rig(self) -> RegionInclusionGraph:
        """Edge ``(A, B)`` iff ``B`` occurs in a body of ``A``."""
        edges = set()
        for head, bodies in self.productions.items():
            for body in bodies:
                for symbol in body:
                    if self.is_nonterminal(symbol):
                        edges.add((head, symbol))
        return RegionInclusionGraph(sorted(self._nonterminals), sorted(edges))

    def _spine(self, leftmost: bool) -> dict[str, frozenset[str]]:
        """For each non-terminal, the non-terminals reachable along its
        leftmost (resp. rightmost) region spine, itself included.

        A region on ``A``'s rightmost spine can end exactly where ``A``
        ends, so it directly precedes whatever directly follows ``A``.
        """
        spine: dict[str, set[str]] = {n: {n} for n in self._nonterminals}
        changed = True
        while changed:
            changed = False
            for head, bodies in self.productions.items():
                for body in bodies:
                    symbols = body if leftmost else list(reversed(body))
                    # Terminals produce no regions, so only the first
                    # non-terminal from this side extends the spine.
                    for symbol in symbols:
                        if self.is_nonterminal(symbol):
                            if not spine[symbol] <= spine[head]:
                                spine[head] |= spine[symbol]
                                changed = True
                            break
        return {n: frozenset(s) for n, s in spine.items()}

    def derive_rog(self) -> RegionOrderGraph:
        """Direct-precedence edges induced by sibling adjacency.

        For every pair of non-terminals ``A … B`` adjacent in a body (no
        non-terminal between them), every rightmost-spine region of ``A``
        may directly precede every leftmost-spine region of ``B``.
        Intervening terminals do not matter: they produce no regions.
        """
        right_spine = self._spine(leftmost=False)
        left_spine = self._spine(leftmost=True)
        edges: set[tuple[str, str]] = set()
        for bodies in self.productions.values():
            for body in bodies:
                nts = [s for s in body if self.is_nonterminal(s)]
                for a, b in zip(nts, nts[1:]):
                    for u in right_spine[a]:
                        for v in left_spine[b]:
                            edges.add((u, v))
        return RegionOrderGraph(sorted(self._nonterminals), sorted(edges))

    # ------------------------------------------------------------------
    # Random derivation (grammar-driven workload generation).
    # ------------------------------------------------------------------

    @cached_property
    def _derivation_heights(self) -> dict[str, int]:
        """Minimum parse-tree height per non-terminal (1 = leaf body).

        Used to steer random derivation toward termination: when the
        depth budget runs out, only the shallowest alternative is taken.
        Raises :class:`GrammarError` for non-terminals with no finite
        derivation (e.g. ``S → S``).
        """
        heights: dict[str, int] = {}
        changed = True
        while changed:
            changed = False
            for head, bodies in self.productions.items():
                for body in bodies:
                    child_heights = [
                        heights.get(s) for s in body if self.is_nonterminal(s)
                    ]
                    if any(h is None for h in child_heights):
                        continue
                    height = 1 + max(child_heights, default=0)  # type: ignore[type-var]
                    if head not in heights or height < heights[head]:
                        heights[head] = height
                        changed = True
        missing = self._nonterminals - set(heights)
        if missing:
            raise GrammarError(
                f"non-terminals with no finite derivation: {sorted(missing)}"
            )
        return heights

    def random_instance(
        self,
        rng: random.Random,
        max_depth: int = 12,
        start: str | None = None,
    ) -> "Instance":
        """A random instance derived from this grammar.

        Every non-terminal occurrence in the derivation becomes a region
        named after it (the paper's grammar-to-regions convention);
        terminal symbols become word-index labels of their enclosing
        region.  The result always satisfies :meth:`derive_rig` and
        :meth:`derive_rog` — the property the test suite checks.
        """
        from repro.workloads.generators import TreeNode, instance_from_trees

        heights = self._derivation_heights

        def derive(symbol: str, budget: int) -> TreeNode:
            bodies = self.productions[symbol]
            viable = [
                body
                for body in bodies
                if 1
                + max(
                    (heights[s] for s in body if self.is_nonterminal(s)),
                    default=0,
                )
                <= budget
            ]
            body = rng.choice(viable if viable else [min(
                bodies,
                key=lambda b: 1
                + max(
                    (heights[s] for s in b if self.is_nonterminal(s)), default=0
                ),
            )])
            children = [
                derive(s, budget - 1) for s in body if self.is_nonterminal(s)
            ]
            labels = frozenset(s for s in body if not self.is_nonterminal(s))
            return TreeNode(symbol, children, labels)

        symbol = start if start is not None else self.start
        if symbol not in self.productions:
            raise GrammarError(f"unknown start symbol {symbol!r}")
        root = derive(symbol, max(max_depth, heights[symbol]))
        return instance_from_trees([root], names=sorted(self._nonterminals))
