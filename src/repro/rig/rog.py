"""Region order graphs (Section 2.2).

The order-side analogue of a RIG: ``(R_i, R_j) ∈ E`` iff an ``R_i``
region can *directly precede* an ``R_j`` region — ``r < s`` with no
region strictly between them in the precedence order.  Acyclic ROGs
bound the number of pairwise non-overlapping regions (the premise of
Proposition 5.4's ``BI`` expansion).
"""

from __future__ import annotations

from typing import Iterable, Iterator

import networkx as nx

from repro.core.instance import Instance
from repro.core.region import Region
from repro.errors import UnknownRegionNameError

__all__ = ["RegionOrderGraph", "direct_precedence_pairs"]


def direct_precedence_pairs(instance: Instance) -> Iterator[tuple[Region, Region]]:
    """All pairs ``(r, s)`` where ``r`` directly precedes ``s``.

    ``r`` directly precedes ``s`` when ``r < s`` and no region ``t``
    satisfies ``r < t < s``.  With regions sorted by left endpoint and a
    suffix-minimum over right endpoints, the witnesses for each ``r`` are
    exactly the regions starting in ``(right(r), m]`` where ``m`` is the
    smallest right endpoint among regions starting after ``right(r)``.
    """
    ordered = sorted(instance.all_regions(), key=lambda r: (r.left, r.right))
    lefts = [r.left for r in ordered]
    suffix_min_right: list[int | float] = [float("inf")] * (len(ordered) + 1)
    for i in range(len(ordered) - 1, -1, -1):
        suffix_min_right[i] = min(ordered[i].right, suffix_min_right[i + 1])
    from bisect import bisect_right

    for r in ordered:
        start = bisect_right(lefts, r.right)
        if start >= len(ordered):
            continue
        cutoff = suffix_min_right[start]
        j = start
        while j < len(ordered) and ordered[j].left <= cutoff:
            yield r, ordered[j]
            j += 1


class RegionOrderGraph:
    """An immutable directed graph of possible direct precedences."""

    __slots__ = ("_graph",)

    def __init__(self, names: Iterable[str], edges: Iterable[tuple[str, str]] = ()):
        graph = nx.DiGraph()
        graph.add_nodes_from(names)
        for before, after in edges:
            for name in (before, after):
                if name not in graph:
                    raise UnknownRegionNameError(name, tuple(graph.nodes))
            graph.add_edge(before, after)
        self._graph = graph

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._graph.nodes)

    @property
    def edges(self) -> tuple[tuple[str, str], ...]:
        return tuple(self._graph.edges)

    def has_edge(self, before: str, after: str) -> bool:
        return self._graph.has_edge(before, after)

    def as_networkx(self) -> nx.DiGraph:
        return self._graph.copy()

    def __contains__(self, name: object) -> bool:
        return name in self._graph

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RegionOrderGraph):
            return NotImplemented
        return (
            set(self._graph.nodes) == set(other._graph.nodes)
            and set(self._graph.edges) == set(other._graph.edges)
        )

    def __hash__(self) -> int:
        return hash((frozenset(self._graph.nodes), frozenset(self._graph.edges)))

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return (
            f"RegionOrderGraph({len(self._graph)} names, "
            f"{self._graph.number_of_edges()} edges)"
        )

    def is_acyclic(self) -> bool:
        return nx.is_directed_acyclic_graph(self._graph)

    def longest_path_length(self) -> int:
        """Number of nodes on the longest path (acyclic ROGs only).

        Bounds the length of any ``<``-chain — hence the number of
        pairwise non-overlapping regions — in a satisfying instance,
        which is the ``width_bound`` of Proposition 5.4.
        """
        if not self.is_acyclic():
            raise ValueError("longest path is unbounded on a cyclic ROG")
        if not self._graph:
            return 0
        return nx.dag_longest_path_length(self._graph) + 1

    def satisfied_by(self, instance: Instance) -> bool:
        """Every direct precedence in the instance is an edge here."""
        for name in instance.names:
            if name not in self._graph and len(instance.region_set(name)):
                return False
        for before, after in direct_precedence_pairs(instance):
            if not self._graph.has_edge(
                instance.name_of(before), instance.name_of(after)
            ):
                return False
        return True

    def violations(self, instance: Instance) -> Iterator[tuple[str, str]]:
        for before, after in direct_precedence_pairs(instance):
            pair = (instance.name_of(before), instance.name_of(after))
            if not self._graph.has_edge(*pair):
                yield pair
