"""The Section 6 minimal-set problem.

The one-loop chain program's per-iteration cost is dominated by the
interference set ``All``; the RIG lets it shrink: it suffices for
``All`` to draw from a subset ``I' ⊆ I`` of region names containing at
least one name on the interior of every RIG walk from ``R_i`` to
``R_{i+1}``, for every consecutive pair of the chain.

* :func:`covers` — the verification step (the "check" of the paper's NP
  algorithm).
* :func:`minimal_set_bruteforce` — exact search by increasing size (the
  "guess" made deterministic); exponential, fine for RIG-sized graphs.
* :func:`minimal_set_single_pair` — the polynomial single-operation case
  via a minimum vertex cut (the paper points to min-cut; we use max-flow
  node connectivity).
* :func:`minimal_set_greedy` — a polynomial heuristic for long chains:
  the union of per-pair minimum cuts.
* :func:`vertex_cover_to_minimal_set` — the Proposition 6.1 hardness
  reduction.  The paper only names the source problem (vertex cover);
  the gadget here gives an exact size-preserving reduction: edge
  ``e_i = (u, v)`` becomes the path ``Z_{i-1} → u → v → Z_i`` on shared
  vertex nodes, so every ``Z_{i-1} → Z_i`` walk starts with ``u`` and
  ends with ``v``, and hitting all of them is exactly choosing ``u`` or
  ``v`` — a vertex cover.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Sequence

import networkx as nx

from repro.errors import OptimizationError
from repro.rig.graph import RegionInclusionGraph

__all__ = [
    "covers",
    "minimal_set_bruteforce",
    "minimal_set_single_pair",
    "minimal_set_greedy",
    "vertex_cover_to_minimal_set",
    "minimum_vertex_cover_bruteforce",
]


def _check_chain(chain: Sequence[str]) -> None:
    if len(chain) < 2:
        raise OptimizationError("a chain needs at least two region names")


def covers(
    rig: RegionInclusionGraph, chain: Sequence[str], subset: Iterable[str]
) -> bool:
    """Does ``subset`` hit the interior of every walk ``R_i → R_{i+1}``?

    Walks of length 1 (a direct RIG edge) have no interior and are
    vacuously covered — no region can interpose between the two types.
    """
    _check_chain(chain)
    blocked = set(subset)
    for source, target in zip(chain, chain[1:]):
        if rig.paths_avoiding(source, target, blocked):
            return False
    return True


def minimal_set_bruteforce(
    rig: RegionInclusionGraph, chain: Sequence[str], max_size: int | None = None
) -> frozenset[str] | None:
    """The smallest covering subset, by exhaustive search.

    Candidates are restricted to names that can appear on some walk
    interior.  Returns ``None`` when no subset within ``max_size``
    covers (possible only when ``max_size`` is given: the full candidate
    set always covers).
    """
    _check_chain(chain)
    candidates: set[str] = set()
    for source, target in zip(chain, chain[1:]):
        candidates |= rig.interior_nodes(source, target)
    pool = sorted(candidates)
    limit = len(pool) if max_size is None else min(max_size, len(pool))
    for k in range(0, limit + 1):
        for subset in combinations(pool, k):
            if covers(rig, chain, subset):
                return frozenset(subset)
    return None


def minimal_set_single_pair(
    rig: RegionInclusionGraph, source: str, target: str
) -> frozenset[str]:
    """Minimum cover for one pair, in polynomial time via min-cut.

    A subset covers iff it is a vertex cut between ``source`` and
    ``target`` in the RIG with any direct ``source → target`` edge
    removed (that edge is an interior-free walk, vacuously covered).
    Cycles through the endpoints are handled by splitting them into an
    exit-only source copy and an entry-only target copy.
    """
    graph = rig.as_networkx()
    if graph.has_edge(source, target):
        graph.remove_edge(source, target)
    # Split endpoints so that the cut may not use them, while walks may
    # still pass through them as interior nodes.
    src, dst = ("__source__", "__target__")
    graph.add_node(src)
    graph.add_node(dst)
    for succ in list(graph.successors(source)):
        graph.add_edge(src, succ)
    for pred in list(graph.predecessors(target)):
        graph.add_edge(pred, dst)
    if not nx.has_path(graph, src, dst):
        return frozenset()
    if graph.has_edge(src, dst):
        raise OptimizationError(
            f"walks from {source!r} to {target!r} of length 2 share no "
            "interior name that could be removed"
        )
    cut = nx.minimum_node_cut(graph, src, dst)
    return frozenset(cut)


def minimal_set_greedy(
    rig: RegionInclusionGraph, chain: Sequence[str]
) -> frozenset[str]:
    """Union of per-pair minimum cuts — a polynomial upper bound.

    At most ``(n-1)`` times the optimum; exact when the pairs' interior
    node sets are disjoint.
    """
    _check_chain(chain)
    out: set[str] = set()
    for source, target in zip(chain, chain[1:]):
        if not rig.paths_avoiding(source, target, out):
            continue  # already covered by earlier picks
        out |= minimal_set_single_pair(rig, source, target)
    return frozenset(out)


def vertex_cover_to_minimal_set(
    vertices: Sequence[str], edges: Sequence[tuple[str, str]]
) -> tuple[RegionInclusionGraph, list[str]]:
    """The Proposition 6.1 reduction: vertex cover → minimal set.

    Every walk from ``Z_{i-1}`` to ``Z_i`` leaves through ``u_i`` and
    enters through ``v_i``, and the two-step walk ``Z_{i-1} → u → v →
    Z_i`` has interior exactly ``{u, v}``; hence a subset covers the
    chain iff it contains an endpoint of every edge.  The minimum
    covering set therefore has exactly the size of a minimum vertex
    cover of the input graph.
    """
    if not edges:
        raise OptimizationError("the reduction needs at least one edge")
    chain = [f"Z{i}" for i in range(len(edges) + 1)]
    names = list(chain) + [v for v in vertices]
    rig_edges: set[tuple[str, str]] = set()
    for i, (u, v) in enumerate(edges):
        rig_edges.add((chain[i], u))
        rig_edges.add((u, v))
        rig_edges.add((v, chain[i + 1]))
    return RegionInclusionGraph(names, sorted(rig_edges)), chain


def minimum_vertex_cover_bruteforce(
    vertices: Sequence[str], edges: Sequence[tuple[str, str]]
) -> frozenset[str]:
    """Reference minimum vertex cover, for validating the reduction."""
    for k in range(0, len(vertices) + 1):
        for subset in combinations(sorted(vertices), k):
            chosen = set(subset)
            if all(u in chosen or v in chosen for u, v in edges):
                return frozenset(subset)
    return frozenset(vertices)
