"""Per-shard expression rewriting and the evaluator that runs it.

The executor never teaches shards about each other; instead it rewrites
the query per shard so the ordinary evaluator machinery produces the
shard's slice of the global answer:

* a :class:`RegionLiteral` replaces a match-point leaf with the
  occurrences *routed to this shard* by the partitioner's ownership
  spans;
* an :class:`OrderBound` replaces a resolved ``<``/``>`` node: the
  right operand disappears entirely, leaving a filter of the (still
  per-shard) left operand against the globally exchanged scalar —
  ``right(r) < bound`` for ``<``, ``left(r) > bound`` for ``>`` —
  mirroring the indexed single-shard implementations exactly;
* a resolved ordering node whose right operand was globally empty
  becomes :class:`~repro.algebra.ast.Empty` (``R < ∅ = ∅``).

Both node types are private to the shard layer: they are produced only
here, evaluated only by :class:`ShardEvaluator`, and never escape into
user-visible plans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.algebra import ast as A
from repro.algebra.evaluator import CancelToken, Evaluator, _Limits
from repro.core.instance import Instance
from repro.core.region import Region
from repro.core.regionset import RegionSet

__all__ = ["RegionLiteral", "OrderBound", "ShardEvaluator", "rewrite"]


@dataclass(frozen=True, slots=True)
class RegionLiteral(A.Expr):
    """A materialized region set (this shard's routed match points)."""

    regions: tuple[Region, ...]


@dataclass(frozen=True, slots=True)
class OrderBound(A.Expr):
    """A resolved ordering semi-join: filter ``child`` by a global scalar."""

    child: A.Expr
    kind: str  #: "preceding" or "following"
    bound: int  #: global max-left (preceding) or min-right (following)


def rewrite(
    expr: A.Expr,
    bounds: Mapping[A.Expr, int | None],
    points: Mapping[str, tuple[Region, ...]],
) -> A.Expr:
    """The shard-local form of ``expr`` under the given resolutions.

    ``bounds`` maps original ``<``/``>`` nodes to their exchanged scalar
    (``None`` for a globally empty right operand); ``points`` maps
    match-point patterns to this shard's routed occurrences.  Nodes
    without a resolution are rebuilt unchanged, so the same function
    serves both the per-round right-operand rewrites (partial
    ``bounds``) and the final scatter (complete ``bounds``).
    """
    if isinstance(expr, A.MatchPoints):
        routed = points.get(expr.pattern)
        if routed is None:
            return expr
        return RegionLiteral(routed)
    if isinstance(expr, (A.Preceding, A.Following)) and expr in bounds:
        bound = bounds[expr]
        if bound is None:
            return A.Empty()
        kind = "preceding" if isinstance(expr, A.Preceding) else "following"
        return OrderBound(rewrite(expr.left, bounds, points), kind, bound)
    out = expr
    for i, child in enumerate(A.children(expr)):
        new = rewrite(child, bounds, points)
        if new is not child:
            out = A.replace_child(out, i, new)
    return out


class ShardEvaluator(Evaluator):
    """An :class:`Evaluator` that also understands the shard-only nodes."""

    def _dispatch(
        self, expr: A.Expr, instance: Instance, memo: dict[A.Expr, RegionSet]
    ) -> RegionSet:
        if isinstance(expr, RegionLiteral):
            limits = getattr(self._local, "limits", None)
            if limits is not None:
                limits.check()
            return RegionSet(expr.regions)
        if isinstance(expr, OrderBound):
            limits = getattr(self._local, "limits", None)
            if limits is not None:
                limits.check()
            child = self._eval(expr.child, instance, memo)
            bound = expr.bound
            if expr.kind == "preceding":
                return child.select(lambda r: r.right < bound)
            return child.select(lambda r: r.left > bound)
        return super()._dispatch(expr, instance, memo)

    def evaluate_with(
        self,
        expr: A.Expr,
        instance: Instance,
        memo: dict[A.Expr, RegionSet],
        deadline: float | None = None,
        cancel: CancelToken | None = None,
    ) -> RegionSet:
        """Like :meth:`evaluate`, but against a caller-owned memo.

        The executor evaluates several rewritten expressions per shard
        within one query (one per exchange round plus the final
        scatter); a shared memo lets later phases reuse the unchanged
        subtrees earlier phases already computed.
        """
        limited = deadline is not None or cancel is not None
        if limited:
            self._local.limits = limits = _Limits(deadline, cancel)
        try:
            if limited:
                limits.check()
            if self.vm_enabled and self.memoize and memo.get(expr) is None:
                program = self._vm_program(expr)
                if program is not None:
                    if self._observed:
                        from repro.algebra.evaluator import EvalStats

                        stats = self.last_stats
                        if stats is None:
                            self.last_stats = stats = EvalStats()
                        stats.nodes_evaluated += program.size + program.cse_hits
                        stats.memo_hits += program.cse_hits
                        stats.compiled = True
                    result = self._run_program(program, instance)
                    memo[expr] = result
                    return result
            return self._eval(expr, instance, memo)
        finally:
            if limited:
                self._local.limits = None
