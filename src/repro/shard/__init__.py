"""Sharded parallel query execution (scatter-gather over forest cuts).

The hierarchy restriction (Definition 2.2: regions pairwise disjoint or
strictly nested) makes every instance an ordered forest, and the forest
can be cut between its top-level trees without separating any pair of
regions one of which includes the other.  That is exactly the
decomposition a sharded executor needs:

* the **partitioner** (:mod:`repro.shard.partition`) cuts an instance
  into K contiguous segments at top-level forest boundaries, balanced
  by region count (document-aligned for a multi-document corpus, whose
  ``document`` regions are the forest roots);
* the **planner** (:mod:`repro.shard.planner`) walks a query AST and
  classifies each operator as *shard-local* (``∪ ∩ −``, ``⊃ ⊂``,
  ``⊃_d ⊂_d``, ``σ_p``, ``bi``) or *boundary-crossing* (the ordering
  semi-joins ``<`` and ``>``, plus match-point leaves whose occurrences
  may span a cut);
* the **executor** (:mod:`repro.shard.executor`) runs shard-local plan
  fragments in parallel and resolves each boundary-crossing operator
  with an O(1)-per-cut exchange (a single endpoint scalar per shard);
* the **merge** (:mod:`repro.shard.merge`) reassembles per-shard
  results with an order-preserving k-way merge.

``Engine(shards=K)`` and ``ServerConfig(shards=K)`` are the front
doors; ``docs/internals.md`` has the operator classification table and
the correctness argument.
"""

from repro.shard.executor import ShardExecutor
from repro.shard.merge import merge_region_sets
from repro.shard.partition import Partition, Segment, partition_instance
from repro.shard.planner import ShardPlan, classify

__all__ = [
    "Partition",
    "Segment",
    "partition_instance",
    "ShardPlan",
    "classify",
    "ShardExecutor",
    "merge_region_sets",
]
