"""Scatter-gather execution of queries over a sharded instance.

One :class:`ShardExecutor` owns the partition of an instance and a
worker pool, and runs each query in at most ``rounds + 1`` parallel
phases:

1. **Route** — match-point patterns are evaluated once on the
   coordinator and their occurrences routed to the segment owning
   their left endpoint (an occurrence spanning a cut forces a safe
   fallback to single-shard evaluation);
2. **Exchange** (once per round of the plan) — every shard evaluates
   the rewritten right operands of that round's ``<``/``>`` nodes and
   returns two scalars per operand (max left endpoint, min right
   endpoint); the coordinator folds them into global bounds;
3. **Final scatter** — every shard evaluates the fully rewritten
   expression against its segment;
4. **Merge** — per-shard results reassemble with the order-preserving
   k-way merge.

Pools: ``"thread"`` (default) runs tasks on a
:class:`~concurrent.futures.ThreadPoolExecutor` with tracing context
propagated into each task; ``"process"`` ships picklable segment
instances to a :class:`~concurrent.futures.ProcessPoolExecutor` once
per worker (cancel tokens cannot cross the process boundary, so only
deadlines bound in-flight process tasks); ``"serial"`` runs tasks
inline, which the scaling benchmark uses to time per-shard work
without pool interleaving.

Failure policy (fault point ``shard.task``): a failed shard task is
retried once; a second failure degrades the whole query to plain
single-shard evaluation on the coordinator.  Deadline and cancel
tokens propagate into every task, and the first task to time out or
observe a cancel trips an internal event that aborts its siblings.
"""

from __future__ import annotations

import contextvars
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from time import monotonic, perf_counter
from typing import TYPE_CHECKING, Any

from repro.algebra import ast as A
from repro.algebra.evaluator import CancelToken
from repro.algebra.parser import parse
from repro.core.instance import Instance
from repro.core.regionset import RegionSet
from repro.core.wordindex import TextWordIndex
from repro.errors import (
    EvaluationError,
    FaultInjected,
    QueryCancelled,
    QueryTimeout,
    ReproError,
)
from repro.faults import registry as _faults
from repro.obs import context as _trace_context
from repro.obs.trace import maybe_span
from repro.shard.merge import merge_region_sets, summarize_result as _summarize
from repro.shard.partition import Partition, partition_instance
from repro.shard.planner import ShardPlan, classify
from repro.shard.rewrite import ShardEvaluator, rewrite

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.trace import Tracer

__all__ = ["ShardExecutor", "ShardRunStats", "POOL_KINDS"]

POOL_KINDS = ("thread", "process", "serial")


@dataclass
class ShardRunStats:
    """Timing and outcome accounting for one :meth:`ShardExecutor.run`."""

    shards: int
    rounds: int = 0
    #: one inner list per parallel phase; entry ``i`` is shard ``i``'s
    #: task seconds (exchange rounds first, final scatter last)
    phase_seconds: list[list[float]] = field(default_factory=list)
    merge_seconds: float = 0.0
    retries: int = 0
    degraded: bool = False
    fallback: str | None = None  #: why the run went single-shard, if it did

    def critical_path_seconds(self) -> float:
        """Per-phase maxima plus merge: the wall time a machine with one
        core per shard would need (the scaling benchmark's metric)."""
        return (
            sum(max(phase) for phase in self.phase_seconds if phase)
            + self.merge_seconds
        )


class _CombinedToken:
    """External cancel token OR'd with the run's internal abort event."""

    __slots__ = ("external", "internal")

    def __init__(self, external: CancelToken | None):
        self.external = external
        self.internal = threading.Event()

    def is_set(self) -> bool:
        return self.internal.is_set() or (
            self.external is not None and self.external.is_set()
        )


class _Degrade(ReproError):
    """Internal: a shard failed twice; fall back to single-shard."""

    def __init__(self, phase: str, shard: int):
        self.phase = phase
        self.shard = shard
        super().__init__(f"shard {shard} failed twice in phase {phase!r}")


def _remaining(deadline_at: float | None, budget: float | None) -> float | None:
    if deadline_at is None:
        return None
    remaining = deadline_at - monotonic()
    if remaining <= 0:
        raise QueryTimeout(budget or 0.0, elapsed=(budget or 0.0) - remaining)
    return remaining


# ----------------------------------------------------------------------
# Process-pool worker side.  Segments ship once per worker (initializer),
# then tasks reference them by index; results travel back as pickled
# RegionSets or scalar pairs.
# ----------------------------------------------------------------------

_PROCESS_SEGMENTS: tuple[Instance, ...] | None = None
_PROCESS_EVALUATOR: ShardEvaluator | None = None


def _process_init(
    segments: tuple[Instance, ...], strategy: str, vm: bool = True
) -> None:
    global _PROCESS_SEGMENTS, _PROCESS_EVALUATOR
    _PROCESS_SEGMENTS = segments
    _PROCESS_EVALUATOR = ShardEvaluator(strategy, vm=vm)


def _process_task(
    index: int,
    exprs: list[A.Expr],
    want: str,
    deadline: float | None,
    trace: dict[str, Any] | None = None,
) -> tuple[float, list[Any], dict[str, Any] | None]:
    """One shard's work inside a worker process.

    ``trace`` is the coordinator's :class:`TraceContext` as a dict (the
    context variable itself cannot cross the pickle boundary).  When
    present, the worker re-activates it — so the head-sampling decision
    still gates ``eval.*`` detail — runs under a process-local tracer,
    and ships the finished ``shard.task`` subtree back as the third
    element for the coordinator to re-parent with :meth:`Tracer.adopt`.
    """
    assert _PROCESS_SEGMENTS is not None and _PROCESS_EVALUATOR is not None
    instance = _PROCESS_SEGMENTS[index]
    memo: dict[A.Expr, RegionSet] = {}
    if trace is None:
        started = perf_counter()
        out: list[Any] = []
        for expr in exprs:
            result = _PROCESS_EVALUATOR.evaluate_with(
                expr, instance, memo, deadline=deadline
            )
            out.append(_summarize(result) if want == "exchange" else result)
        return (perf_counter() - started, out, None)

    from repro.obs.trace import Tracer, span_to_dict

    tracer = Tracer(enabled=True)
    evaluator = ShardEvaluator(
        _PROCESS_EVALUATOR.strategy,
        tracer=tracer,
        vm=_PROCESS_EVALUATOR.vm_enabled,
    )
    token = _trace_context.activate(
        _trace_context.TraceContext.from_dict(trace)
    )
    try:
        with tracer.span("shard.task", shard=index) as span:
            started = perf_counter()
            out = []
            for expr in exprs:
                result = evaluator.evaluate_with(
                    expr, instance, memo, deadline=deadline
                )
                out.append(_summarize(result) if want == "exchange" else result)
            seconds = perf_counter() - started
        return (seconds, out, span_to_dict(span))
    finally:
        _trace_context.restore(token)


class ShardExecutor:
    """Parallel scatter-gather evaluation over a partitioned instance."""

    def __init__(
        self,
        instance: Instance,
        shards: int,
        pool: str = "thread",
        strategy: str = "indexed",
        max_workers: int | None = None,
        tracer: "Tracer | None" = None,
        metrics: "MetricsRegistry | None" = None,
        vm: bool = True,
    ):
        if pool not in POOL_KINDS:
            raise ReproError(
                f"unknown shard pool {pool!r} (available: {', '.join(POOL_KINDS)})"
            )
        self.partition: Partition = partition_instance(instance, shards)
        self.pool_kind = pool
        self.strategy = strategy
        self.tracer = tracer
        self.metrics = metrics
        self.vm = vm
        self._instance = instance
        self._evaluator = ShardEvaluator(
            strategy, tracer=tracer, metrics=metrics, vm=vm
        )
        self._max_workers = max_workers or max(len(self.partition), 1)
        self._pool: ThreadPoolExecutor | ProcessPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        self._local = threading.local()
        self._tasks_total = self._task_hist = self._merge_hist = None
        self._retries_total = self._degraded_total = self._fallback_total = None
        if metrics is not None:
            from repro.obs.metrics import (
                SHARD_DEGRADED_TOTAL,
                SHARD_FALLBACK_TOTAL,
                SHARD_MERGE_SECONDS,
                SHARD_TASK_RETRIES_TOTAL,
                SHARD_TASK_SECONDS,
                SHARD_TASKS_TOTAL,
            )

            self._tasks_total = metrics.counter(SHARD_TASKS_TOTAL)
            self._task_hist = metrics.histogram(SHARD_TASK_SECONDS)
            self._merge_hist = metrics.histogram(SHARD_MERGE_SECONDS)
            self._retries_total = metrics.counter(SHARD_TASK_RETRIES_TOTAL)
            self._degraded_total = metrics.counter(SHARD_DEGRADED_TOTAL)
            self._fallback_total = metrics.counter(SHARD_FALLBACK_TOTAL)

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    def _ensure_pool(self) -> ThreadPoolExecutor | ProcessPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                if self.pool_kind == "thread":
                    self._pool = ThreadPoolExecutor(
                        max_workers=self._max_workers,
                        thread_name_prefix="repro-shard",
                    )
                else:
                    segments = tuple(
                        segment.instance for segment in self.partition.segments
                    )
                    self._pool = ProcessPoolExecutor(
                        max_workers=self._max_workers,
                        initializer=_process_init,
                        initargs=(segments, self.strategy, self.vm),
                    )
            return self._pool

    def close(self) -> None:
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=False, cancel_futures=True)
                self._pool = None

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    @property
    def last_stats(self) -> ShardRunStats | None:
        """This thread's most recent :meth:`run` accounting."""
        return getattr(self._local, "stats", None)

    # ------------------------------------------------------------------
    # The query path.
    # ------------------------------------------------------------------

    def run(
        self,
        expr: A.Expr | str,
        deadline: float | None = None,
        cancel: CancelToken | None = None,
    ) -> RegionSet:
        """Evaluate ``expr`` across all shards; same result as
        :meth:`Evaluator.evaluate` on the whole instance."""
        if isinstance(expr, str):
            expr = parse(expr)
        if deadline is not None and deadline < 0:
            raise EvaluationError("deadline must be non-negative")
        deadline_at = monotonic() + deadline if deadline is not None else None
        stats = ShardRunStats(shards=len(self.partition))
        self._local.stats = stats
        with maybe_span(
            self.tracer, "shard.query", shards=len(self.partition), pool=self.pool_kind
        ) as root:
            result = self._run(expr, deadline, deadline_at, cancel, stats, root)
            if root is not None:
                root.set("cardinality", len(result))
                if stats.fallback:
                    root.set("fallback", stats.fallback)
                if stats.degraded:
                    root.set("degraded", True)
        return result

    def _run(self, expr, budget, deadline_at, cancel, stats, root) -> RegionSet:
        if len(self.partition) <= 1:
            stats.fallback = "single_segment"
            if self._fallback_total is not None:
                self._fallback_total.inc(reason="single_segment")
            return self._single_shard(expr, budget, deadline_at, cancel)
        plan = classify(expr)
        stats.rounds = plan.rounds
        if root is not None:
            root.set("rounds", plan.rounds)
        points, reason = self._route_points(plan)
        if reason is not None:
            stats.fallback = reason
            if self._fallback_total is not None:
                self._fallback_total.inc(reason=reason)
            return self._single_shard(expr, budget, deadline_at, cancel)
        token = _CombinedToken(cancel)
        memos: list[dict[A.Expr, RegionSet]] = [{} for _ in self.partition.segments]
        bounds: dict[A.Expr, int | None] = {}
        try:
            for round_no in range(1, plan.rounds + 1):
                nodes = plan.nodes_in_round(round_no)
                rights = list(dict.fromkeys(b.node.right for b in nodes))
                shard_exprs = [
                    [rewrite(right, bounds, points[i]) for right in rights]
                    for i in range(len(self.partition))
                ]
                per_shard = self._run_phase(
                    f"exchange{round_no}",
                    shard_exprs,
                    "exchange",
                    budget,
                    deadline_at,
                    token,
                    memos,
                    stats,
                )
                for j, right in enumerate(rights):
                    max_left: int | None = None
                    min_right: int | None = None
                    for shard_out in per_shard:
                        ml, mr = shard_out[j]
                        if ml is not None and (max_left is None or ml > max_left):
                            max_left = ml
                        if mr is not None and (min_right is None or mr < min_right):
                            min_right = mr
                    for b in nodes:
                        if b.node.right == right:
                            bounds[b.node] = (
                                max_left
                                if isinstance(b.node, A.Preceding)
                                else min_right
                            )
            final_exprs = [
                [rewrite(expr, bounds, points[i])]
                for i in range(len(self.partition))
            ]
            per_shard = self._run_phase(
                "final", final_exprs, "sets", budget, deadline_at, token, memos, stats
            )
        except _Degrade:
            token.internal.set()  # stop whatever siblings are still running
            stats.degraded = True
            if self._degraded_total is not None:
                self._degraded_total.inc()
            return self._single_shard(expr, budget, deadline_at, cancel)
        merge_started = perf_counter()
        result = merge_region_sets([out[0] for out in per_shard])
        stats.merge_seconds = perf_counter() - merge_started
        if self._merge_hist is not None:
            self._merge_hist.observe(stats.merge_seconds)
        if self.tracer is not None and self.tracer.enabled:
            # Timed around the call rather than with an open span so the
            # merge itself runs unobserved; backdated under shard.query.
            self.tracer.record_span(
                "shard.merge",
                stats.merge_seconds,
                shards=len(per_shard),
                cardinality=len(result),
            )
        return result

    def _single_shard(self, expr, budget, deadline_at, cancel) -> RegionSet:
        return self._evaluator.evaluate(
            expr,
            self._instance,
            deadline=_remaining(deadline_at, budget),
            cancel=cancel,
        )

    def _route_points(
        self, plan: ShardPlan
    ) -> tuple[list[dict[str, tuple]], str | None]:
        """Per-shard match-point assignments, or a fallback reason."""
        k = len(self.partition)
        routed: list[dict[str, tuple]] = [{} for _ in range(k)]
        if not plan.patterns:
            return routed, None
        word_index = self._instance.word_index
        if not isinstance(word_index, TextWordIndex):
            # Single-shard evaluation raises the same "needs a
            # text-backed word index" error the caller would see anyway.
            return routed, "label_index"
        for pattern in plan.patterns:
            buckets: list[list] = [[] for _ in range(k)]
            for region in word_index.match_points(pattern):
                owner = self.partition.owner_of(region.left)
                if owner.own_right is not None and region.right > owner.own_right:
                    # The occurrence crosses a cut; replicating it would
                    # break operators that relate it to regions on both
                    # sides (e.g. as a both-included source), so give up
                    # on sharding this query.
                    return routed, "spanning_match_point"
                buckets[owner.index].append(region)
            for i in range(k):
                routed[i][pattern] = tuple(buckets[i])
        return routed, None

    # ------------------------------------------------------------------
    # Phase execution (scatter + gather with retry/degrade).
    # ------------------------------------------------------------------

    def _run_phase(
        self, phase, shard_exprs, want, budget, deadline_at, token, memos, stats
    ) -> list[list[Any]]:
        k = len(self.partition)
        timings = [0.0] * k
        stats.phase_seconds.append(timings)
        if self.pool_kind == "process":
            return self._gather_process(
                phase, shard_exprs, want, budget, deadline_at, token, stats, timings
            )

        evaluator = self._evaluator
        segments = self.partition.segments

        def task(i: int) -> tuple[float, list[Any]]:
            # The fault point fires *inside* the span so an injected
            # fault leaves a fault-marked shard.task span in the trace —
            # the invariant the chaos harness audits.
            with maybe_span(
                self.tracer, "shard.task", shard=i, phase=phase
            ) as span:
                try:
                    if _faults._active is not None:
                        _faults._active.fire("shard.task")
                    started = perf_counter()
                    out: list[Any] = []
                    for expr in shard_exprs[i]:
                        result = evaluator.evaluate_with(
                            expr,
                            segments[i].instance,
                            memos[i],
                            deadline=_remaining(deadline_at, budget),
                            cancel=token,
                        )
                        out.append(
                            _summarize(result) if want == "exchange" else result
                        )
                    return (perf_counter() - started, out)
                except FaultInjected:
                    if span is not None:
                        span.set("fault", True)
                    raise
                except (QueryCancelled, QueryTimeout):
                    raise
                except Exception as exc:
                    if span is not None:
                        span.set("error", type(exc).__name__)
                    raise

        if self.pool_kind == "serial":
            return [
                self._settle_inline(task, i, phase, stats, timings) for i in range(k)
            ]
        pool = self._ensure_pool()
        futures = []
        for i in range(k):
            ctx = contextvars.copy_context()
            futures.append(pool.submit(ctx.run, task, i))
        outs: list[list[Any]] = []
        error: BaseException | None = None
        for i, future in enumerate(futures):
            if error is not None:
                future.cancel()
                continue
            try:
                seconds, payload = future.result()
            except (QueryCancelled, QueryTimeout) as exc:
                token.internal.set()
                error = exc
                continue
            except Exception:
                try:
                    seconds, payload = self._retry(task, i, phase, stats)
                except (QueryCancelled, QueryTimeout) as exc:
                    token.internal.set()
                    error = exc
                    continue
                except Exception as exc:
                    token.internal.set()
                    raise _Degrade(phase, i) from exc
            timings[i] = seconds
            self._observe_task(phase, seconds)
            outs.append(payload)
        if error is not None:
            raise error
        return outs

    def _settle_inline(self, task, i, phase, stats, timings) -> list[Any]:
        try:
            seconds, payload = task(i)
        except (QueryCancelled, QueryTimeout):
            raise
        except Exception:
            try:
                seconds, payload = self._retry(task, i, phase, stats)
            except (QueryCancelled, QueryTimeout):
                raise
            except Exception as exc:
                raise _Degrade(phase, i) from exc
        timings[i] = seconds
        self._observe_task(phase, seconds)
        return payload

    def _retry(self, task, i, phase, stats) -> tuple[float, list[Any]]:
        """Re-run shard ``i``'s task once, inline on the coordinator."""
        stats.retries += 1
        if self._retries_total is not None:
            self._retries_total.inc(phase=phase)
        return task(i)

    def _observe_task(self, phase: str, seconds: float) -> None:
        if self._tasks_total is not None:
            self._tasks_total.inc(phase=phase)
        if self._task_hist is not None:
            self._task_hist.observe(seconds)

    def _gather_process(
        self, phase, shard_exprs, want, budget, deadline_at, token, stats, timings
    ) -> list[list[Any]]:
        """Process-pool variant: fault point and deadline accounting run
        coordinator-side; cancel tokens cannot reach in-flight workers,
        so cancellation is only observed between tasks."""
        k = len(self.partition)
        pool = self._ensure_pool()
        tracer = self.tracer
        tracing = tracer is not None and tracer.enabled
        trace_arg: dict[str, Any] | None = None
        if tracing:
            context = _trace_context.current()
            trace_arg = (
                context.to_dict()
                if context is not None
                else {"trace_id": "", "sampled": True}
            )

        def submit(i: int):
            if token.is_set():
                raise QueryCancelled()
            if _faults._active is not None:
                try:
                    _faults._active.fire("shard.task")
                except FaultInjected:
                    if tracing:
                        # The fault struck before the task left the
                        # coordinator; synthesize the fault-marked span
                        # the worker never got to record.
                        tracer.record_span(
                            "shard.task", 0.0, shard=i, phase=phase, fault=True
                        )
                    raise
            return pool.submit(
                _process_task,
                i,
                shard_exprs[i],
                want,
                _remaining(deadline_at, budget),
                trace_arg,
            )

        outs: list[list[Any]] = []
        futures = []
        for i in range(k):
            try:
                futures.append(submit(i))
            except (QueryCancelled, QueryTimeout):
                raise
            except Exception:
                try:
                    stats.retries += 1
                    if self._retries_total is not None:
                        self._retries_total.inc(phase=phase)
                    futures.append(submit(i))
                except (QueryCancelled, QueryTimeout):
                    raise
                except Exception as exc:
                    raise _Degrade(phase, i) from exc
        for i, future in enumerate(futures):
            try:
                seconds, payload, span_dump = future.result()
            except (QueryCancelled, QueryTimeout):
                raise
            except Exception:
                try:
                    seconds, payload, span_dump = self._retry_process(
                        submit, i, phase, stats
                    )
                except (QueryCancelled, QueryTimeout):
                    raise
                except Exception as exc:
                    raise _Degrade(phase, i) from exc
            timings[i] = seconds
            self._observe_task(phase, seconds)
            outs.append(payload)
            if tracing and span_dump is not None:
                # Re-parent the worker's shipped subtree under the
                # coordinator's current span so the stitched trace
                # crosses the process boundary.
                adopted = tracer.adopt(span_dump)
                if adopted is not None:
                    adopted.set("phase", phase)
            if token.is_set():
                raise QueryCancelled()
        return outs

    def _retry_process(
        self, submit, i, phase, stats
    ) -> tuple[float, list[Any], dict[str, Any] | None]:
        stats.retries += 1
        if self._retries_total is not None:
            self._retries_total.inc(phase=phase)
        return submit(i).result()
