"""Order-preserving reassembly of per-shard results.

Segments own disjoint, increasing spans of the position axis, and every
region a shard task can return lies inside its segment's ownership
span, so per-shard result sets — each already in canonical
``(left, right)`` order — concatenate into a globally sorted,
duplicate-free sequence.  :func:`merge_region_sets` verifies that
boundary condition in O(K) and takes the concatenation fast path
through :meth:`RegionSet._from_sorted`; inputs that interleave (the
function is usable standalone) fall back to a k-way heap merge.
"""

from __future__ import annotations

from heapq import merge as _heap_merge
from typing import Sequence

from repro.core.region import Region
from repro.core.regionset import RegionSet

__all__ = ["merge_region_sets", "summarize_result"]


def summarize_result(result: RegionSet) -> tuple[int | None, int | None]:
    """The two exchange scalars of a per-shard result: (max left
    endpoint, min right endpoint), ``None``\\ s when empty.

    These are the only values an ordering semi-join needs from the
    global right operand, and they are what crosses shard — and, in the
    multi-process backend layer, process — boundaries during exchange
    rounds."""
    regions = result.regions
    if not regions:
        return (None, None)
    return (regions[-1].left, min(r.right for r in regions))


def merge_region_sets(sets: Sequence[RegionSet]) -> RegionSet:
    """The union of ``sets``, preserving canonical region order."""
    parts = [s for s in sets if s]
    if not parts:
        return RegionSet.empty()
    if len(parts) == 1:
        return parts[0]
    if all(
        prev.regions[-1] < cur.regions[0]
        for prev, cur in zip(parts, parts[1:])
    ):
        regions: list[Region] = []
        for part in parts:
            regions.extend(part.regions)
        return RegionSet._from_sorted(regions)
    out: list[Region] = []
    for region in _heap_merge(*(part.regions for part in parts)):
        if not out or out[-1] != region:
            out.append(region)
    return RegionSet._from_sorted(out)
