"""Shard-aware query planning: which operators cross a cut, and when.

With an instance cut at top-level forest boundaries
(:mod:`repro.shard.partition`), evaluating an expression independently
per segment and unioning the results is correct for every operator
except two kinds of node:

=====================  ==============================================
``∪ ∩ −``              shard-local: identity-based over region sets
                       that partition disjointly across segments
``⊃ ⊂``                shard-local: ``r ⊃ s`` forces ``r`` and ``s``
                       into the same top-level tree
``⊃_d ⊂_d``            shard-local: direct inclusion is the parent
                       relation inside one tree
``σ_p``                shard-local: per-region predicate over the
                       shared word index
``bi``                 shard-local: both witnesses nest strictly
                       inside the source region
``< >``                **boundary-crossing**: a region may precede or
                       follow regions in *other* segments
``match points``       **boundary-crossing**: word occurrences are
                       not instance regions, so one may span a cut
=====================  ==============================================

The ordering semi-joins need only a single scalar from the global
right-operand result (``R < S`` keeps ``r`` iff ``right(r)`` is below
the global maximum left endpoint of ``S``; ``R > S`` is symmetric with
the global minimum right endpoint — exactly how the indexed
:meth:`~repro.core.regionset.RegionSet.preceding`/``following``
implementations already work).  :func:`classify` finds every such node
and schedules its exchange into **rounds**: a node can be resolved only
after every ordering node inside its *right* operand has been, because
the scalar is extracted from the right operand's per-shard results.
Round ``r`` nodes depend only on rounds ``< r``, so the executor runs
one scatter/gather of scalars per round.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra import ast as A

__all__ = ["BoundaryNode", "ShardPlan", "classify"]


@dataclass(frozen=True)
class BoundaryNode:
    """One ``<`` or ``>`` node and the exchange round that resolves it."""

    node: A.BinaryOp  #: a Preceding or Following node of the original AST
    round: int  #: 1-based; resolved after all rounds below it

    @property
    def kind(self) -> str:
        return "preceding" if isinstance(self.node, A.Preceding) else "following"


@dataclass(frozen=True)
class ShardPlan:
    """The classification of one expression for sharded execution."""

    expr: A.Expr
    boundary: tuple[BoundaryNode, ...]  #: ordering nodes needing exchange
    patterns: tuple[str, ...]  #: match-point patterns needing routing

    @property
    def local(self) -> bool:
        """True when a plain scatter/merge is already correct."""
        return not self.boundary and not self.patterns

    @property
    def rounds(self) -> int:
        return max((b.round for b in self.boundary), default=0)

    def nodes_in_round(self, round: int) -> list[BoundaryNode]:
        return [b for b in self.boundary if b.round == round]


def classify(expr: A.Expr) -> ShardPlan:
    """Build the :class:`ShardPlan` for an expression.

    Equal sub-expressions (the evaluator memoizes by node equality) get
    one boundary entry at the latest round any occurrence needs; its
    exchanged scalar is context-independent, so one resolution serves
    every occurrence.
    """
    rounds: dict[A.Expr, int] = {}

    def visit(node: A.Expr) -> int:
        """Max round over boundary nodes in the subtree (0 when none)."""
        if isinstance(node, (A.Preceding, A.Following)):
            left_max = visit(node.left)
            own = visit(node.right) + 1
            if rounds.get(node, 0) < own:
                rounds[node] = own
            return max(left_max, own)
        return max((visit(child) for child in A.children(node)), default=0)

    visit(expr)
    patterns = sorted(
        node.pattern for node in A.walk(expr) if isinstance(node, A.MatchPoints)
    )
    boundary = tuple(
        sorted(
            (BoundaryNode(node, round) for node, round in rounds.items()),
            key=lambda b: b.round,
        )
    )
    return ShardPlan(expr, boundary, tuple(dict.fromkeys(patterns)))
