"""Cutting a hierarchical instance into shard segments.

A hierarchical instance is an ordered forest (Section 3): its top-level
regions — those included in no other region — are pairwise disjoint and
sit in document order, and every other region lives inside exactly one
of them.  Cutting *between* top-level trees therefore never separates a
region from anything it includes, is included in, or directly includes:
all containment relations stay inside one segment, and only the
ordering relations ``<``/``>`` (plus word-index match points, which are
not instance regions) can cross a cut.

:func:`partition_instance` assigns whole top-level trees to K
contiguous segments, balanced by region count with a greedy sweep.  For
a multi-document :class:`~repro.engine.corpus.Corpus` the forest roots
*are* the ``document`` regions, so cuts are document-aligned by
construction.  Each segment carries a restricted sub-:class:`Instance`
(sharing the word index — ``W(r, p)`` is position-keyed and identical
on any restriction) and the half-open *ownership span* of text
positions it is responsible for, which the executor uses to route
match points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.instance import Instance
from repro.core.region import Region
from repro.core.regionset import RegionSet
from repro.errors import ReproError

__all__ = ["Segment", "Partition", "partition_instance"]


@dataclass(frozen=True)
class Segment:
    """One shard: a contiguous run of top-level trees.

    ``own_left``/``own_right`` bound the positions this segment owns
    (inclusive; ``None`` means unbounded).  Ownership spans tile the
    whole axis — gaps between trees belong to the segment on their
    left — so every position, and hence every match point's left
    endpoint, has exactly one owner.
    """

    index: int
    instance: Instance
    roots: tuple[Region, ...]
    own_left: int | None  #: first owned position (None = -inf)
    own_right: int | None  #: last owned position (None = +inf)

    @property
    def region_count(self) -> int:
        return len(self.instance)

    def owns(self, position: int) -> bool:
        if self.own_left is not None and position < self.own_left:
            return False
        if self.own_right is not None and position > self.own_right:
            return False
        return True

    def summary(self) -> dict[str, Any]:
        """JSON-ready description (CLI ``stats`` and ``/corpora``)."""
        return {
            "index": self.index,
            "roots": len(self.roots),
            "regions": self.region_count,
            "span": [
                self.roots[0].left if self.roots else None,
                self.roots[-1].right if self.roots else None,
            ],
        }


@dataclass(frozen=True)
class Partition:
    """An instance cut into segments at top-level forest boundaries."""

    instance: Instance
    segments: tuple[Segment, ...]
    requested: int  #: the K asked for (len(segments) may be smaller)

    def __len__(self) -> int:
        return len(self.segments)

    def owner_of(self, position: int) -> Segment:
        """The segment whose ownership span covers ``position``."""
        lo, hi = 0, len(self.segments) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            right = self.segments[mid].own_right
            if right is not None and position > right:
                lo = mid + 1
            else:
                hi = mid
        return self.segments[lo]

    def boundary_regions(self) -> list[tuple[Region, Region]]:
        """The top-level trees adjacent to each cut — two per cut.

        These are the O(1)-per-cut regions the fix-up pass reasons
        about; the CLI reports them in the partition summary.
        """
        out: list[tuple[Region, Region]] = []
        for left, right in zip(self.segments, self.segments[1:]):
            if left.roots and right.roots:
                out.append((left.roots[-1], right.roots[0]))
        return out

    def summary(self) -> dict[str, Any]:
        return {
            "requested": self.requested,
            "segments": [segment.summary() for segment in self.segments],
            "cuts": len(self.segments) - 1,
            "boundary_regions": [
                [a.as_tuple(), b.as_tuple()] for a, b in self.boundary_regions()
            ],
        }


def _restrict(instance: Instance, roots: list[Region]) -> Instance:
    """The sub-instance of everything inside the given top-level trees.

    A single merge-style sweep: both the root list and each name's
    region set are in ``(left, right)`` order, so membership of a
    region in some root's interval is a linear scan with a moving
    cursor.  The word index is shared, not copied.
    """
    sets: dict[str, RegionSet] = {}
    for name in instance.names:
        kept: list[Region] = []
        cursor = 0
        for region in instance.region_set(name):
            while cursor < len(roots) and roots[cursor].right < region.left:
                cursor += 1
            if cursor >= len(roots):
                break
            root = roots[cursor]
            if region.left >= root.left and region.right <= root.right:
                kept.append(region)
        sets[name] = RegionSet(kept)
    return Instance(sets, instance.word_index, validate=False)


def partition_instance(instance: Instance, shards: int) -> Partition:
    """Cut ``instance`` into at most ``shards`` contiguous segments.

    Top-level trees (forest roots) are the indivisible units; segments
    are balanced by total region count with a greedy sweep toward the
    ideal ``total / shards`` load.  With fewer roots than requested
    shards, every root gets its own segment and the partition is
    smaller than asked — a single-root document simply cannot be cut at
    top level, and the executor degenerates to one task.
    """
    if shards < 1:
        raise ReproError("shard count must be at least 1")
    forest = instance.forest()
    roots = forest.roots()  # document order: roots are disjoint, sorted
    if not roots:
        segment = Segment(0, instance, (), None, None)
        return Partition(instance, (segment,), shards)
    # Subtree weight per root = regions in its interval (the root's tree).
    weights = [1 + len(forest.descendants_of(root)) for root in roots]
    k = min(shards, len(roots))
    groups: list[list[int]] = []
    remaining_weight = sum(weights)
    remaining_groups = k
    load = 0
    current: list[int] = []
    for i, weight in enumerate(weights):
        current.append(i)
        load += weight
        roots_left = len(roots) - i - 1
        groups_left = remaining_groups - 1
        target = remaining_weight / remaining_groups
        # Close the group at the balance target, or early if leaving it
        # open would starve a later group of roots.
        if groups_left and (load >= target or roots_left <= groups_left):
            groups.append(current)
            remaining_weight -= load
            remaining_groups -= 1
            current, load = [], 0
    if current:
        groups.append(current)
    segments: list[Segment] = []
    for index, group in enumerate(groups):
        group_roots = [roots[i] for i in group]
        own_left = None if index == 0 else group_roots[0].left
        own_right = (
            None
            if index == len(groups) - 1
            else roots[groups[index + 1][0]].left - 1
        )
        segments.append(
            Segment(
                index=index,
                instance=_restrict(instance, group_roots),
                roots=tuple(group_roots),
                own_left=own_left,
                own_right=own_right,
            )
        )
    return Partition(instance, tuple(segments), shards)
