"""The executable counter-examples of Section 5 (Figures 2 and 3).

Each refuter takes a candidate expression claimed to compute an
extended operator and returns a *witness instance* on which the
candidate disagrees with the operator's true semantics — or ``None`` if
the family fails to refute it (which the paper's theorems say cannot
happen for core-algebra candidates; the enumeration tests confirm it
for every small expression).

The search mirrors the proofs:

* **Theorem 5.1 / Figure 2** — build the alternating ``B ⊃ A ⊃ B ⊃ …``
  tower of depth ``4|e| + 2``.  By Theorem 4.1, some adjacent pair of
  regions escapes the candidate's witness set, so deleting the inner one
  flips a direct-inclusion fact the candidate cannot see.  The refuter
  checks the candidate against the true ``B ⊃_d A`` on the tower and on
  every single-deletion variant.
* **Theorem 5.3 / Figure 3** — build the ``4k+1`` sibling family with
  the doubled ``A`` in the middle ``C``; reducing the two isomorphic
  ``A`` regions removes the only ``B``-before-``A`` witness, and by
  Theorem 4.4 a candidate with ``k`` order operations cannot notice.
"""

from __future__ import annotations

from repro.algebra import ast as A
from repro.algebra.evaluator import Evaluator
from repro.core.instance import Instance
from repro.properties.reduction import reduce_regions
from repro.workloads.generators import figure_2_instance, figure_3_instance

__all__ = [
    "direct_inclusion_target",
    "both_included_target",
    "refute_direct_inclusion",
    "refute_both_included",
]

_EVALUATOR = Evaluator("indexed")


def direct_inclusion_target() -> A.Expr:
    """The operator Theorem 5.1 proves inexpressible: ``B ⊃_d A``."""
    return A.DirectlyIncluding(A.NameRef("B"), A.NameRef("A"))


def both_included_target() -> A.Expr:
    """The operator Theorem 5.3 proves inexpressible: ``C BI (B, A)``."""
    return A.BothIncluded(A.NameRef("C"), A.NameRef("B"), A.NameRef("A"))


def _disagree(candidate: A.Expr, target: A.Expr, instance: Instance) -> bool:
    return _EVALUATOR.evaluate(candidate, instance) != _EVALUATOR.evaluate(
        target, instance
    )


def refute_direct_inclusion(candidate: A.Expr) -> Instance | None:
    """A witness where ``candidate ≠ B ⊃_d A``, from the Figure 2 family."""
    target = direct_inclusion_target()
    depth = 4 * max(A.size(candidate), 1) + 2
    tower = figure_2_instance(depth)
    if _disagree(candidate, target, tower):
        return tower
    # Delete each single inner region in turn: some deletion flips a
    # direct-inclusion fact the candidate preserved (Theorem 4.1).
    for region in tower.all_regions():
        variant = tower.without_regions([region])
        if _disagree(candidate, target, variant):
            return variant
    return None


def refute_both_included(candidate: A.Expr) -> Instance | None:
    """A witness where ``candidate ≠ C BI (B, A)``, from the Figure 3 family."""
    target = both_included_target()
    k = A.order_op_count(candidate)
    family = figure_3_instance(k)
    if _disagree(candidate, target, family):
        return family
    # The proof's reduction step: merge the two isomorphic A regions of
    # the middle C, removing the only B-before-A witness.
    middle = _middle_c_children(family, k)
    if middle is not None:
        first_a, second_a = middle
        reduced, _ = reduce_regions(
            family, first_a, second_a, sorted(A.pattern_names(candidate))
        )
        if _disagree(candidate, target, reduced):
            return reduced
    return None


def _middle_c_children(instance: Instance, k: int):
    """The two ``A`` children of the middle ``C`` region, if present."""
    forest = instance.forest()
    c_regions = sorted(instance.region_set("C"), key=lambda r: r.left)
    middle = c_regions[2 * k]
    a_children = [
        child
        for child in forest.children_of(middle)
        if instance.name_of(child) == "A"
    ]
    if len(a_children) == 2:
        return a_children[0], a_children[1]
    return None
