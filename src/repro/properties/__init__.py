"""Section 4/5 machinery: deletion, reduction, and inexpressibility."""

from repro.properties.counterexamples import (
    both_included_target,
    direct_inclusion_target,
    refute_both_included,
    refute_direct_inclusion,
)
from repro.properties.deletion import (
    check_deletion_theorem,
    s_deleted_versions,
    witness_set,
)
from repro.properties.inexpressibility import (
    InexpressibilityReport,
    verify_parity_inexpressible,
    verify_proposition_5_5,
    verify_theorem_5_1,
    verify_theorem_5_3,
)
from repro.properties.reduction import (
    check_reduction_theorem,
    is_k_reduced,
    isomorphic,
    isomorphic_sibling_pairs,
    reduce_regions,
    subtree_signature,
)

__all__ = [
    "witness_set",
    "s_deleted_versions",
    "check_deletion_theorem",
    "subtree_signature",
    "isomorphic",
    "reduce_regions",
    "is_k_reduced",
    "isomorphic_sibling_pairs",
    "check_reduction_theorem",
    "direct_inclusion_target",
    "both_included_target",
    "refute_direct_inclusion",
    "refute_both_included",
    "InexpressibilityReport",
    "verify_theorem_5_1",
    "verify_parity_inexpressible",
    "verify_theorem_5_3",
    "verify_proposition_5_5",
]
