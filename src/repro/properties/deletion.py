"""Theorem 4.1: deletion-invariant witness sets.

For every expression ``e`` and instance ``I`` there is a set of regions
``S`` (of bounded nesting) such that any *S-deleted version* of ``I`` —
obtained by deleting regions while keeping all of ``S`` — preserves
both emptiness of ``e`` and membership of every surviving region.

The paper proves existence "by induction on the number of operations in
e, constructively building the desired S"; :func:`witness_set` realizes
that construction:

* name references and the set operations contribute nothing of their own
  (their behaviour is pointwise in the operands);
* each structural semi-join keeps, for every selected region ``r``, one
  witness from the right operand's result (chosen at minimal forest
  depth, which is what keeps the nesting of ``S`` within the 2|e|
  bound — every operator contributes at most a shallow antichain plus
  what its operands contributed);
* ``BI`` nodes keep a witness *pair* per selected region — this is the
  extra induction case of Proposition 5.5's remark that Theorem 4.1
  still holds for the algebra augmented with both-included.  A pair can
  contribute two nesting levels where a semi-join witness contributes
  one, so for expressions containing BI the nesting bound on ``S``
  relaxes from the paper's ``2|e|`` (stated for the core algebra) to
  ``2|e| + 2·#BI``;
* at top level one member of ``e(I)`` is kept so emptiness transfers.

The direct operators ``⊃_d``/``⊂_d`` deliberately have **no** case
here: Theorem 4.1 *fails* for them (deleting an intermediate region
changes direct-inclusion facts), which is precisely how Theorem 5.1
proves them inexpressible.  :func:`witness_set` raises on them.

The theorem's guarantees are property-tested by generating random
S-deleted versions (:func:`s_deleted_versions`) and checking conditions
(1) and (2).
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.algebra import ast as A
from repro.algebra.evaluator import Evaluator
from repro.core.instance import Instance
from repro.core.region import Region
from repro.core.regionset import RegionSet
from repro.errors import EvaluationError

__all__ = ["witness_set", "s_deleted_versions", "check_deletion_theorem"]


def witness_set(expr: A.Expr, instance: Instance) -> frozenset[Region]:
    """The Theorem 4.1 set ``S`` for ``expr`` and ``instance``."""
    evaluator = Evaluator("indexed")
    forest = instance.forest()
    collected: set[Region] = set()

    def depth(region: Region) -> int:
        return forest.depth_of(region)

    def visit(e: A.Expr) -> RegionSet:
        result = evaluator.evaluate(e, instance)
        if isinstance(e, (A.NameRef, A.Empty)):
            return result
        if isinstance(e, A.Select):
            visit(e.child)
            return result
        if isinstance(e, (A.Union, A.Intersection, A.Difference)):
            visit(e.left)
            visit(e.right)
            return result
        if isinstance(e, (A.Preceding, A.Following)):
            visit(e.left)
            right = visit(e.right)
            if result and right:
                # One witness serves every selected region: only the
                # extreme endpoint of the right operand matters.
                if isinstance(e, A.Preceding):
                    collected.add(max(right, key=lambda s: s.left))
                else:
                    collected.add(min(right, key=lambda s: s.right))
            return result
        if isinstance(e, (A.Including, A.IncludedIn)):
            visit(e.left)
            right = visit(e.right)
            # Innermost witnesses for ⊃ and outermost for ⊂ form an
            # antichain (a deeper/shallower nested alternative would have
            # been preferred), so each operator adds at most one level of
            # nesting to S — this is what keeps S within the 2|e| bound.
            if isinstance(e, A.Including):
                for r in result:
                    witnesses = [s for s in right if r.includes(s)]
                    if witnesses:
                        collected.add(max(witnesses, key=depth))
            else:
                for r in result:
                    witnesses = [s for s in right if r.included_in(s)]
                    if witnesses:
                        collected.add(min(witnesses, key=depth))
            return result
        if isinstance(e, A.BothIncluded):
            visit(e.source)
            first = visit(e.first)
            second = visit(e.second)
            for r in result:
                pairs = [
                    (s, t)
                    for s in first
                    if r.includes(s)
                    for t in second
                    if r.includes(t) and s.precedes(t)
                ]
                if pairs:
                    # Deepest valid pair: nested selected regions then tend
                    # to share their witnesses (a region's pair is valid
                    # for every selected ancestor).  Each BI node still
                    # contributes up to two nesting levels to S, hence the
                    # relaxed bound documented above.
                    s, t = max(pairs, key=lambda p: depth(p[0]) + depth(p[1]))
                    collected.add(s)
                    collected.add(t)
            return result
        raise EvaluationError(
            f"Theorem 4.1 does not hold for {type(e).__name__}: the deletion "
            "theorem fails for the direct operators (that is Theorem 5.1)"
        )

    top = visit(expr)
    if top:
        collected.add(min(top, key=depth))
    return frozenset(collected)


def s_deleted_versions(
    instance: Instance,
    witness: frozenset[Region],
    rng: random.Random,
    samples: int = 10,
    deletion_probability: float = 0.5,
) -> Iterator[Instance]:
    """Random S-deleted versions: delete non-witness regions at random."""
    deletable = [r for r in instance.all_regions() if r not in witness]
    for _ in range(samples):
        dropped = [r for r in deletable if rng.random() < deletion_probability]
        yield instance.without_regions(dropped)


def check_deletion_theorem(
    expr: A.Expr,
    instance: Instance,
    rng: random.Random,
    samples: int = 10,
) -> bool:
    """Property-check Theorem 4.1's conclusions on random deletions.

    Returns ``True`` when every sampled S-deleted version preserves (1)
    emptiness of ``expr`` and (2) membership of every surviving region.
    """
    evaluator = Evaluator("indexed")
    witness = witness_set(expr, instance)
    before = evaluator.evaluate(expr, instance)
    for deleted in s_deleted_versions(instance, witness, rng, samples):
        after = evaluator.evaluate(expr, deleted)
        if bool(before) != bool(after):
            return False
        for region in deleted.all_regions():
            if (region in before) != (region in after):
                return False
    return True
