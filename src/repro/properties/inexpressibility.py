"""Brute-force verification of the Section 5 inexpressibility theorems.

The paper's theorems are universally quantified over algebra
expressions; these drivers check them exhaustively over every
expression up to a size bound, using the counter-example refuters:

* :func:`verify_theorem_5_1` — no core expression computes ``B ⊃_d A``;
* :func:`verify_theorem_5_3` — no core expression computes
  ``C BI (B, A)``;
* :func:`verify_proposition_5_5` — the two operators are mutually
  independent: adding ``⊃_d``/``⊂_d`` still cannot express ``BI``, and
  adding ``BI`` still cannot express ``⊃_d``.

Each driver returns a :class:`InexpressibilityReport`; ``holds`` is
``True`` when *every* enumerated candidate was refuted by a concrete
witness instance.  A surviving candidate (none exists, per the
theorems) would be reported with ``survivors``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.algebra import ast as A
from repro.algebra.enumerate import enumerate_expressions
from repro.algebra.evaluator import Evaluator
from repro.core.instance import Instance
from repro.properties.counterexamples import (
    both_included_target,
    direct_inclusion_target,
    refute_both_included,
    refute_direct_inclusion,
)
from repro.workloads.generators import random_instance

__all__ = [
    "InexpressibilityReport",
    "verify_theorem_5_1",
    "verify_theorem_5_3",
    "verify_parity_inexpressible",
    "verify_proposition_5_5",
]

_EVALUATOR = Evaluator("indexed")


@dataclass
class InexpressibilityReport:
    """Outcome of an exhaustive refutation sweep."""

    target: str
    candidates: int = 0
    refuted: int = 0
    survivors: list[A.Expr] = field(default_factory=list)

    @property
    def holds(self) -> bool:
        return self.candidates > 0 and not self.survivors


def _sweep(
    candidates: Iterable[A.Expr],
    target: A.Expr,
    refuter: Callable[[A.Expr], Instance | None],
    target_name: str,
    rng: random.Random | None = None,
    random_trials: int = 50,
) -> InexpressibilityReport:
    report = InexpressibilityReport(target=target_name)
    rng = rng or random.Random(0)
    names = sorted(A.region_names(target))
    for candidate in candidates:
        report.candidates += 1
        witness = refuter(candidate)
        if witness is None:
            # Fall back to random search before declaring a survivor.
            witness = _random_refute(candidate, target, rng, names, random_trials)
        if witness is None:
            report.survivors.append(candidate)
        else:
            report.refuted += 1
    return report


def _random_refute(
    candidate: A.Expr,
    target: A.Expr,
    rng: random.Random,
    names: Sequence[str],
    trials: int,
) -> Instance | None:
    for _ in range(trials):
        instance = random_instance(rng, names=names, max_nodes=25)
        if _EVALUATOR.evaluate(candidate, instance) != _EVALUATOR.evaluate(
            target, instance
        ):
            return instance
    return None


def verify_theorem_5_1(max_ops: int = 2) -> InexpressibilityReport:
    """No core expression of at most ``max_ops`` operations computes
    ``B ⊃_d A`` (Theorem 5.1)."""
    return _sweep(
        enumerate_expressions(("A", "B"), max_ops),
        direct_inclusion_target(),
        refute_direct_inclusion,
        "B dcontaining A",
    )


def verify_theorem_5_3(max_ops: int = 2) -> InexpressibilityReport:
    """No core expression of at most ``max_ops`` operations computes
    ``C BI (B, A)`` (Theorem 5.3)."""
    return _sweep(
        enumerate_expressions(("A", "B", "C"), max_ops),
        both_included_target(),
        refute_both_included,
        "bi(C, B, A)",
    )


def verify_parity_inexpressible(max_ops: int = 2, max_row: int = 8) -> InexpressibilityReport:
    """The introduction's example: parity is beyond algebraic languages.

    "Clearly such languages cannot express some queries (e.g.
    parity [Ehr61])."  The parity query here: select *all* ``A`` regions
    when their number is even, none otherwise.  Every core expression
    over {A} up to ``max_ops`` is checked against that semantics on flat
    rows of 1..``max_row`` regions; each is refuted by some row length.
    """
    from repro.workloads.generators import flat_row

    rows = [flat_row(n, "A") for n in range(1, max_row + 1)]
    report = InexpressibilityReport(target="parity of |A|")
    for candidate in enumerate_expressions(("A",), max_ops):
        report.candidates += 1
        refuted = False
        for instance in rows:
            expected = (
                instance.region_set("A")
                if len(instance.region_set("A")) % 2 == 0
                else instance.region_set("A").difference(instance.region_set("A"))
            )
            if _EVALUATOR.evaluate(candidate, instance) != expected:
                refuted = True
                break
        if refuted:
            report.refuted += 1
        else:
            report.survivors.append(candidate)
    return report


def verify_proposition_5_5(max_ops: int = 2) -> tuple[
    InexpressibilityReport, InexpressibilityReport
]:
    """The independence of ``⊃_d`` and ``BI`` (Proposition 5.5).

    Returns two reports: expressions *with* the direct operators still
    fail to compute ``BI``, and expressions *with* ``BI`` (approximated
    by closing the core enumeration under one outer ``BI``) still fail
    to compute ``⊃_d``.
    """
    with_direct = _sweep(
        enumerate_expressions(("A", "B", "C"), max_ops, extended=True),
        both_included_target(),
        refute_both_included,
        "bi(C, B, A) given dcontaining/dwithin",
    )
    with_bi = _sweep(
        _bi_closed_expressions(("A", "B"), max_ops),
        direct_inclusion_target(),
        refute_direct_inclusion,
        "B dcontaining A given bi",
    )
    return with_direct, with_bi


def _bi_closed_expressions(
    names: Sequence[str], max_ops: int
) -> Iterable[A.Expr]:
    """Core expressions plus all single-``BI`` combinations of them."""
    core = list(enumerate_expressions(names, max_ops))
    yield from core
    small = [e for e in core if A.size(e) <= max(max_ops - 1, 0)]
    for source in small:
        for first in small:
            for second in small:
                if A.size(source) + A.size(first) + A.size(second) < max_ops:
                    yield A.BothIncluded(source, first, second)
