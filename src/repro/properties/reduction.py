"""Section 4.2: region isomorphism and the reduce operation.

Two regions are *isomorphic* w.r.t. a pattern set ``P`` when a 1-1
mapping between their region neighbourhoods preserves inclusion,
precedence, region names, and the word-index truths of every pattern in
``P`` (Definition 4.2).  The extended abstract defines the
neighbourhood ``S_r`` as "the regions containing r and all the regions
included in r" but then *uses* ``reduce(I, r', r'')`` to delete only
``r''`` (Theorem 5.3's proof).  We implement the operational reading
that proof needs (documented in DESIGN.md): isomorphism requires the
two regions to share their ancestor chain exactly (so the "containing"
part of ``S_r`` maps by identity) and to have isomorphic ordered
labelled subtrees; ``reduce`` deletes the *second* region's subtree,
mapping it onto the first's.

``k``-reduced versions (Definition 4.3) additionally preserve enough
order information for ``k`` order operations; Theorem 4.4/Proposition
4.5 assert expressions with at most ``k`` ``<``/``>`` operations cannot
see the difference.  :func:`check_reduction_theorem` property-tests
exactly that through the ``h`` mapping.
"""

from __future__ import annotations

from typing import Sequence

from repro.algebra import ast as A
from repro.algebra.evaluator import Evaluator
from repro.core.instance import Instance
from repro.core.region import Region
from repro.errors import ReproError

__all__ = [
    "subtree_signature",
    "is_k_reduced",
    "isomorphic",
    "reduce_regions",
    "isomorphic_sibling_pairs",
    "check_reduction_theorem",
]


def subtree_signature(
    instance: Instance, region: Region, patterns: Sequence[str]
) -> tuple:
    """A canonical encoding of ``region``'s ordered labelled subtree.

    Two regions have equal signatures iff their subtrees are isomorphic
    as ordered trees labelled with (region name, pattern truths).
    """
    forest = instance.forest()

    def encode(r: Region) -> tuple:
        label = (
            instance.name_of(r),
            tuple(instance.matches(r, p) for p in patterns),
        )
        return (label, tuple(encode(c) for c in forest.children_of(r)))

    return encode(region)


def isomorphic(
    instance: Instance,
    first: Region,
    second: Region,
    patterns: Sequence[str] = (),
) -> bool:
    """Definition 4.2's isomorphism test (operational reading)."""
    if first == second:
        return False
    forest = instance.forest()
    if forest.ancestors_of(first) != forest.ancestors_of(second):
        return False
    return subtree_signature(instance, first, patterns) == subtree_signature(
        instance, second, patterns
    )


def reduce_regions(
    instance: Instance,
    keep: Region,
    remove: Region,
    patterns: Sequence[str] = (),
) -> tuple[Instance, dict[Region, Region]]:
    """``reduce(I, keep, remove)``: delete ``remove``'s subtree.

    Returns the reduced instance and the mapping ``h`` from the regions
    of ``I`` to the regions of ``I'``: identity on survivors, the
    isomorphism ``τ`` on the deleted subtree.  Raises
    :class:`~repro.errors.ReproError` when the two regions are not
    isomorphic w.r.t. ``patterns``.
    """
    if not isomorphic(instance, keep, remove, patterns):
        raise ReproError(f"regions {keep} and {remove} are not isomorphic")
    forest = instance.forest()
    kept_subtree = forest.subtree_of(keep)  # pre-order
    removed_subtree = forest.subtree_of(remove)
    if len(kept_subtree) != len(removed_subtree):  # pragma: no cover - guarded by signature
        raise ReproError("isomorphic subtrees of different sizes")
    mapping: dict[Region, Region] = {}
    for region in instance.all_regions():
        mapping[region] = region
    # Pre-order aligns isomorphic ordered subtrees node-for-node.
    for removed, kept in zip(removed_subtree, kept_subtree):
        mapping[removed] = kept
    reduced = instance.without_regions(removed_subtree)
    return reduced, mapping


def isomorphic_sibling_pairs(
    instance: Instance, patterns: Sequence[str] = ()
) -> list[tuple[Region, Region]]:
    """All pairs of isomorphic regions (same parent, equal subtrees).

    The raw material for reduction sequences: each pair is a legal
    ``reduce`` step.
    """
    forest = instance.forest()
    groups: dict[tuple, list[Region]] = {}
    for region in forest.preorder:
        parent = forest.parent_of(region)
        key = (parent, subtree_signature(instance, region, patterns))
        groups.setdefault(key, []).append(region)
    pairs: list[tuple[Region, Region]] = []
    for members in groups.values():
        for i in range(len(members) - 1):
            pairs.append((members[i], members[i + 1]))
    return pairs


def _order_condition(
    original: Instance,
    reduced: Instance,
    h_k: dict[Region, Region],
    h_km1: dict[Region, Region],
) -> bool:
    """Definition 4.3(2): enough order information survives.

    The extended abstract states this as a single "iff", but read
    literally that is unsatisfiable even by the paper's own Figure 3
    witness: ``h_k`` identifies the two middle ``A`` regions, so any
    right-hand side that sees ``s`` only through ``h_k(s)`` cannot agree
    with ``r < s`` for both of them.  We implement the two entailment
    directions the Theorem 4.4/Proposition 4.5 induction actually uses
    (documented as a discrepancy in EXPERIMENTS.md):

    (A) every order fact of ``I`` has a surviving witness —
        ``r < s in I ⟹ ∃t ∈ I': h_{k-1}(t) = h_{k-1}(h_k(s)) ∧ h_k(r) < t``;
    (B) no spurious order facts appear in ``I'`` —
        ``h_k(r) < t in I' ⟹ ∃s ∈ I: h_{k-1}(h_k(s)) = h_{k-1}(t) ∧ r < s``.
    """
    regions = list(original.all_regions())
    reduced_regions = list(reduced.all_regions())
    image_class: dict[Region, list[Region]] = {}
    for s in regions:
        image_class.setdefault(h_km1[h_k[s]], []).append(s)
    for r in regions:
        hr = h_k[r]
        for s in regions:
            if r.precedes(s):
                target = h_km1[h_k[s]]
                if not any(
                    h_km1[t] == target and hr.precedes(t)
                    for t in reduced_regions
                ):
                    return False
        for t in reduced_regions:
            if hr.precedes(t):
                if not any(
                    r.precedes(s) for s in image_class.get(h_km1[t], ())
                ):
                    return False
    return True


def is_k_reduced(
    original: Instance,
    reduced: Instance,
    mapping: dict[Region, Region],
    k: int,
    patterns: Sequence[str] = (),
) -> bool:
    """Is ``reduced`` a ``k``-reduced version of ``original`` (Def 4.3)?

    ``mapping`` is the ``h_k`` defined by the reduction sequence that
    produced ``reduced`` (compose the maps returned by
    :func:`reduce_regions`; identity for the empty sequence).

    * ``k = 0``: any reduction sequence qualifies.
    * ``k > 0``: search for a witness ``(k-1)``-reduction ``I''`` of the
      reduced instance — one more :func:`reduce_regions` step or the
      empty sequence — whose composed mapping satisfies the
      Definition 4.3(2) order condition, recursively.

    Exponential in ``k`` and the number of isomorphic pairs; meant for
    the proof-sized instances of the Figure 3 construction.
    """
    if k <= 0:
        return True
    candidates: list[tuple[Instance, dict[Region, Region]]] = [
        (reduced, {r: r for r in reduced.all_regions()})
    ]
    for keep, remove in isomorphic_sibling_pairs(reduced, patterns):
        candidates.append(reduce_regions(reduced, keep, remove, patterns))
    for witness, step in candidates:
        h_km1 = {r: step[mapping[r]] for r in original.all_regions()}
        if not _order_condition(original, reduced, mapping, h_km1):
            continue
        if is_k_reduced(reduced, witness, step, k - 1, patterns):
            return True
    return False


def check_reduction_theorem(
    expr: A.Expr,
    instance: Instance,
    keep: Region,
    remove: Region,
) -> bool:
    """Property-check Proposition 4.5 for one reduce step.

    Verifies ``r ∈ e(I)  iff  h(r) ∈ e(I')`` for every region of ``I``
    (which subsumes Theorem 4.4's two conclusions).  The caller is
    responsible for the step being a *k*-reduction for the expression's
    order-operation count — e.g. by reducing order-indistinguishable
    siblings, as the Figure 3 construction does.
    """
    patterns = sorted(A.pattern_names(expr))
    reduced, mapping = reduce_regions(instance, keep, remove, patterns)
    evaluator = Evaluator("indexed")
    before = evaluator.evaluate(expr, instance)
    after = evaluator.evaluate(expr, reduced)
    return all((r in before) == (mapping[r] in after) for r in instance.all_regions())
