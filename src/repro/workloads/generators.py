"""Synthetic instance generators.

The theory of the paper only sees structure — nesting, order, names,
word-index truths — so synthetic instances are specified as labelled
ordered trees (:class:`TreeNode`) and lowered to concrete intervals by a
DFS numbering that makes parents strictly include children and siblings
pairwise disjoint.

Families provided:

* :func:`random_instance` — random hierarchical instances with free name
  assignment (the oracle-testing workhorse);
* :func:`rig_constrained_instance` — random instances guaranteed to
  satisfy a given RIG (children names are drawn from the parent's RIG
  successors);
* :func:`figure_2_instance` — the alternating-nesting tower of the
  Theorem 5.1 counter-example;
* :func:`figure_3_instance` — the ``4k+1`` sibling family of the
  Theorem 5.3 counter-example;
* shape primitives (:func:`nested_tower`, :func:`flat_row`,
  :func:`balanced_tree`) used by the benchmark sweeps.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.instance import Instance
from repro.core.region import Region
from repro.core.regionset import RegionSet
from repro.core.wordindex import LabelWordIndex
from repro.rig.graph import RegionInclusionGraph

__all__ = [
    "TreeNode",
    "instance_from_trees",
    "random_instance",
    "random_trees",
    "rig_constrained_instance",
    "figure_2_instance",
    "figure_3_instance",
    "nested_tower",
    "flat_row",
    "balanced_tree",
]


@dataclass
class TreeNode:
    """A region-to-be: a name, word-index labels, and ordered children."""

    name: str
    children: list["TreeNode"] = field(default_factory=list)
    labels: frozenset[str] = frozenset()


def instance_from_trees(
    trees: Sequence[TreeNode], names: Sequence[str] | None = None
) -> Instance:
    """Lower labelled ordered trees to an :class:`Instance`.

    Every node consumes one position on entry and one on exit, so a
    parent's interval strictly includes its children's and siblings are
    disjoint.  ``names`` fixes the region-name universe (defaults to the
    names occurring in the trees, sorted).
    """
    sets: dict[str, list[Region]] = {}
    labels: dict[Region, frozenset[str]] = {}
    counter = 0

    def lower(node: TreeNode) -> None:
        nonlocal counter
        left = counter
        counter += 1
        for child in node.children:
            lower(child)
        right = counter
        counter += 1
        region = Region(left, right)
        sets.setdefault(node.name, []).append(region)
        if node.labels:
            labels[region] = node.labels

    for tree in trees:
        lower(tree)
    if names is None:
        names = sorted(sets)
    region_sets = {name: RegionSet(sets.get(name, ())) for name in names}
    return Instance(region_sets, LabelWordIndex(labels), validate=False)


def random_trees(
    rng: random.Random,
    names: Sequence[str],
    max_nodes: int = 30,
    max_depth: int = 6,
    max_children: int = 3,
    patterns: Sequence[str] = (),
    pattern_probability: float = 0.3,
    min_nodes: int = 1,
) -> list[TreeNode]:
    """Random labelled forests with free name assignment.

    The node count is drawn uniformly from ``[min_nodes, max_nodes]``;
    benchmarks pass ``min_nodes == max_nodes`` for deterministic sizes.
    """
    budget = rng.randint(min(min_nodes, max_nodes), max_nodes)
    count = 0

    def node(depth: int) -> TreeNode:
        nonlocal count
        count += 1
        label = frozenset(
            p for p in patterns if rng.random() < pattern_probability
        )
        children: list[TreeNode] = []
        if depth < max_depth:
            for _ in range(rng.randint(0, max_children)):
                if count >= budget:
                    break
                children.append(node(depth + 1))
        return TreeNode(rng.choice(list(names)), children, label)

    roots: list[TreeNode] = []
    while count < budget:
        roots.append(node(0))
    return roots


def random_instance(
    rng: random.Random,
    names: Sequence[str] = ("R0", "R1", "R2"),
    max_nodes: int = 30,
    max_depth: int = 6,
    max_children: int = 3,
    patterns: Sequence[str] = (),
    pattern_probability: float = 0.3,
    min_nodes: int = 1,
) -> Instance:
    """A random hierarchical instance (see :func:`random_trees`)."""
    trees = random_trees(
        rng,
        names,
        max_nodes,
        max_depth,
        max_children,
        patterns,
        pattern_probability,
        min_nodes,
    )
    return instance_from_trees(trees, names)


def rig_constrained_instance(
    rng: random.Random,
    rig: RegionInclusionGraph,
    roots: Sequence[str],
    max_nodes: int = 40,
    max_depth: int = 8,
    max_children: int = 3,
    patterns: Sequence[str] = (),
    pattern_probability: float = 0.2,
) -> Instance:
    """A random instance guaranteed to satisfy ``rig`` (Definition 2.4).

    Root names are drawn from ``roots``; every child's name is drawn
    from its parent's RIG successors, so each direct inclusion realizes
    an edge.
    """
    budget = rng.randint(1, max_nodes)
    count = 0

    def node(name: str, depth: int) -> TreeNode:
        nonlocal count
        count += 1
        label = frozenset(
            p for p in patterns if rng.random() < pattern_probability
        )
        children: list[TreeNode] = []
        options = rig.successors(name)
        if options and depth < max_depth:
            for _ in range(rng.randint(0, max_children)):
                if count >= budget:
                    break
                children.append(node(rng.choice(options), depth + 1))
        return TreeNode(name, children, label)

    trees: list[TreeNode] = []
    while count < budget:
        trees.append(node(rng.choice(list(roots)), 0))
    return instance_from_trees(trees, rig.names)


def figure_2_instance(depth: int, names: tuple[str, str] = ("A", "B")) -> Instance:
    """The Theorem 5.1 counter-example: an alternating nesting tower.

    ``depth`` regions alternate names from the outside in
    (``B ⊃ A ⊃ B ⊃ A ⊃ …`` when ``names = ("A", "B")``, outermost
    ``B``), realizing the cyclic RIG with edges ``(A, B)`` and
    ``(B, A)``.  Deleting one inner region flips direct-inclusion facts
    without affecting any small expression (Theorem 4.1).
    """
    if depth < 1:
        raise ValueError("tower depth must be >= 1")
    a, b = names
    node: TreeNode | None = None
    for level in range(depth):
        # level 0 is the innermost region; the outermost gets name `b`.
        name = b if (depth - 1 - level) % 2 == 0 else a
        node = TreeNode(name, [node] if node else [])
    assert node is not None
    return instance_from_trees([node], names=sorted(names))


def figure_3_instance(
    k: int, names: tuple[str, str, str] = ("A", "B", "C")
) -> Instance:
    """The Theorem 5.3 counter-example: ``4k+1`` sibling ``C`` regions.

    Every ``C`` contains an ``A`` followed by a ``B`` — except the
    middle one (position ``2k+1``), which contains ``A``, ``B``, and a
    second ``A``, making it the only region in ``C BI (B, A)``.
    Reducing the two isomorphic middle ``A`` regions removes the only
    witness pair while remaining a k-reduced version for small k.
    """
    if k < 0:
        raise ValueError("k must be >= 0")
    a, b, c = names
    total = 4 * k + 1
    middle = 2 * k  # 0-based index of the (2k+1)-th region
    trees = []
    for i in range(total):
        children = [TreeNode(a), TreeNode(b)]
        if i == middle:
            children.append(TreeNode(a))
        trees.append(TreeNode(c, children))
    return instance_from_trees(trees, names=sorted(names))


def nested_tower(depth: int, names: Sequence[str]) -> Instance:
    """A single chain of ``depth`` nested regions cycling over ``names``."""
    if depth < 1:
        raise ValueError("tower depth must be >= 1")
    node: TreeNode | None = None
    for level in range(depth - 1, -1, -1):
        node = TreeNode(names[level % len(names)], [node] if node else [])
    assert node is not None
    return instance_from_trees([node], names=sorted(set(names)))


def flat_row(count: int, name: str = "R", labels: Iterable[str] = ()) -> Instance:
    """``count`` disjoint sibling regions of one name."""
    label = frozenset(labels)
    trees = [TreeNode(name, [], label) for _ in range(count)]
    return instance_from_trees(trees, names=(name,))


def balanced_tree(
    depth: int, branching: int, names: Sequence[str]
) -> Instance:
    """A complete tree; level ``i`` uses ``names[i % len(names)]``."""

    def node(level: int) -> TreeNode:
        children = (
            [node(level + 1) for _ in range(branching)] if level < depth - 1 else []
        )
        return TreeNode(names[level % len(names)], children)

    if depth < 1:
        raise ValueError("tree depth must be >= 1")
    return instance_from_trees([node(0)], names=sorted(set(names)))
