"""Hypothesis strategies for property-based testing against the library.

Importable by downstream users who want to property-test code built on
the region algebra (requires the optional ``hypothesis`` dependency)::

    from repro.workloads.strategies import hierarchical_instances

    @given(hierarchical_instances(names=("sec", "par"), patterns=("kw",)))
    def test_my_invariant(instance):
        ...

The central strategy is :func:`hierarchical_instances`, which generates
valid hierarchical instances (Definition 2.1's restriction holds by
construction) with controllable name universes, pattern labellings, and
shape bounds.  The library's own test suite uses these same strategies.
"""

from __future__ import annotations

try:
    from hypothesis import strategies as st
except ImportError as exc:  # pragma: no cover - optional dependency guard
    raise ImportError(
        "repro.workloads.strategies requires the optional 'hypothesis' "
        "dependency (pip install repro[test])"
    ) from exc

from repro.core.region import Region
from repro.workloads.generators import TreeNode, instance_from_trees

__all__ = [
    "regions",
    "region_lists",
    "tree_nodes",
    "hierarchical_instances",
    "expressions",
]


def regions(max_coord: int = 60) -> st.SearchStrategy[Region]:
    """Arbitrary (possibly overlapping) regions in ``[0, max_coord]``."""
    return st.tuples(
        st.integers(0, max_coord), st.integers(0, max_coord)
    ).map(lambda pair: Region(min(pair), max(pair)))


def region_lists(
    max_coord: int = 60, max_size: int = 25
) -> st.SearchStrategy[list[Region]]:
    """Lists of arbitrary regions — inputs for set-operation laws."""
    return st.lists(regions(max_coord), max_size=max_size)


@st.composite
def tree_nodes(
    draw,
    names: tuple[str, ...] = ("R0", "R1", "R2"),
    patterns: tuple[str, ...] = (),
    max_depth: int = 4,
    max_children: int = 3,
    depth: int = 0,
) -> TreeNode:
    """A random labelled tree (the pre-lowering form of an instance)."""
    name = draw(st.sampled_from(names))
    labels = (
        frozenset(draw(st.sets(st.sampled_from(patterns))))
        if patterns
        else frozenset()
    )
    children = []
    if depth < max_depth:
        count = draw(st.integers(0, max_children))
        for _ in range(count):
            children.append(
                draw(
                    tree_nodes(
                        names=names,
                        patterns=patterns,
                        max_depth=max_depth,
                        max_children=max_children,
                        depth=depth + 1,
                    )
                )
            )
    return TreeNode(name, children, labels)


@st.composite
def expressions(
    draw,
    names: tuple[str, ...] = ("R0", "R1", "R2"),
    patterns: tuple[str, ...] = (),
    max_depth: int = 3,
    extended: bool = True,
    depth: int = 0,
):
    """Random expression trees over the given names and patterns.

    With ``extended`` the direct operators and ``bi`` may appear.  Used
    for grand-consistency properties (indexed ≡ naive evaluation,
    parse/print round trips) over the *whole* operator surface.
    """
    from repro.algebra import ast as A

    if depth >= max_depth or draw(st.booleans()) and depth > 0:
        return A.NameRef(draw(st.sampled_from(names)))
    binary_ops = [
        A.Union,
        A.Intersection,
        A.Difference,
        A.Including,
        A.IncludedIn,
        A.Preceding,
        A.Following,
    ]
    if extended:
        binary_ops += [A.DirectlyIncluding, A.DirectlyIncluded]
    choices = len(binary_ops) + (1 if patterns else 0) + (1 if extended else 0)
    pick = draw(st.integers(0, choices - 1))
    recurse = lambda: draw(
        expressions(
            names=names,
            patterns=patterns,
            max_depth=max_depth,
            extended=extended,
            depth=depth + 1,
        )
    )
    if pick < len(binary_ops):
        return binary_ops[pick](recurse(), recurse())
    if patterns and pick == len(binary_ops):
        return A.Select(draw(st.sampled_from(patterns)), recurse())
    return A.BothIncluded(recurse(), recurse(), recurse())


@st.composite
def hierarchical_instances(
    draw,
    names: tuple[str, ...] = ("R0", "R1", "R2"),
    patterns: tuple[str, ...] = (),
    max_trees: int = 3,
    max_depth: int = 4,
    max_children: int = 3,
):
    """Valid hierarchical instances over ``names`` (Definition 2.1)."""
    trees = draw(
        st.lists(
            tree_nodes(
                names=names,
                patterns=patterns,
                max_depth=max_depth,
                max_children=max_children,
            ),
            min_size=1,
            max_size=max_trees,
        )
    )
    return instance_from_trees(trees, names=names)
