"""Synthetic text corpora for the examples and benchmarks.

Real evaluation corpora of the era (the Oxford English Dictionary PAT
was built for, SGML document collections) are substituted with
structure-preserving synthetic documents (DESIGN.md §2): a play corpus
with acts/scenes/speeches and a news corpus with nested sections.  Only
structure, order and token content matter to every result being
reproduced, and the generators are parameterized to reach arbitrary
sizes.
"""

from __future__ import annotations

import random
from typing import Sequence

__all__ = [
    "generate_play",
    "generate_report",
    "generate_dictionary",
    "PLAY_REGION_NAMES",
    "DICTIONARY_REGION_NAMES",
]

PLAY_REGION_NAMES = ("play", "act", "scene", "speech", "speaker", "line")

_SPEAKERS = ("ROMEO", "JULIET", "MERCUTIO", "NURSE", "TYBALT", "BENVOLIO")
_WORDS = (
    "love night light sun moon stars grief sword name rose tomb "
    "morrow soft peace fire eyes heart hand death vow"
).split()


def _sentence(rng: random.Random, length: int) -> str:
    return " ".join(rng.choice(_WORDS) for _ in range(length))


def generate_play(
    rng: random.Random,
    acts: int = 2,
    scenes_per_act: int = 2,
    speeches_per_scene: int = 4,
    lines_per_speech: int = 2,
    speakers: Sequence[str] = _SPEAKERS,
) -> str:
    """A tagged play: ``<play><act><scene><speech>…`` all the way down."""
    parts = ["<play>"]
    for _ in range(acts):
        parts.append("<act>")
        for _ in range(scenes_per_act):
            parts.append("<scene>")
            for _ in range(speeches_per_scene):
                speaker = rng.choice(list(speakers))
                parts.append("<speech>")
                parts.append(f"<speaker> {speaker} </speaker>")
                for _ in range(lines_per_speech):
                    parts.append(f"<line> {_sentence(rng, rng.randint(4, 9))} </line>")
                parts.append("</speech>")
            parts.append("</scene>")
        parts.append("</act>")
    parts.append("</play>")
    return "\n".join(parts)


DICTIONARY_REGION_NAMES = (
    "dictionary",
    "entry",
    "headword",
    "pos",
    "sense",
    "definition",
    "quotation",
    "author",
)

_HEADWORDS = (
    "abide arbour ballad candle dearth ember fathom garner "
    "harbinger ink jostle keel lattice mirth nether oath parchment "
    "quill rampart sonnet thimble"
).split()
_POS = ("noun", "verb", "adjective")
_AUTHORS = ("Chaucer", "Spenser", "Marlowe", "Jonson", "Donne")


def generate_dictionary(
    rng: random.Random,
    entries: int = 10,
    max_senses: int = 3,
    max_quotations: int = 2,
) -> str:
    """An OED-flavoured dictionary — the corpus PAT was built for.

    Entries carry a headword, a part of speech, and numbered senses;
    senses hold a definition and optional dated quotations with authors.
    Senses may nest (sub-senses), which exercises self-nesting regions
    the way real dictionary structure does.
    """

    def sense(depth: int) -> str:
        parts = ["<sense>", f"<definition> {_sentence(rng, rng.randint(4, 8))} </definition>"]
        for _ in range(rng.randint(0, max_quotations)):
            author = rng.choice(_AUTHORS)
            year = rng.randint(1380, 1690)
            parts.append(
                f"<quotation> {year} <author> {author} </author> "
                f"{_sentence(rng, rng.randint(3, 7))} </quotation>"
            )
        if depth < 2 and rng.random() < 0.3:
            parts.append(sense(depth + 1))
        parts.append("</sense>")
        return "\n".join(parts)

    chosen = rng.sample(_HEADWORDS, min(entries, len(_HEADWORDS)))
    blocks = []
    for word in sorted(chosen):
        senses = "\n".join(sense(0) for _ in range(rng.randint(1, max_senses)))
        blocks.append(
            f"<entry>\n<headword> {word} </headword> "
            f"<pos> {rng.choice(_POS)} </pos>\n{senses}\n</entry>"
        )
    body = "\n".join(blocks)
    return f"<dictionary>\n{body}\n</dictionary>"


def generate_report(
    rng: random.Random,
    sections: int = 3,
    max_depth: int = 3,
    paragraphs: int = 2,
) -> str:
    """A tagged report with recursively nested ``<section>`` regions.

    Self-nested sections exercise the cyclic-RIG machinery (layer
    peeling, direct-inclusion loops) on a document-shaped corpus.
    """

    def section(depth: int) -> str:
        parts = ["<section>", f"<title> {_sentence(rng, 3)} </title>"]
        for _ in range(paragraphs):
            parts.append(f"<para> {_sentence(rng, rng.randint(6, 12))} </para>")
        if depth < max_depth:
            for _ in range(rng.randint(0, 2)):
                parts.append(section(depth + 1))
        parts.append("</section>")
        return "\n".join(parts)

    body = "\n".join(section(1) for _ in range(sections))
    return f"<report>\n{body}\n</report>"
