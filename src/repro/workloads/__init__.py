"""Workload generation: synthetic instances, corpora, and query sets."""

from repro.workloads.corpora import (
    DICTIONARY_REGION_NAMES,
    PLAY_REGION_NAMES,
    generate_dictionary,
    generate_play,
    generate_report,
)
from repro.workloads.generators import (
    TreeNode,
    balanced_tree,
    figure_2_instance,
    figure_3_instance,
    flat_row,
    instance_from_trees,
    nested_tower,
    random_instance,
    random_trees,
    rig_constrained_instance,
)
from repro.workloads.queries import (
    CHAIN_QUERIES,
    DICTIONARY_QUERIES,
    PLAY_QUERIES,
    QUERY_MIXES,
    REPORT_QUERIES,
    SOURCE_QUERIES,
)

__all__ = [
    "TreeNode",
    "instance_from_trees",
    "random_instance",
    "random_trees",
    "rig_constrained_instance",
    "figure_2_instance",
    "figure_3_instance",
    "nested_tower",
    "flat_row",
    "balanced_tree",
    "generate_play",
    "generate_report",
    "generate_dictionary",
    "DICTIONARY_REGION_NAMES",
    "PLAY_REGION_NAMES",
    "SOURCE_QUERIES",
    "PLAY_QUERIES",
    "DICTIONARY_QUERIES",
    "REPORT_QUERIES",
    "QUERY_MIXES",
    "CHAIN_QUERIES",
]
