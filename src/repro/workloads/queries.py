"""Standard query workloads used by examples, tests, and benchmarks.

``QUERY_MIXES`` names each per-corpus query set so the serving layer's
load generator (``repro loadgen --mix play``) and the throughput
benchmarks can replay a realistic mix by name.
"""

from __future__ import annotations

__all__ = [
    "SOURCE_QUERIES",
    "PLAY_QUERIES",
    "DICTIONARY_QUERIES",
    "REPORT_QUERIES",
    "CHAIN_QUERIES",
    "QUERY_MIXES",
]

# Queries over the Figure 1 source-code index, including the paper's
# running examples (Sections 2.2 and 5.1).
SOURCE_QUERIES: dict[str, str] = {
    # e1 and e2 of Section 2.2: equivalent w.r.t. the Figure 1 RIG.
    "e1_procedure_names": "Name within Proc_header within Proc within Program",
    "e2_procedure_names": "Name within Proc_header within Program",
    # Section 5.1: procedures containing (anywhere) a definition of x —
    # the *wrong* query the paper warns about…
    "procs_with_x_anywhere": 'Proc containing Proc_body containing (Var @ "x")',
    # …and the intended one using direct inclusion.
    "procs_defining_x": 'Proc dcontaining Proc_body dcontaining (Var @ "x")',
    # Section 5.2: procedures defining x before y (both-included).
    "procs_x_before_y": 'bi(Proc, Var @ "x", Var @ "y")',
    "all_variable_defs": "Var within Program",
    "top_level_procs": "Proc dwithin Prog_body",
}

# Queries over the play corpus (workloads.corpora.generate_play).
PLAY_QUERIES: dict[str, str] = {
    "speeches_by_romeo": 'speech containing (speaker @ "ROMEO")',
    "scenes_with_love": 'scene containing (line @ "love")',
    "romeo_then_juliet": 'bi(scene, speaker @ "ROMEO", speaker @ "JULIET")',
    "lines_about_night": 'line @ "night" within act',
    "first_speeches": "speech dwithin scene",
}

# Queries over the OED-flavoured dictionary corpus
# (workloads.corpora.generate_dictionary).
DICTIONARY_QUERIES: dict[str, str] = {
    "senses_quoting_chaucer": 'sense containing (author @ "Chaucer")',
    "definitions_in_entries": "definition within entry",
    "nested_senses": "sense within sense",
    "entries_def_before_quote": "bi(entry, definition, quotation)",
    "top_level_senses": "sense dwithin entry",
}

# Queries over the nested-report corpus (workloads.corpora.generate_report).
REPORT_QUERIES: dict[str, str] = {
    "titles_everywhere": "title within section",
    "leaf_paragraphs": "para dwithin section",
    "nested_sections": "section within section",
    "sections_title_then_para": "bi(section, title, para)",
}

# Named per-corpus mixes for the load generator and benchmarks.
QUERY_MIXES: dict[str, dict[str, str]] = {
    "play": PLAY_QUERIES,
    "source": SOURCE_QUERIES,
    "dictionary": DICTIONARY_QUERIES,
    "report": REPORT_QUERIES,
}

# Inclusion chains of growing length for the optimizer benchmarks.
CHAIN_QUERIES: tuple[str, ...] = (
    "Name within Proc_header",
    "Name within Proc_header within Proc",
    "Name within Proc_header within Proc within Prog_body",
    "Name within Proc_header within Proc within Prog_body within Program",
)
