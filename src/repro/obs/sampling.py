"""Trace retention policy: head sampling plus a tail-keep ring.

Tracing every request at full operator detail is unaffordable at
serving volume, but dropping traces uniformly at random loses exactly
the ones worth reading — the slow tail, the errors, the requests a
fault-injection campaign touched.  This module implements the standard
two-sided compromise:

* **Head sampling** (:class:`HeadSampler`) decides *at request start*,
  deterministically from the trace id, whether the request records
  per-operator ``eval.*`` detail.  The decision is made before any work
  happens, so the whole distributed trace — across thread and process
  pools — agrees on it without coordination.
* **Tail keeping** (:class:`TraceStore`) decides *at request end* what
  to retain.  Head-sampled traces go to one bounded ring; traces that
  turned out slow, errored, or fault-marked are *always* kept in a
  separate ring, so a burst of ordinary sampled traffic can never evict
  the interesting tail.

Every finished request trace is offered to the store; the keep decision
and its reasons come back so the caller can attach an exemplar to the
latency histogram only when the trace is actually retrievable.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.obs.trace import Span, span_to_dict

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.metrics import MetricsRegistry

__all__ = [
    "HeadSampler",
    "KeptTrace",
    "TraceStore",
    "KEEP_SAMPLED",
    "KEEP_SLOW",
    "KEEP_ERROR",
    "KEEP_FAULT",
]

#: Keep reasons, in the order they appear in ``KeptTrace.reasons``.
KEEP_ERROR = "error"  #: request finished with a 5xx status
KEEP_SLOW = "slow"  #: duration crossed the slow threshold
KEEP_FAULT = "fault"  #: some span carries a ``fault`` attribute
KEEP_SAMPLED = "sampled"  #: head-sampling said yes at request start


class HeadSampler:
    """A deterministic per-trace coin flip.

    The first eight hex digits of the trace id are read as a uniform
    32-bit draw; a trace is sampled when that draw falls below ``rate``.
    Determinism matters: every participant in the trace — coordinator
    threads, shard processes — recomputes or inherits the same decision,
    and replaying a trace id in a test reproduces it exactly.
    """

    __slots__ = ("rate",)

    def __init__(self, rate: float):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"sample rate must be in [0, 1], got {rate}")
        self.rate = rate

    def sample(self, trace_id: str) -> bool:
        if self.rate >= 1.0:
            return True
        if self.rate <= 0.0:
            return False
        try:
            draw = int(trace_id[:8], 16)
        except ValueError:
            return False
        return draw / 0x100000000 < self.rate


@dataclass
class KeptTrace:
    """One retained request trace plus the metadata the UIs sort by."""

    trace_id: str
    root: Span
    reasons: tuple[str, ...]
    duration: float
    endpoint: str
    status: str
    fault_spans: int
    finished_at: float = field(default_factory=time.time)

    def to_summary(self) -> dict[str, Any]:
        """The listing row (``/debug/traces``, dashboards)."""
        return {
            "trace_id": self.trace_id,
            "reasons": list(self.reasons),
            "duration": self.duration,
            "endpoint": self.endpoint,
            "status": self.status,
            "fault_spans": self.fault_spans,
            "finished_at": self.finished_at,
            "spans": sum(1 for _ in self.root.walk()),
        }

    def to_dict(self) -> dict[str, Any]:
        """The full stitched tree (``/debug/trace/<id>``)."""
        return {**self.to_summary(), "root": span_to_dict(self.root)}


class TraceStore:
    """Bounded retention for finished request traces.

    Two rings, both insertion-ordered and evicting oldest-first:
    ``sampled`` holds traces kept only because head sampling said so;
    ``tail`` holds traces kept for cause (slow, error, fault).  A trace
    with both a tail reason and the sampled flag lands in the tail ring —
    cause-kept traces must survive sampled churn, and sizing the tail
    ring is how an operator bounds worst-case memory during incidents.
    """

    def __init__(
        self,
        capacity: int = 256,
        tail_capacity: int = 256,
        slow_threshold: float = 0.25,
        metrics: "MetricsRegistry | None" = None,
    ):
        if capacity < 1 or tail_capacity < 1:
            raise ValueError("trace store capacities must be >= 1")
        self.capacity = capacity
        self.tail_capacity = tail_capacity
        self.slow_threshold = slow_threshold
        self._sampled: OrderedDict[str, KeptTrace] = OrderedDict()
        self._tail: OrderedDict[str, KeptTrace] = OrderedDict()
        self._lock = threading.Lock()
        self.kept = 0
        self.dropped = 0
        self.evicted = 0
        self._kept_counter = None
        self._dropped_counter = None
        if metrics is not None:
            from repro.obs import metrics as m

            self._kept_counter = metrics.counter(
                m.TRACES_KEPT_TOTAL, "request traces retained, by reason"
            )
            self._dropped_counter = metrics.counter(
                m.TRACES_DROPPED_TOTAL, "request traces discarded at request end"
            )

    # ------------------------------------------------------------------

    def offer(
        self,
        trace_id: str,
        root: Span,
        *,
        sampled: bool,
        endpoint: str = "query",
        status: str = "200",
        error: bool = False,
    ) -> tuple[str, ...]:
        """Decide retention for one finished request trace.

        Returns the keep reasons (empty tuple means dropped).  ``error``
        is the caller's verdict on the request outcome; slow and fault
        reasons are derived from the span tree itself.
        """
        duration = root.duration
        fault_spans = sum(
            1 for span in root.walk() if span.attributes.get("fault")
        )
        reasons: list[str] = []
        if error:
            reasons.append(KEEP_ERROR)
        if duration >= self.slow_threshold:
            reasons.append(KEEP_SLOW)
        if fault_spans:
            reasons.append(KEEP_FAULT)
        tail = bool(reasons)
        if sampled:
            reasons.append(KEEP_SAMPLED)
        if not reasons:
            self.dropped += 1
            if self._dropped_counter is not None:
                self._dropped_counter.inc()
            return ()

        kept = KeptTrace(
            trace_id=trace_id,
            root=root,
            reasons=tuple(reasons),
            duration=duration,
            endpoint=endpoint,
            status=status,
            fault_spans=fault_spans,
        )
        with self._lock:
            ring, limit = (
                (self._tail, self.tail_capacity)
                if tail
                else (self._sampled, self.capacity)
            )
            ring[trace_id] = kept
            while len(ring) > limit:
                ring.popitem(last=False)
                self.evicted += 1
        self.kept += 1
        if self._kept_counter is not None:
            self._kept_counter.inc(reason=reasons[0])
        return kept.reasons

    # ------------------------------------------------------------------

    def get(self, trace_id: str) -> KeptTrace | None:
        with self._lock:
            return self._tail.get(trace_id) or self._sampled.get(trace_id)

    def all(self) -> list[KeptTrace]:
        """Every retained trace, newest first."""
        with self._lock:
            traces = list(self._tail.values()) + list(self._sampled.values())
        traces.sort(key=lambda t: t.finished_at, reverse=True)
        return traces

    def slowest(self, n: int = 5) -> list[KeptTrace]:
        """The ``n`` longest retained traces, slowest first."""
        traces = self.all()
        traces.sort(key=lambda t: t.duration, reverse=True)
        return traces[:n]

    def summaries(
        self, limit: int = 50, sort: str = "recent"
    ) -> list[dict[str, Any]]:
        traces = self.slowest(limit) if sort == "slowest" else self.all()[:limit]
        return [trace.to_summary() for trace in traces]

    def fault_marked(self) -> list[KeptTrace]:
        """Retained traces containing at least one fault-marked span."""
        return [trace for trace in self.all() if trace.fault_spans]

    def stats(self) -> dict[str, Any]:
        with self._lock:
            sampled, tail = len(self._sampled), len(self._tail)
        return {
            "sampled_ring": sampled,
            "tail_ring": tail,
            "kept": self.kept,
            "dropped": self.dropped,
            "evicted": self.evicted,
        }

    def clear(self) -> None:
        with self._lock:
            self._sampled.clear()
            self._tail.clear()
