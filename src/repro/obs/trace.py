"""Hierarchical tracing: spans, a context-var driven tracer, JSONL export.

The engine's introspection substrate.  A :class:`Span` is one timed unit
of work (a query, an optimizer pass, one evaluator node); spans nest via
a :class:`contextvars.ContextVar`, so any code running under an open
span attaches its own spans as children without threading a handle
through every call.  A :class:`Tracer` owns the context variable, keeps
the most recent finished root spans, and exports them as JSON or JSONL.

Design constraints:

* **Near-zero cost when disabled.**  Hot paths guard with
  ``tracer is not None and tracer.enabled`` (or :func:`maybe_span`);
  a disabled tracer never touches the clock or the context variable.
* **Inclusive timings.**  A span's ``duration`` covers its whole
  subtree, so a child's duration never exceeds its parent's and the
  children of a span sum to at most the parent's duration.
* **Round-trippable.**  ``span_to_dict``/``span_from_dict`` preserve
  the tree, timings, and (JSON-sanitized) attributes exactly.
"""

from __future__ import annotations

import itertools
import json
import time
from collections import deque
from contextvars import ContextVar
from pathlib import Path
from typing import Any, Iterator

__all__ = [
    "Span",
    "Tracer",
    "maybe_span",
    "span_to_dict",
    "span_from_dict",
    "load_jsonl",
]

_ids = itertools.count(1)


class Span:
    """One timed, attributed unit of work in a trace tree."""

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "attributes",
        "children",
        "started_at",
        "_start",
        "_end",
    )

    def __init__(self, name: str, parent_id: int | None = None, **attributes: Any):
        self.name = name
        self.span_id = next(_ids)
        self.parent_id = parent_id
        self.attributes: dict[str, Any] = dict(attributes)
        self.children: list[Span] = []
        self.started_at = time.time()
        self._start = time.perf_counter()
        self._end: float | None = None

    # ------------------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self._end is not None

    @property
    def duration(self) -> float:
        """Inclusive wall seconds (0.0 while the span is still open)."""
        if self._end is None:
            return 0.0
        return self._end - self._start

    def set(self, key: str, value: Any) -> None:
        """Attach (or overwrite) one attribute."""
        self.attributes[key] = value

    def finish(self) -> None:
        if self._end is None:
            self._end = time.perf_counter()

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def tree_text(self, time_unit: float = 1e-6, unit_label: str = "µs") -> str:
        """An indented rendering of the subtree (for CLIs and debugging)."""
        lines: list[str] = []
        self._render(lines, 0, time_unit, unit_label)
        return "\n".join(lines)

    def _render(
        self, lines: list[str], depth: int, time_unit: float, unit_label: str
    ) -> None:
        attrs = " ".join(
            f"{key}={_sanitize(value)}"
            for key, value in sorted(self.attributes.items())
        )
        suffix = f"  [{attrs}]" if attrs else ""
        lines.append(
            f"{'  ' * depth}{self.name}  {self.duration / time_unit:.0f} "
            f"{unit_label}{suffix}"
        )
        for child in self.children:
            child._render(lines, depth + 1, time_unit, unit_label)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"{self.duration * 1e6:.0f}µs" if self.finished else "open"
        return f"Span({self.name!r}, {state}, children={len(self.children)})"


def _sanitize(value: Any) -> Any:
    """A JSON-representable stand-in for an attribute value."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


def span_to_dict(span: Span) -> dict[str, Any]:
    """The JSON-ready representation of a span subtree."""
    return {
        "name": span.name,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "started_at": span.started_at,
        "duration": span.duration,
        "attributes": {
            key: _sanitize(value) for key, value in span.attributes.items()
        },
        "children": [span_to_dict(child) for child in span.children],
    }


def span_from_dict(data: dict[str, Any]) -> Span:
    """Rebuild a span subtree from :func:`span_to_dict` output."""
    span = Span(data["name"], parent_id=data.get("parent_id"))
    span.span_id = data["span_id"]
    span.attributes = dict(data.get("attributes", {}))
    span.started_at = data.get("started_at", 0.0)
    span._start = 0.0
    span._end = data.get("duration", 0.0)
    for child in data.get("children", ()):
        span.children.append(span_from_dict(child))
    return span


class _SpanContext:
    """The context manager :meth:`Tracer.span` returns."""

    __slots__ = ("_tracer", "_span", "_token")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span
        self._token = None

    def __enter__(self) -> Span:
        self._token = self._tracer._current.set(self._span)
        return self._span

    def __exit__(self, *exc_info: Any) -> None:
        self._span.finish()
        self._tracer._current.reset(self._token)
        if self._span.parent_id is None:
            self._tracer._roots.append(self._span)


class _NullContext:
    """Stands in for a span context when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: Any) -> None:
        return None


_NULL_CONTEXT = _NullContext()


class Tracer:
    """Collects span trees; the context variable lives here.

    ``enabled`` may be flipped at any time; spans opened while disabled
    are simply never created (callers get a no-op context).  Finished
    root spans are kept in a bounded deque, newest last.
    """

    def __init__(self, enabled: bool = True, max_roots: int = 256):
        self.enabled = enabled
        self._roots: deque[Span] = deque(maxlen=max_roots)
        self._current: ContextVar[Span | None] = ContextVar(
            "repro-trace-current", default=None
        )

    # ------------------------------------------------------------------

    def span(self, name: str, **attributes: Any) -> _SpanContext | _NullContext:
        """Open a child span of whatever span is currently active."""
        if not self.enabled:
            return _NULL_CONTEXT
        parent = self._current.get()
        span = Span(name, parent_id=parent.span_id if parent else None, **attributes)
        if parent is not None:
            parent.children.append(span)
        return _SpanContext(self, span)

    def record_span(
        self, name: str, seconds: float = 0.0, **attributes: Any
    ) -> Span | None:
        """Attach an already-finished synthetic span under the current one.

        For work measured out-of-band — queue wait read off a timestamp,
        a merge timed with ``perf_counter`` around a call, a fault that
        happened on the far side of a process boundary.  The span is
        backdated so its ``started_at`` reflects when the work began and
        its ``duration`` equals ``seconds``.  Returns ``None`` when
        tracing is disabled or there is no open parent to attach to.
        """
        if not self.enabled:
            return None
        parent = self._current.get()
        if parent is None:
            return None
        span = Span(name, parent_id=parent.span_id, **attributes)
        span.started_at = time.time() - seconds
        span._end = span._start
        span._start = span._end - seconds
        parent.children.append(span)
        return span

    def adopt(self, data: dict[str, Any]) -> Span | None:
        """Re-parent a serialized span subtree under the current span.

        The other half of cross-process stitching: a worker process runs
        its own :class:`Tracer`, ships its finished subtree back as
        :func:`span_to_dict` output, and the coordinator adopts it here.
        Span ids are reissued from this process's counter (the worker's
        ids come from a different counter and would collide), and the
        subtree's parent pointers are rewritten to match.  Returns the
        adopted root, or ``None`` when tracing is disabled.
        """
        if not self.enabled:
            return None
        parent = self._current.get()
        root = self._rebuild(data, parent.span_id if parent else None)
        if parent is not None:
            parent.children.append(root)
        else:
            self._roots.append(root)
        return root

    def _rebuild(self, data: dict[str, Any], parent_id: int | None) -> Span:
        span = Span(data["name"], parent_id=parent_id)
        span.attributes = dict(data.get("attributes", {}))
        span.started_at = data.get("started_at", 0.0)
        span._start = 0.0
        span._end = data.get("duration", 0.0)
        for child in data.get("children", ()):
            span.children.append(self._rebuild(child, span.span_id))
        return span

    @property
    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._current.get()

    @property
    def roots(self) -> tuple[Span, ...]:
        """Finished root spans, oldest first."""
        return tuple(self._roots)

    @property
    def last_root(self) -> Span | None:
        return self._roots[-1] if self._roots else None

    def clear(self) -> None:
        self._roots.clear()

    # ------------------------------------------------------------------
    # Export.
    # ------------------------------------------------------------------

    def export_json(self) -> str:
        """All finished root spans as one JSON array."""
        return json.dumps([span_to_dict(root) for root in self._roots])

    def export_jsonl(self, path: str | Path) -> int:
        """Write one JSON object per root span; returns the span count."""
        lines = [json.dumps(span_to_dict(root)) for root in self._roots]
        Path(path).write_text(
            "".join(line + "\n" for line in lines), encoding="utf-8"
        )
        return len(lines)


def load_jsonl(path: str | Path) -> list[Span]:
    """Read spans back from :meth:`Tracer.export_jsonl` output."""
    spans: list[Span] = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        if line.strip():
            spans.append(span_from_dict(json.loads(line)))
    return spans


def maybe_span(
    tracer: Tracer | None, name: str, **attributes: Any
) -> _SpanContext | _NullContext:
    """A span context if ``tracer`` is present and enabled, else a no-op.

    The guard instrumented code uses so an absent or disabled tracer
    costs one ``is None`` check and nothing else.
    """
    if tracer is not None and tracer.enabled:
        return tracer.span(name, **attributes)
    return _NULL_CONTEXT
