"""Observability for the query engine: traces, metrics, query log.

Three cooperating pieces, each usable alone:

* :mod:`repro.obs.trace` — hierarchical spans under a context-var
  driven :class:`Tracer` (what happened inside one call, and when);
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges, and fixed-bucket histograms (what the process has done,
  aggregated);
* :mod:`repro.obs.querylog` — a ring buffer of structured
  :class:`QueryRecord` entries (what queries ran and how they went).

The request-scoped tracing layer adds three more:

* :mod:`repro.obs.context` — the serializable :class:`TraceContext`
  that carries a trace id and sampling decision across thread and
  process pools;
* :mod:`repro.obs.sampling` — :class:`HeadSampler` (detail on/off at
  request start) and :class:`TraceStore` (tail-keep retention of slow,
  errored, and fault-marked traces);
* :mod:`repro.obs.slo` — declarative :class:`SLObjective` targets and
  multi-window :class:`BurnRateMonitor` alerting.

:class:`Telemetry` bundles a tracer, registry, and query log — the unit
an :class:`~repro.engine.Engine` carries; see ``docs/observability.md``
for the metric catalogue and span taxonomy.
"""

from __future__ import annotations

from typing import Any

from repro.obs.context import TraceContext, new_trace_id
from repro.obs.metrics import (
    CARDINALITY_BUCKETS,
    EVAL_NODE_SECONDS,
    EVAL_NODES_TOTAL,
    INDEX_BUILD_SECONDS,
    MEMO_HITS_TOTAL,
    OPTIMIZE_SECONDS,
    OPTIMIZER_RULE_FIRES_TOTAL,
    PARSE_SECONDS,
    QUERIES_TOTAL,
    RESULT_CARDINALITY,
    SECONDS_BUCKETS,
    SERVER_CACHE_EVICTIONS_TOTAL,
    SERVER_CACHE_HITS_TOTAL,
    SERVER_CACHE_MISSES_TOTAL,
    SERVER_INFLIGHT,
    SERVER_QUEUE_DEPTH,
    SERVER_REJECTED_TOTAL,
    SERVER_REQUEST_SECONDS,
    SERVER_REQUESTS_TOTAL,
    SERVER_TIMEOUTS_TOTAL,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
)
from repro.obs.querylog import QueryLog, QueryRecord
from repro.obs.sampling import HeadSampler, KeptTrace, TraceStore
from repro.obs.slo import BurnRateMonitor, SLObjective, SLOObservatory
from repro.obs.trace import Span, Tracer, load_jsonl, maybe_span, span_from_dict, span_to_dict

__all__ = [
    "Telemetry",
    "Tracer",
    "Span",
    "maybe_span",
    "span_to_dict",
    "span_from_dict",
    "load_jsonl",
    "TraceContext",
    "new_trace_id",
    "HeadSampler",
    "KeptTrace",
    "TraceStore",
    "SLObjective",
    "BurnRateMonitor",
    "SLOObservatory",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "global_registry",
    "QueryLog",
    "QueryRecord",
    "SECONDS_BUCKETS",
    "CARDINALITY_BUCKETS",
    "QUERIES_TOTAL",
    "PARSE_SECONDS",
    "OPTIMIZE_SECONDS",
    "EVAL_NODE_SECONDS",
    "EVAL_NODES_TOTAL",
    "MEMO_HITS_TOTAL",
    "RESULT_CARDINALITY",
    "INDEX_BUILD_SECONDS",
    "OPTIMIZER_RULE_FIRES_TOTAL",
    "SERVER_REQUESTS_TOTAL",
    "SERVER_REQUEST_SECONDS",
    "SERVER_QUEUE_DEPTH",
    "SERVER_INFLIGHT",
    "SERVER_CACHE_HITS_TOTAL",
    "SERVER_CACHE_MISSES_TOTAL",
    "SERVER_CACHE_EVICTIONS_TOTAL",
    "SERVER_REJECTED_TOTAL",
    "SERVER_TIMEOUTS_TOTAL",
]


class Telemetry:
    """One engine's observability bundle: tracer + metrics + query log.

    Tracing starts disabled (spans cost time; metrics and the query log
    are cheap enough to keep always on).  Flip it with
    :meth:`enable_tracing` or ``telemetry.tracer.enabled = True``.
    """

    def __init__(
        self,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        query_log: QueryLog | None = None,
        query_log_capacity: int = 256,
    ):
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.query_log = (
            query_log if query_log is not None else QueryLog(query_log_capacity)
        )

    def enable_tracing(self, enabled: bool = True) -> None:
        self.tracer.enabled = enabled

    def snapshot(self) -> dict[str, Any]:
        """A JSON-ready view of everything this bundle has recorded."""
        return {
            "tracing_enabled": self.tracer.enabled,
            "traces_retained": len(self.tracer.roots),
            "metrics": self.metrics.snapshot(),
            "query_log": self.query_log.summary(),
            "recent_queries": [
                record.to_dict() for record in self.query_log.records()[-10:]
            ],
        }
