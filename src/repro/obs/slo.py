"""Service-level objectives and multi-window burn-rate monitoring.

`/metrics` says what the service *is doing*; this module says whether
that is *good enough*.  An :class:`SLObjective` declares a target over a
service-level indicator — availability (the fraction of counted
requests that do not fail server-side) or latency (the fraction of
successful requests under a threshold).  The gap between the objective
and 1.0 is the **error budget**; the **burn rate** is how fast current
traffic is spending it:

    burn = bad_fraction / (1 - objective)

Burn 1.0 spends exactly the budget over the SLO period; burn 10 spends
it ten times too fast.  Following the standard multi-window rule, a
:class:`BurnRateMonitor` raises its *fast-burn* signal only when **both**
a short window (sensitive, noisy) and a long window (stable, slow to
clear) exceed the burn threshold with enough samples — the long window
suppresses blips, the short window makes recovery prompt.

The :class:`SLOObservatory` owns one monitor per objective, classifies
each finished request into good/bad per SLI, and reports through three
channels: counters/gauges in the shared registry (``slo_*``), a JSON
snapshot for the ``/slo`` endpoint and ``repro top``, and an
``on_burn_change`` callback the query service wires to
:meth:`HealthMonitor.set_pressure` so a fast burn degrades (or, if
configured, sheds) the service before the budget is gone.

The per-request cost is deliberately tiny — two deque appends and O(1)
window arithmetic — because :mod:`bench_e15` holds the whole request
path to <1% overhead with tracing disabled.  Burn *gauges* and the
``slo_events_total`` / ``slo_bad_events_total`` counters are therefore
refreshed on :meth:`SLOObservatory.snapshot` (scrape time), not per
request.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from time import monotonic
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.metrics import MetricsRegistry

__all__ = [
    "SLObjective",
    "BurnRateMonitor",
    "SLOObservatory",
]


@dataclass(frozen=True)
class SLObjective:
    """One declarative objective over a service-level indicator."""

    name: str
    sli: str  #: "availability" or "latency"
    objective: float  #: target good fraction, e.g. 0.99
    latency_threshold: float | None = None  #: seconds; latency SLI only

    def __post_init__(self) -> None:
        if self.sli not in ("availability", "latency"):
            raise ValueError(f"unknown SLI kind {self.sli!r}")
        if not 0.0 < self.objective < 1.0:
            raise ValueError(
                f"objective for {self.name!r} must be in (0, 1), "
                f"got {self.objective}"
            )
        if self.sli == "latency" and (
            self.latency_threshold is None or self.latency_threshold <= 0
        ):
            raise ValueError(
                f"latency objective {self.name!r} needs a positive threshold"
            )

    @property
    def budget(self) -> float:
        """The tolerated bad fraction, ``1 - objective``."""
        return 1.0 - self.objective

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "sli": self.sli,
            "objective": self.objective,
            "latency_threshold": self.latency_threshold,
        }


class _Window:
    """A sliding time window of good/bad events with O(1) rates.

    Events are ``(timestamp, bad)`` pairs in a deque; expired entries
    are popped on every touch, and running totals make the bad-rate a
    division, not a scan.
    """

    __slots__ = ("seconds", "_events", "_bad")

    def __init__(self, seconds: float):
        self.seconds = seconds
        self._events: deque[tuple[float, bool]] = deque()
        self._bad = 0

    def add(self, now: float, bad: bool) -> None:
        self._events.append((now, bad))
        if bad:
            self._bad += 1
        self._expire(now)

    def _expire(self, now: float) -> None:
        horizon = now - self.seconds
        events = self._events
        while events and events[0][0] < horizon:
            _, was_bad = events.popleft()
            if was_bad:
                self._bad -= 1

    def rate(self, now: float) -> tuple[float, int]:
        """``(bad_fraction, sample_count)`` over the live window."""
        self._expire(now)
        count = len(self._events)
        if count == 0:
            return 0.0, 0
        return self._bad / count, count


class BurnRateMonitor:
    """Multi-window burn-rate detection for one objective.

    ``record(bad)`` feeds both windows and re-evaluates the fast-burn
    condition; transitions fire ``on_change(active)`` outside the lock.
    The activation count survives deactivation — chaos invariants assert
    on it rather than racing the live flag.
    """

    def __init__(
        self,
        objective: SLObjective,
        fast_window: float = 60.0,
        slow_window: float = 300.0,
        burn_threshold: float = 10.0,
        min_samples: int = 10,
        clock: Callable[[], float] = monotonic,
        on_change: Callable[[bool], None] | None = None,
    ):
        if not 0 < fast_window <= slow_window:
            raise ValueError("need 0 < fast_window <= slow_window")
        if burn_threshold <= 0:
            raise ValueError("burn threshold must be positive")
        self.objective = objective
        self.burn_threshold = burn_threshold
        self.min_samples = min_samples
        self._fast = _Window(fast_window)
        self._slow = _Window(slow_window)
        self._clock = clock
        self._on_change = on_change
        self._lock = threading.Lock()
        self._active = False
        self.activations = 0
        self.events = 0
        self.bad_events = 0

    # ------------------------------------------------------------------

    def record(self, bad: bool) -> None:
        now = self._clock()
        fired: bool | None = None
        with self._lock:
            self._fast.add(now, bad)
            self._slow.add(now, bad)
            self.events += 1
            if bad:
                self.bad_events += 1
            fired = self._reevaluate(now)
        if fired is not None and self._on_change is not None:
            self._on_change(fired)

    def _reevaluate(self, now: float) -> bool | None:
        """Recompute the fast-burn flag; returns the new state on a
        transition, ``None`` when unchanged.  Caller holds the lock."""
        fast_rate, fast_n = self._fast.rate(now)
        slow_rate, slow_n = self._slow.rate(now)
        budget = self.objective.budget
        active = (
            fast_n >= self.min_samples
            and slow_n >= self.min_samples
            and fast_rate / budget >= self.burn_threshold
            and slow_rate / budget >= self.burn_threshold
        )
        if active == self._active:
            return None
        self._active = active
        if active:
            self.activations += 1
        return active

    def poll(self) -> None:
        """Re-evaluate without a new event (windows decay over time, and
        the flag should clear even if traffic stops)."""
        now = self._clock()
        fired: bool | None = None
        with self._lock:
            fired = self._reevaluate(now)
        if fired is not None and self._on_change is not None:
            self._on_change(fired)

    # ------------------------------------------------------------------

    @property
    def fast_burn_active(self) -> bool:
        return self._active

    def burn_rates(self) -> tuple[float, float]:
        """Current ``(fast, slow)`` burn rates."""
        now = self._clock()
        with self._lock:
            fast_rate, _ = self._fast.rate(now)
            slow_rate, _ = self._slow.rate(now)
        budget = self.objective.budget
        return fast_rate / budget, slow_rate / budget

    def snapshot(self) -> dict[str, Any]:
        now = self._clock()
        with self._lock:
            fast_rate, fast_n = self._fast.rate(now)
            slow_rate, slow_n = self._slow.rate(now)
            active = self._active
            activations = self.activations
            events, bad_events = self.events, self.bad_events
        budget = self.objective.budget
        return {
            "objective": self.objective.to_dict(),
            "budget": budget,
            "burn_threshold": self.burn_threshold,
            "fast": {
                "window_seconds": self._fast.seconds,
                "bad_rate": fast_rate,
                "burn": fast_rate / budget,
                "samples": fast_n,
            },
            "slow": {
                "window_seconds": self._slow.seconds,
                "bad_rate": slow_rate,
                "burn": slow_rate / budget,
                "samples": slow_n,
            },
            "fast_burn_active": active,
            "activations": activations,
            "events": events,
            "bad_events": bad_events,
        }


#: Availability SLI: statuses that count, and the bad subset.  Load-shed
#: and admission rejections (429/503) are the service *protecting* its
#: objective, and client errors are not the server's fault — counting
#: either as bad would let a shed spiral or an abusive client burn the
#: budget and deepen the degradation they caused.
_AVAILABILITY_COUNTED = frozenset({"200", "500", "504"})
_AVAILABILITY_BAD = frozenset({"500", "504"})


class SLOObservatory:
    """All of a service's objectives, fed once per finished request."""

    def __init__(
        self,
        objectives: tuple[SLObjective, ...],
        fast_window: float = 60.0,
        slow_window: float = 300.0,
        burn_threshold: float = 10.0,
        min_samples: int = 10,
        metrics: "MetricsRegistry | None" = None,
        clock: Callable[[], float] = monotonic,
        on_burn_change: Callable[[str, bool], None] | None = None,
    ):
        self.objectives = objectives
        self.monitors: dict[str, BurnRateMonitor] = {}
        for objective in objectives:
            name = objective.name
            callback = None
            if on_burn_change is not None:
                callback = (
                    lambda active, _name=name: on_burn_change(_name, active)
                )
            self.monitors[name] = BurnRateMonitor(
                objective,
                fast_window=fast_window,
                slow_window=slow_window,
                burn_threshold=burn_threshold,
                min_samples=min_samples,
                clock=clock,
                on_change=callback,
            )
        self._events = None
        self._bad_events = None
        self._burn_gauge = None
        self._active_gauge = None
        #: per-monitor event totals already mirrored into the counters.
        self._synced: dict[str, tuple[int, int]] = {}
        if metrics is not None:
            from repro.obs import metrics as m

            self._events = metrics.counter(
                m.SLO_EVENTS_TOTAL, "requests counted toward each SLO"
            )
            self._bad_events = metrics.counter(
                m.SLO_BAD_EVENTS_TOTAL, "budget-burning requests per SLO"
            )
            self._burn_gauge = metrics.gauge(
                m.SLO_BURN_RATE, "burn rate per SLO and window (at scrape)"
            )
            self._active_gauge = metrics.gauge(
                m.SLO_FAST_BURN_ACTIVE, "1 while the fast-burn alert is firing"
            )

    @classmethod
    def from_config(
        cls,
        config: Any,
        metrics: "MetricsRegistry | None" = None,
        on_burn_change: Callable[[str, bool], None] | None = None,
    ) -> "SLOObservatory":
        """Build the standard two objectives from a ``ServerConfig``."""
        objectives = (
            SLObjective(
                name="availability",
                sli="availability",
                objective=config.slo_availability_objective,
            ),
            SLObjective(
                name="latency",
                sli="latency",
                objective=config.slo_latency_objective,
                latency_threshold=config.slo_latency_threshold,
            ),
        )
        return cls(
            objectives,
            fast_window=config.slo_fast_window,
            slow_window=config.slo_slow_window,
            burn_threshold=config.slo_burn_threshold,
            min_samples=config.slo_min_samples,
            metrics=metrics,
            on_burn_change=on_burn_change,
        )

    # ------------------------------------------------------------------

    def record(self, endpoint: str, status: str, seconds: float) -> None:
        """Classify one finished request against every objective."""
        for objective in self.objectives:
            if objective.sli == "availability":
                if status not in _AVAILABILITY_COUNTED:
                    continue
                bad = status in _AVAILABILITY_BAD
            else:  # latency: only successes tell us anything about speed
                if status != "200":
                    continue
                bad = seconds > objective.latency_threshold
            self.monitors[objective.name].record(bad)

    def poll(self) -> None:
        """Decay-only re-evaluation of every monitor (health probes,
        scrapes — lets fast-burn clear when traffic stops)."""
        for monitor in self.monitors.values():
            monitor.poll()

    def fast_burn_active(self) -> dict[str, bool]:
        return {
            name: monitor.fast_burn_active
            for name, monitor in self.monitors.items()
        }

    def snapshot(self) -> dict[str, Any]:
        """Every monitor's state; also refreshes the ``slo_*`` gauges so
        scrape-time metrics match what the endpoint reports."""
        out: dict[str, Any] = {}
        for name, monitor in self.monitors.items():
            monitor.poll()
            snap = monitor.snapshot()
            out[name] = snap
            if self._events is not None:
                # Counters catch up to the monitors' running totals here
                # rather than per request: label-key construction is too
                # expensive for the hot path's <1% overhead budget.
                seen_events, seen_bad = self._synced.get(name, (0, 0))
                if snap["events"] > seen_events:
                    self._events.inc(snap["events"] - seen_events, slo=name)
                if snap["bad_events"] > seen_bad:
                    self._bad_events.inc(snap["bad_events"] - seen_bad, slo=name)
                self._synced[name] = (snap["events"], snap["bad_events"])
            if self._burn_gauge is not None:
                self._burn_gauge.set(snap["fast"]["burn"], slo=name, window="fast")
                self._burn_gauge.set(snap["slow"]["burn"], slo=name, window="slow")
                self._active_gauge.set(
                    1.0 if snap["fast_burn_active"] else 0.0, slo=name
                )
        return out
