"""The query log: a ring buffer of structured per-query records.

Every :meth:`Engine.query` and :meth:`Engine.explain` call appends one
:class:`QueryRecord` — query text, chosen plan, result cardinality,
wall time, memo hits, and the cost model's estimate against what
actually happened (the feedback signal a self-tuning optimizer needs).
The buffer is bounded: a production engine must never grow without
limit because someone forgot to drain its log.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Iterator

__all__ = ["QueryRecord", "QueryLog"]


@dataclass(frozen=True)
class QueryRecord:
    """One logged engine call."""

    kind: str  #: ``"query"`` or ``"explain"``
    query: str  #: the query text as submitted
    plan: str  #: the plan actually chosen (optimized form when optimizing)
    optimized: bool
    seconds: float  #: wall time of the whole call
    cardinality: int | None = None  #: result size (None for ``explain``)
    memo_hits: int = 0
    nodes_evaluated: int = 0
    estimated_cost: float | None = None
    estimated_cardinality: float | None = None
    cardinality_error: float | None = None  #: |estimated − actual| / max(actual, 1)
    steps: tuple[str, ...] = field(default_factory=tuple)
    timestamp: float = 0.0  #: wall-clock seconds since the epoch
    trace_id: str | None = None  #: joins the record to an exported trace

    def to_dict(self) -> dict[str, Any]:
        data = asdict(self)
        data["steps"] = list(self.steps)
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "QueryRecord":
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416 - py3.10 compat
        kwargs = {k: v for k, v in data.items() if k in known}
        kwargs["steps"] = tuple(kwargs.get("steps", ()))
        return cls(**kwargs)


class QueryLog:
    """A bounded, append-only log of :class:`QueryRecord`.

    When full, appending evicts the oldest record (ring-buffer
    semantics).  ``capacity`` must be positive.  Appends and snapshot
    reads are serialized by a lock: the server appends from many worker
    threads while ``/metrics`` snapshots the log.
    """

    def __init__(self, capacity: int = 256):
        if capacity <= 0:
            raise ValueError("query log capacity must be positive")
        self.capacity = capacity
        self._records: deque[QueryRecord] = deque(maxlen=capacity)
        self._appended = 0
        self._lock = threading.Lock()

    def append(self, record: QueryRecord) -> None:
        with self._lock:
            self._records.append(record)
            self._appended += 1

    @property
    def total_appended(self) -> int:
        """Records ever appended, including evicted ones."""
        return self._appended

    @property
    def evicted(self) -> int:
        return self._appended - len(self._records)

    def records(self) -> tuple[QueryRecord, ...]:
        """Retained records, oldest first."""
        with self._lock:
            return tuple(self._records)

    def last(self) -> QueryRecord | None:
        with self._lock:
            return self._records[-1] if self._records else None

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[QueryRecord]:
        return iter(self.records())

    # ------------------------------------------------------------------

    def summary(self) -> dict[str, Any]:
        """Aggregate view for telemetry snapshots."""
        with self._lock:
            records = list(self._records)
        queries = [r for r in records if r.kind == "query"]
        errors = [
            r.cardinality_error
            for r in records
            if r.cardinality_error is not None
        ]
        return {
            "capacity": self.capacity,
            "retained": len(records),
            "appended": self._appended,
            "evicted": self.evicted,
            "queries": len(queries),
            "total_seconds": sum(r.seconds for r in records),
            "memo_hits": sum(r.memo_hits for r in records),
            "mean_cardinality_error": (
                sum(errors) / len(errors) if errors else None
            ),
        }

    def to_jsonl(self, path: str | Path) -> int:
        """Write one JSON object per record; returns the record count."""
        lines = [json.dumps(r.to_dict()) for r in self.records()]
        Path(path).write_text(
            "".join(line + "\n" for line in lines), encoding="utf-8"
        )
        return len(lines)

    @classmethod
    def from_jsonl(cls, path: str | Path, capacity: int | None = None) -> "QueryLog":
        """Rebuild a log from :meth:`to_jsonl` output."""
        lines = [
            line
            for line in Path(path).read_text(encoding="utf-8").splitlines()
            if line.strip()
        ]
        log = cls(capacity or max(len(lines), 1))
        for line in lines:
            log.append(QueryRecord.from_dict(json.loads(line)))
        return log
