"""A process-wide metrics registry: counters, gauges, histograms.

The quantitative half of the observability layer (the qualitative half —
traces — lives in :mod:`repro.obs.trace`).  All instruments support
label sets (``histogram.observe(t, op="Union")``), stored per sorted
label tuple, and render into a plain-dict snapshot for JSON output.

The engine's well-known metric names are module constants so the
instrumented call sites, the CLI, and the tests agree on spelling:

==========================  =============================================
``queries_total``           counter, per :meth:`Engine.query`/``explain``
``parse_seconds``           histogram, query-text parsing + view expansion
``optimize_seconds``        histogram, one :func:`optimize` call
``eval_node_seconds``       histogram ``{op=...}``, one evaluator node
``memo_hits_total``         counter, common-sub-expression cache hits
``eval_nodes_total``        counter, evaluator nodes visited
``result_cardinality``      histogram, regions returned per query
``index_build_seconds``     histogram ``{kind=...}``, parse/load an index
``optimizer_rule_fires_total``  counter ``{rule=...}``, rewrites applied
==========================  =============================================

A registry is cheap; engines carry their own.  The module-level
:func:`global_registry` aggregates call sites that run before any engine
exists (the index builders).
"""

from __future__ import annotations

import math
import threading
import time
from typing import Any, Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "global_registry",
    "parse_label_text",
    "SECONDS_BUCKETS",
    "CARDINALITY_BUCKETS",
    "QUERIES_TOTAL",
    "PARSE_SECONDS",
    "OPTIMIZE_SECONDS",
    "EVAL_NODE_SECONDS",
    "MEMO_HITS_TOTAL",
    "EVAL_NODES_TOTAL",
    "RESULT_CARDINALITY",
    "INDEX_BUILD_SECONDS",
    "OPTIMIZER_RULE_FIRES_TOTAL",
    "VM_COMPILE_TOTAL",
    "VM_FALLBACK_TOTAL",
    "VM_KERNEL_INVOCATIONS_TOTAL",
    "VM_EXEC_SECONDS",
    "SERVER_REQUESTS_TOTAL",
    "SERVER_REQUEST_SECONDS",
    "SERVER_QUEUE_DEPTH",
    "SERVER_INFLIGHT",
    "SERVER_CACHE_HITS_TOTAL",
    "SERVER_CACHE_MISSES_TOTAL",
    "SERVER_CACHE_EVICTIONS_TOTAL",
    "SERVER_REJECTED_TOTAL",
    "SERVER_TIMEOUTS_TOTAL",
    "SERVER_SHED_TOTAL",
    "SERVER_STALE_SERVED_TOTAL",
    "SERVER_HEALTH_STATE",
    "SERVER_HEALTH_TRANSITIONS_TOTAL",
    "FAULT_INJECTIONS_TOTAL",
    "RETRY_ATTEMPTS_TOTAL",
    "RETRY_EXHAUSTED_TOTAL",
    "BREAKER_STATE",
    "BREAKER_TRANSITIONS_TOTAL",
    "STORAGE_QUARANTINED_TOTAL",
    "INDEX_REBUILDS_TOTAL",
    "POOL_WORKER_DEATHS_TOTAL",
    "SHARD_TASKS_TOTAL",
    "SHARD_TASK_SECONDS",
    "SHARD_MERGE_SECONDS",
    "SHARD_TASK_RETRIES_TOTAL",
    "SHARD_DEGRADED_TOTAL",
    "SHARD_FALLBACK_TOTAL",
    "BACKEND_REQUESTS_TOTAL",
    "BACKEND_RPC_SECONDS",
    "BACKEND_FAILOVERS_TOTAL",
    "BACKEND_HEDGES_TOTAL",
    "BACKEND_HEDGE_WINS_TOTAL",
    "BACKEND_RESPAWNS_TOTAL",
    "FRONTIER_FALLBACK_TOTAL",
    "REPLICATION_BATCHES_SHIPPED_TOTAL",
    "REPLICATION_SHIP_FAILURES_TOTAL",
    "REPLICATION_APPLY_SECONDS",
    "REPLICATION_LAG",
    "REPLICATION_LAGGING_READS_TOTAL",
    "REPLICATION_CATCHUPS_TOTAL",
    "REPLICATION_ANTI_ENTROPY_RUNS_TOTAL",
    "REPLICATION_DIVERGENCE_TOTAL",
    "INGEST_OPS_TOTAL",
    "INGEST_BATCHES_TOTAL",
    "INGEST_COMMIT_SECONDS",
    "INGEST_DOCUMENTS",
    "INGEST_SEGMENTS",
    "INGEST_TOMBSTONES",
    "WAL_RECORDS_TOTAL",
    "WAL_BYTES_TOTAL",
    "WAL_REPLAYED_RECORDS_TOTAL",
    "WAL_TRUNCATIONS_TOTAL",
    "COMPACTION_RUNS_TOTAL",
    "COMPACTION_MERGED_SEGMENTS_TOTAL",
    "COMPACTION_SECONDS",
    "TRACES_KEPT_TOTAL",
    "TRACES_DROPPED_TOTAL",
    "SLO_EVENTS_TOTAL",
    "SLO_BAD_EVENTS_TOTAL",
    "SLO_BURN_RATE",
    "SLO_FAST_BURN_ACTIVE",
]

QUERIES_TOTAL = "queries_total"
PARSE_SECONDS = "parse_seconds"
OPTIMIZE_SECONDS = "optimize_seconds"
EVAL_NODE_SECONDS = "eval_node_seconds"
MEMO_HITS_TOTAL = "memo_hits_total"
EVAL_NODES_TOTAL = "eval_nodes_total"
RESULT_CARDINALITY = "result_cardinality"
INDEX_BUILD_SECONDS = "index_build_seconds"
OPTIMIZER_RULE_FIRES_TOTAL = "optimizer_rule_fires_total"

# The compiled execution engine (repro.vm) — see docs/internals.md.
VM_COMPILE_TOTAL = "vm_compile_total"
VM_FALLBACK_TOTAL = "vm_fallback_total"
VM_KERNEL_INVOCATIONS_TOTAL = "vm_kernel_invocations_total"
VM_EXEC_SECONDS = "vm_exec_seconds"

# The serving layer (repro.server) — see docs/server.md.
SERVER_REQUESTS_TOTAL = "server_requests_total"
SERVER_REQUEST_SECONDS = "server_request_seconds"
SERVER_QUEUE_DEPTH = "server_queue_depth"
SERVER_INFLIGHT = "server_inflight"
SERVER_CACHE_HITS_TOTAL = "server_cache_hits_total"
SERVER_CACHE_MISSES_TOTAL = "server_cache_misses_total"
SERVER_CACHE_EVICTIONS_TOTAL = "server_cache_evictions_total"
SERVER_REJECTED_TOTAL = "server_rejected_total"
SERVER_TIMEOUTS_TOTAL = "server_timeouts_total"

# The resilience layer (repro.faults + server hardening) —
# see docs/robustness.md.
SERVER_SHED_TOTAL = "server_shed_total"
SERVER_STALE_SERVED_TOTAL = "server_stale_served_total"
SERVER_HEALTH_STATE = "server_health_state"
SERVER_HEALTH_TRANSITIONS_TOTAL = "server_health_transitions_total"
FAULT_INJECTIONS_TOTAL = "fault_injections_total"
RETRY_ATTEMPTS_TOTAL = "retry_attempts_total"
RETRY_EXHAUSTED_TOTAL = "retry_exhausted_total"
BREAKER_STATE = "breaker_state"
BREAKER_TRANSITIONS_TOTAL = "breaker_transitions_total"
STORAGE_QUARANTINED_TOTAL = "storage_quarantined_total"
INDEX_REBUILDS_TOTAL = "index_rebuilds_total"
POOL_WORKER_DEATHS_TOTAL = "pool_worker_deaths_total"

# The sharded executor (repro.shard) — see docs/internals.md.
SHARD_TASKS_TOTAL = "shard_tasks_total"
SHARD_TASK_SECONDS = "shard_task_seconds"
SHARD_MERGE_SECONDS = "shard_merge_seconds"
SHARD_TASK_RETRIES_TOTAL = "shard_task_retries_total"
SHARD_DEGRADED_TOTAL = "shard_degraded_total"
SHARD_FALLBACK_TOTAL = "shard_fallback_total"

# The multi-process backend layer (repro.backend) — see docs/server.md
# ("Topology & failover") and docs/robustness.md.
BACKEND_REQUESTS_TOTAL = "backend_requests_total"
BACKEND_RPC_SECONDS = "backend_rpc_seconds"
BACKEND_FAILOVERS_TOTAL = "backend_failovers_total"
BACKEND_HEDGES_TOTAL = "backend_hedges_total"
BACKEND_HEDGE_WINS_TOTAL = "backend_hedge_wins_total"
BACKEND_RESPAWNS_TOTAL = "backend_respawns_total"
FRONTIER_FALLBACK_TOTAL = "frontier_fallback_total"

# WAL log shipping to backend replicas (repro.backend.replication) —
# see docs/robustness.md ("Replication & anti-entropy").
REPLICATION_BATCHES_SHIPPED_TOTAL = "replication_batches_shipped_total"
REPLICATION_SHIP_FAILURES_TOTAL = "replication_ship_failures_total"
REPLICATION_APPLY_SECONDS = "replication_apply_seconds"
REPLICATION_LAG = "replication_lag"
REPLICATION_LAGGING_READS_TOTAL = "replication_lagging_reads_total"
REPLICATION_CATCHUPS_TOTAL = "replication_catchups_total"
REPLICATION_ANTI_ENTROPY_RUNS_TOTAL = "replication_anti_entropy_runs_total"
REPLICATION_DIVERGENCE_TOTAL = "replication_divergence_total"

# The live-ingestion layer (repro.ingest) — see docs/internals.md
# ("Segments, generations, and the WAL") and docs/server.md.
INGEST_OPS_TOTAL = "ingest_ops_total"
INGEST_BATCHES_TOTAL = "ingest_batches_total"
INGEST_COMMIT_SECONDS = "ingest_commit_seconds"
INGEST_DOCUMENTS = "ingest_documents"
INGEST_SEGMENTS = "ingest_segments"
INGEST_TOMBSTONES = "ingest_tombstones"
WAL_RECORDS_TOTAL = "wal_records_total"
WAL_BYTES_TOTAL = "wal_bytes_total"
WAL_REPLAYED_RECORDS_TOTAL = "wal_replayed_records_total"
WAL_TRUNCATIONS_TOTAL = "wal_truncations_total"
COMPACTION_RUNS_TOTAL = "compaction_runs_total"
COMPACTION_MERGED_SEGMENTS_TOTAL = "compaction_merged_segments_total"
COMPACTION_SECONDS = "compaction_seconds"

# The tracing/SLO layer (repro.obs.sampling + repro.obs.slo) —
# see docs/observability.md.
TRACES_KEPT_TOTAL = "traces_kept_total"
TRACES_DROPPED_TOTAL = "traces_dropped_total"
SLO_EVENTS_TOTAL = "slo_events_total"
SLO_BAD_EVENTS_TOTAL = "slo_bad_events_total"
SLO_BURN_RATE = "slo_burn_rate"
SLO_FAST_BURN_ACTIVE = "slo_fast_burn_active"

#: Upper bucket bounds for wall-time histograms (seconds; +inf implied).
SECONDS_BUCKETS = (1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0)

#: Upper bucket bounds for cardinality histograms (+inf implied).
CARDINALITY_BUCKETS = (0.0, 1.0, 10.0, 100.0, 1_000.0, 10_000.0, 100_000.0)

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape_label_part(text: str) -> str:
    """Escape the characters ``_label_text`` uses as structure.

    Backslash first (it is the escape character), then the ``,`` and
    ``=`` separators, then newline — so label values containing any of
    them round-trip through the snapshot text form instead of corrupting
    it.  Values without those characters are returned unchanged, which
    keeps the common snapshot keys (``endpoint=query,status=200``)
    byte-identical to what they were before escaping existed.
    """
    if not any(ch in text for ch in "\\,=\n"):
        return text
    return (
        text.replace("\\", "\\\\")
        .replace(",", "\\,")
        .replace("=", "\\=")
        .replace("\n", "\\n")
    )


def _label_text(key: LabelKey) -> str:
    return ",".join(
        f"{_escape_label_part(k)}={_escape_label_part(v)}" for k, v in key
    )


def parse_label_text(text: str) -> list[tuple[str, str]]:
    """Invert :func:`_label_text`: split a snapshot label string back
    into ``(name, value)`` pairs, honouring backslash escapes."""
    pairs: list[tuple[str, str]] = []
    if not text:
        return pairs
    name: list[str] = []
    value: list[str] = []
    target = name
    chars = iter(text)
    for ch in chars:
        if ch == "\\":
            follower = next(chars, "")
            target.append("\n" if follower == "n" else follower)
        elif ch == "=" and target is name:
            target = value
        elif ch == ",":
            pairs.append(("".join(name), "".join(value)))
            name, value = [], []
            target = name
        else:
            target.append(ch)
    pairs.append(("".join(name), "".join(value)))
    return pairs


class Counter:
    """A monotonically increasing sum, per label set.

    Updates take a per-instrument lock: the serving layer increments
    counters from many worker threads, and an unlocked read-modify-write
    would drop increments under contention.
    """

    __slots__ = ("name", "help", "_values", "_lock")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._values: dict[LabelKey, float] = {}
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """The sum over every label set."""
        return sum(self._values.values())

    def snapshot(self) -> dict[str, float]:
        with self._lock:
            return {
                _label_text(key): value for key, value in self._values.items()
            }


class Gauge:
    """A value that goes up and down, per label set (thread-safe)."""

    __slots__ = ("name", "help", "_values", "_lock")

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._values: dict[LabelKey, float] = {}
        self._lock = threading.Lock()

    def set(self, value: float, **labels: Any) -> None:
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def snapshot(self) -> dict[str, float]:
        with self._lock:
            return {
                _label_text(key): value for key, value in self._values.items()
            }


class _HistogramSeries:
    __slots__ = ("bucket_counts", "sum", "count", "exemplars")

    def __init__(self, n_buckets: int):
        self.bucket_counts = [0] * (n_buckets + 1)  # +1 for the +inf bucket
        self.sum = 0.0
        self.count = 0
        #: bucket index -> (observed value, exemplar id, unix timestamp);
        #: newest observation with an exemplar wins per bucket.
        self.exemplars: dict[int, tuple[float, str, float]] = {}


class Histogram:
    """Fixed upper-bound buckets plus a running sum and count.

    A value lands in the first bucket whose bound is ``>= value``
    (cumulative-style edges: a value exactly on a bound counts in that
    bound's bucket); values above every bound land in the implicit
    ``+inf`` bucket.
    """

    __slots__ = ("name", "help", "buckets", "_series", "_lock")

    def __init__(
        self,
        name: str,
        buckets: Iterable[float] = SECONDS_BUCKETS,
        help: str = "",
    ):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(a >= b for a, b in zip(bounds, bounds[1:])):
            raise ValueError(f"histogram {name} needs increasing bucket bounds")
        self.name = name
        self.help = help
        self.buckets = bounds
        self._series: dict[LabelKey, _HistogramSeries] = {}
        self._lock = threading.Lock()

    def observe(
        self, value: float, *, exemplar: str | None = None, **labels: Any
    ) -> None:
        """Record ``value``; an ``exemplar`` (a trace id) tags the bucket
        the value lands in, linking the aggregate back to one concrete
        kept trace in the OpenMetrics exposition."""
        key = _label_key(labels)
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(len(self.buckets))
            series.bucket_counts[index] += 1
            series.sum += value
            series.count += 1
            if exemplar is not None:
                series.exemplars[index] = (value, exemplar, time.time())

    # ------------------------------------------------------------------

    def count(self, **labels: Any) -> int:
        series = self._series.get(_label_key(labels))
        return series.count if series else 0

    def sum(self, **labels: Any) -> float:
        series = self._series.get(_label_key(labels))
        return series.sum if series else 0.0

    def mean(self, **labels: Any) -> float:
        series = self._series.get(_label_key(labels))
        if series is None or series.count == 0:
            return math.nan
        return series.sum / series.count

    def total_count(self) -> int:
        return sum(s.count for s in self._series.values())

    def total_sum(self) -> float:
        return sum(s.sum for s in self._series.values())

    def snapshot(self) -> dict[str, dict[str, Any]]:
        bound_names = [str(bound) for bound in self.buckets] + ["+inf"]
        out: dict[str, dict[str, Any]] = {}
        # The whole walk runs under the instrument lock so a concurrent
        # observe() can never show a series whose bucket counts do not
        # sum to its count (a torn read: count bumped, bucket not yet).
        with self._lock:
            for key, series in self._series.items():
                entry: dict[str, Any] = {
                    "count": series.count,
                    "sum": series.sum,
                    "buckets": dict(zip(bound_names, series.bucket_counts)),
                }
                if series.exemplars:
                    entry["exemplars"] = {
                        bound_names[index]: {
                            "value": value,
                            "trace_id": trace_id,
                            "timestamp": stamp,
                        }
                        for index, (value, trace_id, stamp) in sorted(
                            series.exemplars.items()
                        )
                    }
                out[_label_text(key)] = entry
        return out


class MetricsRegistry:
    """Get-or-create home for named instruments.

    Re-registering a name with a different instrument kind is an error;
    re-registering a histogram with different buckets is too (silent
    bucket drift would corrupt the series).  Get-or-create runs under a
    registry lock so concurrent first touches of one name agree on the
    instrument instance.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.Lock()

    def counter(self, name: str, help: str = "") -> Counter:
        with self._lock:
            self._check_free(name, self._counters)
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = Counter(name, help)
            return counter

    def gauge(self, name: str, help: str = "") -> Gauge:
        with self._lock:
            self._check_free(name, self._gauges)
            gauge = self._gauges.get(name)
            if gauge is None:
                gauge = self._gauges[name] = Gauge(name, help)
            return gauge

    def histogram(
        self,
        name: str,
        buckets: Iterable[float] = SECONDS_BUCKETS,
        help: str = "",
    ) -> Histogram:
        with self._lock:
            self._check_free(name, self._histograms)
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram(name, buckets, help)
            elif histogram.buckets != tuple(float(b) for b in buckets):
                raise ValueError(
                    f"histogram {name!r} already registered with different buckets"
                )
            return histogram

    def _check_free(self, name: str, home: dict[str, Any]) -> None:
        for kind in (self._counters, self._gauges, self._histograms):
            if kind is not home and name in kind:
                raise ValueError(
                    f"metric {name!r} already registered as a different kind"
                )

    # ------------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Every instrument's state as plain JSON-ready dicts."""
        return {
            "counters": {
                name: counter.snapshot()
                for name, counter in sorted(self._counters.items())
            },
            "gauges": {
                name: gauge.snapshot()
                for name, gauge in sorted(self._gauges.items())
            },
            "histograms": {
                name: histogram.snapshot()
                for name, histogram in sorted(self._histograms.items())
            },
        }

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


_GLOBAL = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The process-wide registry (index builders record here)."""
    return _GLOBAL
