"""Request-scoped trace context: the propagation half of tracing.

A :class:`TraceContext` is the serializable identity of one request's
trace — a 16-hex-digit ``trace_id``, the ``span_id`` of the span that
should adopt remote work, and the head-sampling decision.  It is minted
once per HTTP request by the query service, carried across thread pools
via :func:`contextvars.copy_context` (the :class:`~repro.obs.trace.Tracer`
and this module share that mechanism), and crosses *process* pools as a
plain dict (:meth:`TraceContext.to_dict`) because context variables do
not survive pickling — the worker re-activates it and the coordinator
re-parents the returned span tree with :meth:`Tracer.adopt`.

The ``sampled`` flag is the per-request detail gate: when tracing is
enabled every request records the coarse request→pool→shard skeleton
(cheap, and the tail-keep ring needs it to retain slow/error/fault
traces), but only head-sampled requests record the per-operator
``eval.*`` spans, whose volume dominates trace cost.  Code that emits
detail spans asks :func:`detail_enabled` — true when no request context
is active (CLI tracing, tests) or when the active context is sampled.
"""

from __future__ import annotations

import os
from contextvars import ContextVar, Token
from dataclasses import dataclass
from typing import Any, Iterator

__all__ = [
    "TraceContext",
    "new_trace_id",
    "current",
    "current_trace_id",
    "activate",
    "restore",
    "detail_enabled",
]


def new_trace_id() -> str:
    """A fresh 64-bit trace id as 16 lowercase hex digits."""
    return os.urandom(8).hex()


@dataclass(frozen=True)
class TraceContext:
    """The serializable identity of one request's trace."""

    trace_id: str
    span_id: int | None = None  #: parent span for adopted remote spans
    sampled: bool = True  #: head-sampling decision (detail spans on/off)

    def child(self, span_id: int) -> "TraceContext":
        """The same trace, re-rooted at a new parent span."""
        return TraceContext(self.trace_id, span_id=span_id, sampled=self.sampled)

    def to_dict(self) -> dict[str, Any]:
        """A picklable/JSON-ready form for crossing process boundaries."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "sampled": self.sampled,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TraceContext":
        return cls(
            trace_id=str(data.get("trace_id", "")),
            span_id=data.get("span_id"),
            sampled=bool(data.get("sampled", True)),
        )


#: The active request context, if any.  Propagates exactly like the
#: tracer's current-span variable: copied into thread-pool tasks via
#: ``contextvars.copy_context``, absent in unrelated threads.
_current: ContextVar[TraceContext | None] = ContextVar(
    "repro-trace-context", default=None
)


def current() -> TraceContext | None:
    """The active request's trace context, or ``None`` outside one."""
    return _current.get()


def current_trace_id() -> str | None:
    """The active request's trace id, or ``None`` outside one."""
    context = _current.get()
    return context.trace_id if context is not None else None


def activate(context: TraceContext) -> Token:
    """Install ``context`` as the active one; pair with :func:`restore`."""
    return _current.set(context)


def restore(token: Token) -> None:
    """Undo a matching :func:`activate`."""
    _current.reset(token)


def detail_enabled() -> bool:
    """Whether per-operator detail spans should be recorded right now:
    true outside any request context, else the context's head-sampling
    decision."""
    context = _current.get()
    return context is None or context.sampled


class _Active:
    """Context manager form of activate/restore (tests, CLI helpers)."""

    __slots__ = ("_context", "_token")

    def __init__(self, context: TraceContext):
        self._context = context
        self._token: Token | None = None

    def __enter__(self) -> TraceContext:
        self._token = activate(self._context)
        return self._context

    def __exit__(self, *exc_info: Any) -> None:
        assert self._token is not None
        restore(self._token)


def active(context: TraceContext) -> _Active:
    """``with active(ctx): ...`` — scoped activation."""
    return _Active(context)
