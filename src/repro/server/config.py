"""Configuration for the concurrent query service.

One frozen dataclass holds every capacity knob the serving layer
exposes, with defaults sized for an interactive single-host deployment;
``docs/server.md`` documents how each knob trades latency against
throughput and memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import ReproError

__all__ = ["ServerConfig", "CorpusSpec"]

#: Synthetic corpora ``CorpusSpec(kind="synthetic")`` can name.
_SYNTHETIC_KINDS = ("play", "dictionary", "report", "source")


@dataclass(frozen=True)
class CorpusSpec:
    """Where one served corpus comes from.

    ``kind`` selects the loader:

    * ``"index"`` — a saved index file (``repro index`` output);
    * ``"tagged"`` — an SGML-ish document, indexed at load;
    * ``"source"`` — a toy-language program, indexed at load (carries
      the Figure 1 RIG, so optimization is schema-aware);
    * ``"synthetic"`` — a generated corpus (``path`` names the
      generator: play, dictionary, report, source).

    File-backed corpora can be hot-reloaded (``/corpora/<name>/reload``)
    to pick up a re-indexed file; the generation counter and result
    cache handle the swap.
    """

    name: str
    kind: str
    path: str
    seed: int = 2024
    scale: int = 4  #: size multiplier for synthetic corpora

    def __post_init__(self) -> None:
        if self.kind not in ("index", "tagged", "source", "synthetic"):
            raise ReproError(f"unknown corpus kind {self.kind!r}")
        if self.kind == "synthetic" and self.path not in _SYNTHETIC_KINDS:
            raise ReproError(
                f"unknown synthetic corpus {self.path!r} "
                f"(available: {', '.join(_SYNTHETIC_KINDS)})"
            )

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "kind": self.kind, "path": self.path}


@dataclass(frozen=True)
class ServerConfig:
    """Capacity and behavior knobs for :class:`~repro.server.QueryService`.

    ``workers``
        Evaluation threads.  Queries are GIL-bound Python, so past a
        handful of workers the win is overlap of queueing and I/O, not
        CPU parallelism.
    ``queue_depth``
        Bounded admission queue.  A request arriving with ``workers``
        busy and ``queue_depth`` requests waiting is rejected with
        ``429``/``Retry-After`` instead of queueing without bound —
        shed load early rather than time out everything late.
    ``cache_capacity`` / ``cache_enabled``
        Result-cache entries (LRU).  Keyed by (corpus, generation,
        normalized plan, optimize flag); reloading a corpus invalidates
        its entries.
    ``default_deadline`` / ``max_deadline``
        Seconds.  Every query gets a deadline (requests may lower or
        raise theirs up to ``max_deadline``); the evaluator aborts
        cooperatively with ``QueryTimeout`` when it expires.
    """

    host: str = "127.0.0.1"
    port: int = 8600
    workers: int = 4
    queue_depth: int = 16
    cache_capacity: int = 512
    cache_enabled: bool = True
    default_deadline: float = 5.0
    max_deadline: float = 60.0
    optimize_default: bool = False
    tracing: bool = False
    query_log_capacity: int = 1024
    corpora: tuple[CorpusSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ReproError("server needs at least one worker")
        if self.queue_depth < 0:
            raise ReproError("queue depth cannot be negative")
        if self.cache_capacity < 1:
            raise ReproError("cache capacity must be positive")
        if not (0 < self.default_deadline <= self.max_deadline):
            raise ReproError(
                "deadlines must satisfy 0 < default_deadline <= max_deadline"
            )

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready view (what ``/healthz`` reports as ``config``)."""
        return {
            "workers": self.workers,
            "queue_depth": self.queue_depth,
            "cache_capacity": self.cache_capacity,
            "cache_enabled": self.cache_enabled,
            "default_deadline": self.default_deadline,
            "max_deadline": self.max_deadline,
            "optimize_default": self.optimize_default,
            "tracing": self.tracing,
        }
