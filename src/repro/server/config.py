"""Configuration for the concurrent query service.

One frozen dataclass holds every capacity knob the serving layer
exposes, with defaults sized for an interactive single-host deployment;
``docs/server.md`` documents how each knob trades latency against
throughput and memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import ReproError

__all__ = ["ServerConfig", "CorpusSpec"]

#: Synthetic corpora ``CorpusSpec(kind="synthetic")`` can name.
_SYNTHETIC_KINDS = ("play", "dictionary", "report", "source")


@dataclass(frozen=True)
class CorpusSpec:
    """Where one served corpus comes from.

    ``kind`` selects the loader:

    * ``"index"`` — a saved index file (``repro index`` output);
    * ``"tagged"`` — an SGML-ish document, indexed at load;
    * ``"source"`` — a toy-language program, indexed at load (carries
      the Figure 1 RIG, so optimization is schema-aware);
    * ``"synthetic"`` — a generated corpus (``path`` names the
      generator: play, dictionary, report, source).

    File-backed corpora can be hot-reloaded (``/corpora/<name>/reload``)
    to pick up a re-indexed file; the generation counter and result
    cache handle the swap.

    ``source`` (``kind="index"`` only) names the document the index was
    built from.  When a load finds the index file corrupt
    (:class:`~repro.errors.CorruptIndexError` survives its retries), the
    service quarantines the bad file and rebuilds the engine from this
    source — ``source_format`` says how to parse it (``"tagged"`` or
    ``"source"``) — then re-saves the index.  Without a ``source`` the
    corpus just fails to (re)load and its circuit breaker handles it.
    """

    name: str
    kind: str
    path: str
    seed: int = 2024
    scale: int = 4  #: size multiplier for synthetic corpora
    source: str | None = None  #: rebuild document for ``kind="index"``
    source_format: str = "tagged"
    shards: int | None = None  #: override ``ServerConfig.shards`` per corpus

    def __post_init__(self) -> None:
        if self.shards is not None and self.shards < 1:
            raise ReproError("a corpus needs at least one shard")
        if self.kind not in ("index", "tagged", "source", "synthetic"):
            raise ReproError(f"unknown corpus kind {self.kind!r}")
        if self.kind == "synthetic" and self.path not in _SYNTHETIC_KINDS:
            raise ReproError(
                f"unknown synthetic corpus {self.path!r} "
                f"(available: {', '.join(_SYNTHETIC_KINDS)})"
            )
        if self.source_format not in ("tagged", "source"):
            raise ReproError(
                f"unknown source format {self.source_format!r} "
                "(available: tagged, source)"
            )
        if self.source is not None and self.kind != "index":
            raise ReproError(
                "a rebuild source only makes sense for kind='index'"
            )

    def to_dict(self) -> dict[str, Any]:
        data = {"name": self.name, "kind": self.kind, "path": self.path}
        if self.source is not None:
            data["source"] = self.source
            data["source_format"] = self.source_format
        if self.shards is not None:
            data["shards"] = self.shards
        return data


@dataclass(frozen=True)
class ServerConfig:
    """Capacity and behavior knobs for :class:`~repro.server.QueryService`.

    ``workers``
        Evaluation threads.  Queries are GIL-bound Python, so past a
        handful of workers the win is overlap of queueing and I/O, not
        CPU parallelism.
    ``queue_depth``
        Bounded admission queue.  A request arriving with ``workers``
        busy and ``queue_depth`` requests waiting is rejected with
        ``429``/``Retry-After`` instead of queueing without bound —
        shed load early rather than time out everything late.
    ``cache_capacity`` / ``cache_enabled``
        Result-cache entries (LRU).  Keyed by (corpus, generation,
        normalized plan, optimize flag); reloading a corpus invalidates
        its entries.
    ``default_deadline`` / ``max_deadline``
        Seconds.  Every query gets a deadline (requests may lower or
        raise theirs up to ``max_deadline``); the evaluator aborts
        cooperatively with ``QueryTimeout`` when it expires.

    Resilience knobs (``docs/robustness.md``):

    ``retry_attempts`` / ``retry_base_delay`` / ``retry_max_delay``
        Backoff policy around corpus (re)loads.
    ``dispatch_retries``
        How many times the service re-submits a job whose worker died
        (:class:`~repro.errors.WorkerCrashedError`) before giving up.
    ``breaker_threshold`` / ``breaker_reset``
        Per-corpus circuit breaker: consecutive load failures that trip
        it, and the seconds an open breaker waits before half-opening.
    ``health_window`` / ``degraded_threshold`` / ``unhealthy_threshold``
        The sliding window (seconds) and error-rate thresholds of the
        health state machine; ``health_min_samples`` outcomes must be in
        the window before leaving ``healthy``; when unhealthy every
        ``probe_interval``-th request is admitted as a probe.
    ``stale_when_degraded``
        While degraded, a cache miss may be answered by a matching
        entry from an older corpus generation (marked ``"stale": true``).
    ``shards``
        Per-corpus shard count for sharded scatter-gather evaluation
        (``docs/internals.md``); 1 (the default) keeps the plain
        single-shard evaluator.  A :class:`CorpusSpec` may override it
        per corpus via its own ``shards`` field.

    Tracing knobs (``docs/observability.md``), active when ``tracing``:

    ``trace_sample_rate``
        Fraction of requests head-sampled for per-operator ``eval.*``
        detail; every request still records the coarse span skeleton.
    ``trace_store_capacity`` / ``trace_tail_capacity``
        Ring sizes for head-sampled traces and for tail-kept
        (slow/error/fault) traces, respectively.
    ``trace_slow_seconds``
        A request at or above this duration is tail-kept as ``slow``.

    Backend topology knobs (``docs/server.md``, "Topology & failover"):

    ``backend_nodes``
        Backend node count; 0 (the default) disables the frontier and
        keeps evaluation in-process.  With ``backend_mode="http"`` each
        node is a supervised ``repro serve`` subprocess.
    ``backend_groups`` / ``backend_replicas``
        Shard groups per corpus and replicas per group.  Each
        ``(corpus, group)`` is placed on ``backend_replicas`` distinct
        nodes by consistent hashing; a group is unavailable only when
        *all* its replicas fail, and even then the service degrades to
        local evaluation rather than failing the query.
    ``backend_hedge_quantile`` / ``backend_hedge_min_seconds``
        A call outliving the primary node's recent latency at this
        quantile (but at least ``min_seconds``) is hedged to the next
        replica; first answer wins.
    ``backend_hedge_budget``
        Hedges may not exceed this fraction of primary calls (0
        disables hedging).
    ``backend_respawn_delay``
        Seconds the supervisor waits before respawning a dead backend
        subprocess on its old port.

    Replication knobs (``docs/robustness.md``, "Replication &
    anti-entropy"), meaningful only with ``backend_mode="http"`` —
    in-process backends share the frontier's corpus handles and are
    always current:

    ``replication_enabled``
        Ship every committed WAL batch to every backend node so
        replicas serve the generation the write was acknowledged at.
        When off, writes to a corpus served through remote backends are
        rejected with ``409 ingest_unreplicated`` rather than silently
        diverging from what the replicas keep serving.
    ``replication_interval``
        Seconds between background replication sweeps — each sweep
        catches up lagging or respawned nodes and runs the anti-entropy
        checksum comparison.
    ``replication_lag_limit``
        A node this many generations behind on any corpus raises
        replication pressure on the health monitor (degraded state)
        until it catches back up.

    Live-ingestion knobs (``docs/internals.md``, "Segments, generations,
    and the WAL"):

    ``ingest_enabled``
        Accept ``POST /ingest`` mutations.  Off by default: a read-only
        service never pays the write path's locks or disk I/O.
    ``ingest_dir``
        Directory for the per-corpus write-ahead logs and checkpoint
        snapshots; a temporary directory is created (and the WAL is
        non-durable across restarts) when unset.
    ``ingest_fsync``
        fsync every committed batch (and checkpoint).  Turning it off
        trades crash durability for commit latency — tests only.
    ``ingest_keep_generations``
        How many recent generations of a corpus's cache entries an
        ingest commit keeps resident (older ones are dropped).  Kept
        entries from superseded generations are what degraded mode
        serves stale; a reload still invalidates the whole corpus.
    ``compaction_enabled`` / ``compaction_interval`` /
    ``compaction_min_segments`` / ``compaction_small_docs``
        The background compactor: every ``compaction_interval`` seconds
        (skipped entirely while the service is not healthy) it merges
        the segments of at most one corpus that has tombstones or at
        least ``compaction_min_segments`` segments holding
        ``compaction_small_docs`` or fewer live documents each.

    SLO knobs (always active; they only read request outcomes):

    ``slo_availability_objective``
        Target fraction of counted requests (200/500/504) that must not
        fail server-side.
    ``slo_latency_objective`` / ``slo_latency_threshold``
        Target fraction of successful requests answered within the
        threshold (seconds).
    ``slo_fast_window`` / ``slo_slow_window`` / ``slo_burn_threshold``
        Multi-window burn-rate alerting: fast-burn fires only when both
        windows burn the error budget at ``slo_burn_threshold`` times
        the sustainable rate, with at least ``slo_min_samples`` events
        in each window.
    ``slo_shed_on_fast_burn``
        When true a fast burn forces the health state to unhealthy
        (load shed); the default only forces degraded.
    """

    host: str = "127.0.0.1"
    port: int = 8600
    workers: int = 4
    queue_depth: int = 16
    cache_capacity: int = 512
    cache_enabled: bool = True
    default_deadline: float = 5.0
    max_deadline: float = 60.0
    optimize_default: bool = False
    tracing: bool = False
    query_log_capacity: int = 1024
    corpora: tuple[CorpusSpec, ...] = field(default_factory=tuple)
    retry_attempts: int = 3
    retry_base_delay: float = 0.05
    retry_max_delay: float = 0.5
    dispatch_retries: int = 2
    breaker_threshold: int = 3
    breaker_reset: float = 5.0
    health_window: float = 10.0
    degraded_threshold: float = 0.10
    unhealthy_threshold: float = 0.50
    health_min_samples: int = 10
    probe_interval: int = 10
    stale_when_degraded: bool = True
    #: Compiled plan execution (repro.vm); ``--no-vm`` forces the
    #: AST interpreter everywhere (engines, shard workers, backends).
    vm_enabled: bool = True
    shards: int = 1
    backend_nodes: int = 0
    backend_groups: int = 2
    backend_replicas: int = 1
    backend_mode: str = "inprocess"
    backend_hedge_quantile: float = 0.95
    backend_hedge_min_seconds: float = 0.05
    backend_hedge_budget: float = 0.1
    backend_respawn_delay: float = 0.5
    replication_enabled: bool = True
    replication_interval: float = 2.0
    replication_lag_limit: int = 8
    ingest_enabled: bool = False
    ingest_dir: str | None = None
    ingest_fsync: bool = True
    ingest_keep_generations: int = 2
    compaction_enabled: bool = True
    compaction_interval: float = 5.0
    compaction_min_segments: int = 4
    compaction_small_docs: int = 32
    trace_sample_rate: float = 0.1
    trace_store_capacity: int = 256
    trace_tail_capacity: int = 256
    trace_slow_seconds: float = 0.25
    slo_availability_objective: float = 0.99
    slo_latency_objective: float = 0.95
    slo_latency_threshold: float = 0.5
    slo_fast_window: float = 60.0
    slo_slow_window: float = 300.0
    slo_burn_threshold: float = 10.0
    slo_min_samples: int = 20
    slo_shed_on_fast_burn: bool = False

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ReproError("server needs at least one worker")
        if self.shards < 1:
            raise ReproError("server needs at least one shard per corpus")
        if self.queue_depth < 0:
            raise ReproError("queue depth cannot be negative")
        if self.cache_capacity < 1:
            raise ReproError("cache capacity must be positive")
        if not (0 < self.default_deadline <= self.max_deadline):
            raise ReproError(
                "deadlines must satisfy 0 < default_deadline <= max_deadline"
            )
        if self.retry_attempts < 1:
            raise ReproError("retry_attempts must be at least 1")
        if self.dispatch_retries < 0:
            raise ReproError("dispatch_retries cannot be negative")
        if self.breaker_threshold < 1:
            raise ReproError("breaker_threshold must be at least 1")
        if self.breaker_reset <= 0:
            raise ReproError("breaker_reset must be positive seconds")
        if not (
            0 < self.degraded_threshold <= self.unhealthy_threshold <= 1.0
        ):
            raise ReproError(
                "thresholds must satisfy "
                "0 < degraded_threshold <= unhealthy_threshold <= 1"
            )
        if self.backend_mode not in ("inprocess", "http"):
            raise ReproError(
                f"unknown backend mode {self.backend_mode!r} "
                "(available: inprocess, http)"
            )
        if self.backend_nodes < 0:
            raise ReproError("backend_nodes cannot be negative")
        if self.backend_groups < 1:
            raise ReproError("backend_groups must be at least 1")
        if self.backend_replicas < 1:
            raise ReproError("backend_replicas must be at least 1")
        if 0 < self.backend_nodes < self.backend_replicas:
            raise ReproError(
                "backend_replicas cannot exceed backend_nodes"
            )
        if not (0.0 < self.backend_hedge_quantile <= 1.0):
            raise ReproError("backend_hedge_quantile must be in (0, 1]")
        if self.backend_hedge_min_seconds < 0:
            raise ReproError("backend_hedge_min_seconds cannot be negative")
        if self.backend_hedge_budget < 0:
            raise ReproError("backend_hedge_budget cannot be negative")
        if self.backend_respawn_delay <= 0:
            raise ReproError("backend_respawn_delay must be positive seconds")
        if self.replication_interval <= 0:
            raise ReproError("replication_interval must be positive seconds")
        if self.replication_lag_limit < 1:
            raise ReproError("replication_lag_limit must be at least 1")
        if self.ingest_keep_generations < 1:
            raise ReproError("ingest_keep_generations must be at least 1")
        if self.compaction_interval <= 0:
            raise ReproError("compaction_interval must be positive seconds")
        if self.compaction_min_segments < 2:
            raise ReproError("compaction_min_segments must be at least 2")
        if self.compaction_small_docs < 1:
            raise ReproError("compaction_small_docs must be at least 1")
        if not (0.0 <= self.trace_sample_rate <= 1.0):
            raise ReproError("trace_sample_rate must be in [0, 1]")
        if self.trace_store_capacity < 1 or self.trace_tail_capacity < 1:
            raise ReproError("trace ring capacities must be at least 1")
        if self.trace_slow_seconds <= 0:
            raise ReproError("trace_slow_seconds must be positive")
        for objective in (
            self.slo_availability_objective,
            self.slo_latency_objective,
        ):
            if not (0.0 < objective < 1.0):
                raise ReproError("SLO objectives must be in (0, 1)")
        if self.slo_latency_threshold <= 0:
            raise ReproError("slo_latency_threshold must be positive seconds")
        if not (0 < self.slo_fast_window <= self.slo_slow_window):
            raise ReproError(
                "SLO windows must satisfy 0 < slo_fast_window <= slo_slow_window"
            )
        if self.slo_burn_threshold <= 0:
            raise ReproError("slo_burn_threshold must be positive")
        if self.slo_min_samples < 1:
            raise ReproError("slo_min_samples must be at least 1")

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready view (what ``/healthz`` reports as ``config``)."""
        return {
            "workers": self.workers,
            "queue_depth": self.queue_depth,
            "cache_capacity": self.cache_capacity,
            "cache_enabled": self.cache_enabled,
            "default_deadline": self.default_deadline,
            "max_deadline": self.max_deadline,
            "optimize_default": self.optimize_default,
            "tracing": self.tracing,
            "retry_attempts": self.retry_attempts,
            "dispatch_retries": self.dispatch_retries,
            "breaker_threshold": self.breaker_threshold,
            "breaker_reset": self.breaker_reset,
            "health_window": self.health_window,
            "degraded_threshold": self.degraded_threshold,
            "unhealthy_threshold": self.unhealthy_threshold,
            "stale_when_degraded": self.stale_when_degraded,
            "vm_enabled": self.vm_enabled,
            "shards": self.shards,
            "backend_nodes": self.backend_nodes,
            "backend_groups": self.backend_groups,
            "backend_replicas": self.backend_replicas,
            "backend_mode": self.backend_mode,
            "backend_hedge_quantile": self.backend_hedge_quantile,
            "backend_hedge_min_seconds": self.backend_hedge_min_seconds,
            "backend_hedge_budget": self.backend_hedge_budget,
            "backend_respawn_delay": self.backend_respawn_delay,
            "replication_enabled": self.replication_enabled,
            "replication_interval": self.replication_interval,
            "replication_lag_limit": self.replication_lag_limit,
            "ingest_enabled": self.ingest_enabled,
            "ingest_dir": self.ingest_dir,
            "ingest_fsync": self.ingest_fsync,
            "ingest_keep_generations": self.ingest_keep_generations,
            "compaction_enabled": self.compaction_enabled,
            "compaction_interval": self.compaction_interval,
            "compaction_min_segments": self.compaction_min_segments,
            "compaction_small_docs": self.compaction_small_docs,
            "trace_sample_rate": self.trace_sample_rate,
            "trace_store_capacity": self.trace_store_capacity,
            "trace_tail_capacity": self.trace_tail_capacity,
            "trace_slow_seconds": self.trace_slow_seconds,
            "slo_availability_objective": self.slo_availability_objective,
            "slo_latency_objective": self.slo_latency_objective,
            "slo_latency_threshold": self.slo_latency_threshold,
            "slo_fast_window": self.slo_fast_window,
            "slo_slow_window": self.slo_slow_window,
            "slo_burn_threshold": self.slo_burn_threshold,
            "slo_min_samples": self.slo_min_samples,
            "slo_shed_on_fast_burn": self.slo_shed_on_fast_burn,
        }
