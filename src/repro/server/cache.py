"""A thread-safe LRU cache for query results.

The region algebra is side-effect-free and set-at-a-time (Definition
2.2/2.3): a query's result is a pure function of (corpus contents,
normalized plan).  That makes results safely cacheable as long as the
key captures *which version* of the corpus answered — hence the
``generation`` component, bumped by the service whenever a corpus is
reloaded, plus eager invalidation so stale entries do not pin memory
until they age out.

Values are whatever the service stores (immutable ``RegionSet`` results
and their metadata); the cache itself never copies them, which is safe
because region sets are immutable by construction.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable

__all__ = ["ResultCache", "CacheStats"]


class CacheStats:
    """Plain counters mirrored into the metrics registry by the service."""

    __slots__ = ("hits", "misses", "evictions", "invalidations")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def to_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }


class ResultCache:
    """Bounded LRU mapping of hashable keys to cached results.

    All operations take the cache lock; the critical sections are a few
    dict operations, so contention stays negligible next to query
    evaluation.  A ``get`` refreshes recency; inserting past capacity
    evicts the least recently used entry.
    """

    def __init__(self, capacity: int = 512):
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.stats = CacheStats()

    def get(self, key: Hashable) -> Any | None:
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = value
                return
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def get_where(self, predicate) -> tuple[Hashable, Any] | None:
        """The most recently used ``(key, value)`` whose key satisfies
        ``predicate`` — without refreshing recency or touching stats.

        The degraded-mode stale lookup: the service scans for an entry
        matching (corpus, plan, optimize) at *any* generation when the
        current generation misses.  O(entries) under the lock, used only
        while degraded.
        """
        with self._lock:
            for key in reversed(self._entries):
                if predicate(key):
                    return key, self._entries[key]
            return None

    def invalidate(self, prefix: tuple) -> int:
        """Drop every entry whose (tuple) key starts with ``prefix``.

        The service keys entries as ``(corpus, generation, …)``, so
        ``invalidate((corpus,))`` clears a corpus across generations and
        ``invalidate((corpus, generation))`` clears one generation.
        Returns the number of entries dropped.
        """
        with self._lock:
            doomed = [
                key
                for key in self._entries
                if isinstance(key, tuple) and key[: len(prefix)] == prefix
            ]
            for key in doomed:
                del self._entries[key]
            self.stats.invalidations += len(doomed)
            return len(doomed)

    def invalidate_generations_below(self, corpus: str, floor: int) -> int:
        """Drop every entry of ``corpus`` whose generation is below
        ``floor``, keeping newer generations intact.

        The live-ingestion commit path: a reload invalidates the whole
        corpus eagerly (``invalidate((corpus,))``), but an ingest commit
        only retires generations that have aged out of the configured
        keep-window — entries from recent older generations stay
        resident so degraded mode can still serve them stale.  Returns
        the number of entries dropped.
        """
        with self._lock:
            doomed = [
                key
                for key in self._entries
                if isinstance(key, tuple)
                and len(key) >= 2
                and key[0] == corpus
                and isinstance(key[1], int)
                and key[1] < floor
            ]
            for key in doomed:
                del self._entries[key]
            self.stats.invalidations += len(doomed)
            return len(doomed)

    def clear(self) -> int:
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self.stats.invalidations += dropped
            return dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {
                "capacity": self.capacity,
                "entries": len(self._entries),
                **self.stats.to_dict(),
            }
