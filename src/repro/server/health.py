"""The service's healthy / degraded / unhealthy state machine.

:class:`HealthMonitor` watches the *worker-path* outcome of every query
— success, timeout, injected fault, worker crash — over a sliding time
window and classifies the service:

* **healthy** — error rate below ``degraded_threshold``;
* **degraded** — error rate above it, or external pressure (an open
  corpus circuit breaker).  The service keeps answering but turns on
  its degraded behaviours: serve stale cache entries, skip the
  optimizer pass;
* **unhealthy** — error rate above ``unhealthy_threshold``.  The
  service sheds load (``503`` + ``Retry-After``) except for a trickle
  of probe requests, so it can observe recovery without being buried.

Only worker-path failures count: client mistakes (parse errors, unknown
corpora), admission rejections, and the sheds the monitor itself causes
are excluded — otherwise shedding would keep the error rate high and
the service could never climb back out (the classic health-check death
spiral).

Deliberately dependency-free and clock-injectable; the service mirrors
state into ``server_health_state`` / ``server_health_transitions_total``
and keeps the transition history that the chaos harness asserts on
(healthy → degraded → healthy across a fault burst).
"""

from __future__ import annotations

import threading
from collections import deque
from time import monotonic
from typing import Any, Callable

__all__ = ["HealthMonitor", "HEALTHY", "DEGRADED", "UNHEALTHY"]

HEALTHY = "healthy"
DEGRADED = "degraded"
UNHEALTHY = "unhealthy"

#: Gauge encoding for ``server_health_state``.
STATE_VALUES = {HEALTHY: 0, DEGRADED: 1, UNHEALTHY: 2}


class HealthMonitor:
    """Sliding-window error-rate classifier (see module docstring).

    ``min_samples`` outcomes must be in the window before the monitor
    will leave ``healthy`` — a single early failure is not an outage.
    When unhealthy, :meth:`should_shed` lets every ``probe_interval``-th
    request through as a probe.
    """

    def __init__(
        self,
        window_seconds: float = 10.0,
        degraded_threshold: float = 0.10,
        unhealthy_threshold: float = 0.50,
        min_samples: int = 10,
        probe_interval: int = 10,
        clock: Callable[[], float] = monotonic,
        on_transition: Callable[[str, str], None] | None = None,
    ):
        if not (0.0 < degraded_threshold <= unhealthy_threshold <= 1.0):
            raise ValueError(
                "thresholds must satisfy 0 < degraded <= unhealthy <= 1"
            )
        if window_seconds <= 0:
            raise ValueError("window must be positive seconds")
        self.window_seconds = window_seconds
        self.degraded_threshold = degraded_threshold
        self.unhealthy_threshold = unhealthy_threshold
        self.min_samples = max(1, min_samples)
        self.probe_interval = max(2, probe_interval)
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        #: (timestamp, failed) per worker-path outcome, oldest first.
        self._outcomes: deque[tuple[float, bool]] = deque()
        self._state = HEALTHY
        #: active pressure sources -> the state they force (at minimum).
        self._pressure: dict[str, str] = {}
        self._requests_seen = 0
        self._transitions: list[tuple[float, str, str]] = []

    # ------------------------------------------------------------------

    def record_success(self) -> None:
        self._record(False)

    def record_failure(self) -> None:
        self._record(True)

    def _record(self, failed: bool) -> None:
        with self._lock:
            self._outcomes.append((self._clock(), failed))
            self._reclassify()

    def set_pressure(
        self, source: str, active: bool, severity: str = DEGRADED
    ) -> None:
        """External degradation pressure — e.g. ``breaker:<corpus>``
        while that corpus's circuit breaker is open, or ``slo:<name>``
        while an SLO fast-burn alert fires.  Any active source forces
        the state to at least its ``severity`` (``DEGRADED`` by
        default; ``UNHEALTHY`` additionally sheds load)."""
        if severity not in (DEGRADED, UNHEALTHY):
            raise ValueError(f"pressure severity must be degraded/unhealthy, got {severity!r}")
        with self._lock:
            if active:
                self._pressure[source] = severity
            else:
                self._pressure.pop(source, None)
            self._reclassify()

    # ------------------------------------------------------------------

    def _expire(self, now: float) -> None:
        horizon = now - self.window_seconds
        while self._outcomes and self._outcomes[0][0] < horizon:
            self._outcomes.popleft()

    def _error_rate(self, now: float) -> tuple[float, int]:
        self._expire(now)
        total = len(self._outcomes)
        if total == 0:
            return 0.0, 0
        failures = sum(1 for _, failed in self._outcomes if failed)
        return failures / total, total

    def _reclassify(self) -> None:
        now = self._clock()
        rate, samples = self._error_rate(now)
        forced = UNHEALTHY if UNHEALTHY in self._pressure.values() else None
        if forced == UNHEALTHY or (
            samples >= self.min_samples and rate >= self.unhealthy_threshold
        ):
            new = UNHEALTHY
        elif (
            samples >= self.min_samples and rate >= self.degraded_threshold
        ) or self._pressure:
            new = DEGRADED
        else:
            new = HEALTHY
        if new != self._state:
            old, self._state = self._state, new
            self._transitions.append((now, old, new))
            if self._on_transition is not None:
                self._on_transition(old, new)

    # ------------------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            self._reclassify()  # time passing alone can heal the window
            return self._state

    def should_shed(self) -> bool:
        """Called once per incoming query.  ``True`` = reject with 503.

        Only sheds while unhealthy, and even then lets every
        ``probe_interval``-th request through so recovery is observable.
        """
        with self._lock:
            self._reclassify()
            if self._state != UNHEALTHY:
                return False
            self._requests_seen += 1
            return self._requests_seen % self.probe_interval != 0

    def transitions(self) -> list[tuple[float, str, str]]:
        """(timestamp, old, new) history, oldest first."""
        with self._lock:
            return list(self._transitions)

    def states_seen(self) -> list[str]:
        """The sequence of states the monitor has been in, in order."""
        with self._lock:
            return [HEALTHY] + [new for _, _, new in self._transitions]

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            self._reclassify()
            now = self._clock()
            rate, samples = self._error_rate(now)
            return {
                "state": self._state,
                "error_rate": round(rate, 4),
                "window_samples": samples,
                "window_seconds": self.window_seconds,
                "pressure": sorted(self._pressure),
                "transitions": len(self._transitions),
            }
