"""The concurrent query service: corpora + worker pool + result cache.

:class:`QueryService` is the transport-independent core of the serving
layer (the HTTP front end in :mod:`repro.server.http` is a thin JSON
adapter over it, and the benchmarks drive it in-process).  One service
owns:

* a set of named **corpus handles**, each wrapping an
  :class:`~repro.engine.Engine` plus a monotonically increasing
  *generation* counter bumped on every reload;
* a :class:`~repro.server.pool.WorkerPool` providing bounded admission
  (reject-early under overload) and the threads queries evaluate on;
* a :class:`~repro.server.cache.ResultCache` keyed by
  ``(corpus, generation, normalized plan, optimize flag)`` — reloading a
  corpus bumps the generation and eagerly invalidates its entries;
* one shared :class:`~repro.obs.Telemetry` bundle all engines record
  into, extended with the ``server_*`` metrics, so ``/metrics`` is a
  single registry snapshot.

Every query request carries a deadline.  The clock starts at admission:
time spent waiting in the queue counts against the budget, and the
remaining budget is handed to the evaluator's cooperative
deadline/cancellation check — a queued request whose client has already
given up aborts on pickup instead of burning a worker.

Resilience (``docs/robustness.md``): corpus (re)loads run under a
bounded-backoff retry and a per-corpus circuit breaker; a persistently
corrupt index file is quarantined and the engine rebuilt from source
text when the spec names one; a job whose worker died is re-dispatched;
a :class:`~repro.server.health.HealthMonitor` classifies the service
healthy/degraded/unhealthy from worker-path outcomes — while degraded
the optimizer pass is skipped and cache misses may be answered by a
stale entry from an older generation, and while unhealthy load is shed
with ``503`` except for a trickle of probes.
"""

from __future__ import annotations

import tempfile
import threading
from pathlib import Path
from time import monotonic, perf_counter
from typing import Any

from repro.algebra.parser import parse as _parse_query
from repro.backend.base import SliceProvider, evaluate_slice, slice_checksum
from repro.backend.frontier import BackendNode, FrontierExecutor
from repro.engine.session import Engine
from repro.errors import (
    BackendUnavailableError,
    BackendUnsupportedError,
    CorpusUnavailableError,
    CorruptIndexError,
    FaultInjected,
    IngestDisabledError,
    IngestError,
    IngestUnreplicatedError,
    QueryTimeout,
    ReplicaLaggingError,
    ReproError,
    ServerOverloadedError,
    ServiceUnhealthyError,
    StorageError,
    UnknownRegionNameError,
    WorkerCrashedError,
)
from repro.faults import registry as _faults
from repro.faults.retry import CircuitBreaker, RetryPolicy, retry_call
from repro.obs import Telemetry
from repro.obs import context as _trace_context
from repro.obs.sampling import HeadSampler, TraceStore
from repro.obs.slo import SLOObservatory
from repro.obs.trace import maybe_span, span_to_dict
from repro.ingest import (
    BackgroundCompactor,
    LiveCorpus,
    WriteAheadLog,
    wal_checksum,
)
from repro.obs.metrics import (
    BREAKER_STATE,
    BREAKER_TRANSITIONS_TOTAL,
    COMPACTION_MERGED_SEGMENTS_TOTAL,
    COMPACTION_RUNS_TOTAL,
    COMPACTION_SECONDS,
    FRONTIER_FALLBACK_TOTAL,
    INDEX_REBUILDS_TOTAL,
    INGEST_BATCHES_TOTAL,
    INGEST_COMMIT_SECONDS,
    INGEST_DOCUMENTS,
    INGEST_OPS_TOTAL,
    INGEST_SEGMENTS,
    INGEST_TOMBSTONES,
    POOL_WORKER_DEATHS_TOTAL,
    REPLICATION_LAGGING_READS_TOTAL,
    RETRY_ATTEMPTS_TOTAL,
    RETRY_EXHAUSTED_TOTAL,
    SERVER_CACHE_EVICTIONS_TOTAL,
    SERVER_CACHE_HITS_TOTAL,
    SERVER_CACHE_MISSES_TOTAL,
    SERVER_HEALTH_STATE,
    SERVER_HEALTH_TRANSITIONS_TOTAL,
    SERVER_INFLIGHT,
    SERVER_QUEUE_DEPTH,
    SERVER_REJECTED_TOTAL,
    SERVER_REQUEST_SECONDS,
    SERVER_REQUESTS_TOTAL,
    SERVER_SHED_TOTAL,
    SERVER_STALE_SERVED_TOTAL,
    SERVER_TIMEOUTS_TOTAL,
)
from repro.server.cache import ResultCache
from repro.server.config import CorpusSpec, ServerConfig
from repro.server.health import DEGRADED, HEALTHY, UNHEALTHY, HealthMonitor
from repro.server.health import STATE_VALUES as _HEALTH_VALUES
from repro.server.pool import WorkerPool

__all__ = ["QueryService", "UnknownCorpusError"]


class UnknownCorpusError(ReproError):
    """A request named a corpus the service does not serve."""

    code = "unknown_corpus"

    def __init__(self, name: str, known: tuple[str, ...]):
        self.name = name
        self.known = known
        hint = f"; serving: {', '.join(sorted(known))}" if known else ""
        super().__init__(f"unknown corpus {name!r}{hint}")


def _build_engine(
    spec: CorpusSpec,
    telemetry: Telemetry,
    shards: int | None = None,
    vm: bool = True,
) -> Engine:
    """Load one corpus per its spec, sharing the service telemetry."""
    from pathlib import Path

    _faults.fire("index.build")
    if spec.kind == "synthetic":
        text = _synthesize(spec)
        if spec.path == "source":
            document_engine = Engine.from_source(text)
        else:
            document_engine = Engine.from_tagged_text(text)
        # Rebuild on the shared telemetry (constructors make their own).
        engine = Engine(
            document_engine.instance,
            text=text,
            rig=document_engine.rig,
            telemetry=telemetry,
            shards=shards,
            vm=vm,
        )
        return engine
    text = None
    if spec.kind == "index":
        from repro.engine.storage import load_instance

        instance = load_instance(spec.path)
        rig = None
    elif spec.kind == "tagged":
        from repro.engine.tagged import parse_tagged_text

        text = Path(spec.path).read_text(encoding="utf-8")
        document = parse_tagged_text(text)
        instance, text = document.instance, document.text
        rig = None
    else:  # "source"
        from repro.engine.sourcecode import parse_source
        from repro.rig.graph import figure_1_rig

        text = Path(spec.path).read_text(encoding="utf-8")
        document = parse_source(text)
        instance, text = document.instance, document.text
        rig = figure_1_rig()
    return Engine(
        instance, text=text, rig=rig, telemetry=telemetry, shards=shards, vm=vm
    )


def _rebuild_engine(
    spec: CorpusSpec,
    telemetry: Telemetry,
    shards: int | None = None,
    vm: bool = True,
) -> Engine:
    """Rebuild an ``index`` corpus from its source document and try to
    re-save the index file (best-effort) — the corruption-recovery path."""
    from pathlib import Path

    from repro.engine.storage import save_instance

    text = Path(spec.source).read_text(encoding="utf-8")
    if spec.source_format == "source":
        from repro.engine.sourcecode import parse_source
        from repro.rig.graph import figure_1_rig

        document = parse_source(text)
        rig = figure_1_rig()
    else:
        from repro.engine.tagged import parse_tagged_text

        document = parse_tagged_text(text)
        rig = None
    engine = Engine(
        document.instance,
        text=document.text,
        rig=rig,
        telemetry=telemetry,
        shards=shards,
        vm=vm,
    )
    try:
        save_instance(engine.instance, spec.path)
    except (ReproError, OSError):
        pass  # serving from memory is fine; the next save may succeed
    return engine


def _synthesize(spec: CorpusSpec) -> str:
    import random

    from repro.workloads.corpora import (
        generate_dictionary,
        generate_play,
        generate_report,
    )

    rng = random.Random(spec.seed)
    scale = max(1, spec.scale)
    if spec.path == "play":
        return generate_play(
            rng,
            acts=scale,
            scenes_per_act=scale,
            speeches_per_scene=2 * scale,
            lines_per_speech=3,
        )
    if spec.path == "dictionary":
        return generate_dictionary(rng, entries=5 * scale)
    if spec.path == "report":
        return generate_report(rng, sections=scale, max_depth=3)
    from repro.engine.sourcecode import generate_program_source

    return generate_program_source(rng, procedures=10 * scale)


class _CorpusHandle:
    """One served corpus: engine + generation + reload lock + breaker.

    The engine and its generation are published together as one tuple
    so a reader can capture a consistent ``(engine, generation)`` pair
    with a single attribute load — two separate reads could interleave
    with :meth:`install` and pair a new engine with an old generation
    (or vice versa), which breaks generation-keyed caching.
    """

    __slots__ = ("spec", "_published", "loaded_at", "lock", "breaker")

    def __init__(self, spec: CorpusSpec, engine: Engine, breaker: CircuitBreaker):
        self.spec = spec
        self._published: tuple[Engine, int] = (engine, 1)
        self.loaded_at = monotonic()
        self.lock = threading.Lock()  # serializes reloads, not queries
        self.breaker = breaker
        self._warm(engine)

    @property
    def engine(self) -> Engine:
        return self._published[0]

    @property
    def generation(self) -> int:
        return self._published[1]

    def snapshot(self) -> tuple[Engine, int]:
        """The atomically consistent ``(engine, generation)`` pair."""
        return self._published

    @staticmethod
    def _warm(engine: Engine) -> None:
        # Build the lazily-cached forest up front so concurrent first
        # queries don't race on its construction.
        engine.instance.forest()

    def install(self, engine: Engine, generation: int | None = None) -> int:
        """Swap in a freshly loaded engine; returns the new generation.

        Queries already running keep the old engine (their reference
        keeps it alive); new requests see the new generation atomically.

        ``generation`` forces the published generation instead of
        bumping — the replication apply path, where the number is the
        *frontier's* and must match exactly so generation-floor reads
        compare like with like across the topology.
        """
        with self.lock:
            self._warm(engine)
            if generation is None:
                generation = self._published[1] + 1
            self._published = (engine, int(generation))
            self.loaded_at = monotonic()
            return int(generation)

    def info(self) -> dict[str, Any]:
        stats = self.engine.statistics()
        info = {
            **self.spec.to_dict(),
            "generation": self.generation,
            "regions": stats["total"],
            "region_names": sorted(stats["regions"]),
            "nesting_depth": stats["nesting_depth"],
            "breaker": self.breaker.snapshot(),
        }
        if "shards" in stats:
            info["shards"] = stats["shards"]
        return info


class _IngestState:
    """The write path of one ingest-enabled corpus.

    ``lock`` serializes writers (batch commits, compaction, reload
    rebasing) — readers never take it; they see engine swaps through
    :meth:`_CorpusHandle.install` exactly as reloads do, which is what
    makes reads snapshot-isolated against concurrent writes.
    """

    __slots__ = (
        "live",
        "wal",
        "lock",
        "rig",
        "batches",
        "replayed_batches",
        "compactions",
    )

    def __init__(
        self,
        live: LiveCorpus,
        wal: WriteAheadLog,
        rig: Any = None,
        replayed_batches: int = 0,
    ):
        self.live = live
        self.wal = wal
        self.lock = threading.Lock()
        self.rig = rig
        self.batches = 0
        self.replayed_batches = replayed_batches
        self.compactions = 0

    def info(self) -> dict[str, Any]:
        return {
            "documents": self.live.document_count,
            "segments": self.live.segment_count,
            "tombstones": self.live.tombstone_count,
            "batches": self.batches,
            "replayed_batches": self.replayed_batches,
            "compactions": self.compactions,
            "wal_bytes": self.wal.size_bytes(),
            "next_batch_seq": self.wal.next_seq,
        }


class _ReplicaState:
    """The replica side of WAL log shipping, on a backend node.

    A backend process holds no WAL of its own — the frontier's WAL *is*
    the durability story — so a replica is just a
    :class:`~repro.ingest.live.LiveCorpus` overlay rebased on the base
    engine this process loaded at spawn.  The base is captured at the
    first replicate call, before any shipped batch replaces the served
    engine, so a snapshot catch-up can always rebuild from scratch.

    ``lock`` serializes applies and snapshot replacements; reads never
    take it (they go through the handle's atomic publish, exactly like
    frontier-side ingest commits).
    """

    __slots__ = ("base_instance", "base_text", "rig", "live", "lock")

    def __init__(self, base_instance: Any, base_text: str, rig: Any):
        self.base_instance = base_instance
        self.base_text = base_text
        self.rig = rig
        self.live = LiveCorpus(base_instance, base_text)
        self.lock = threading.Lock()


#: Load failures worth retrying: transient I/O, injected faults, and
#: corruption (a *transient* injected corruption clears on re-read; a
#: persistent one exhausts the retries and reaches the rebuild path).
_RETRYABLE_LOAD = (StorageError, FaultInjected, OSError)


class QueryService:
    """See the module docstring.  Construct, then :meth:`execute`."""

    def __init__(self, config: ServerConfig | None = None):
        self.config = config if config is not None else ServerConfig()
        self.telemetry = Telemetry(
            query_log_capacity=self.config.query_log_capacity
        )
        if self.config.tracing:
            self.telemetry.enable_tracing()
        metrics = self.telemetry.metrics
        self._requests = metrics.counter(
            SERVER_REQUESTS_TOTAL, help="requests by endpoint and status"
        )
        self._request_seconds = metrics.histogram(
            SERVER_REQUEST_SECONDS, help="request wall time by endpoint"
        )
        self._queue_gauge = metrics.gauge(
            SERVER_QUEUE_DEPTH, help="requests waiting for a worker"
        )
        self._inflight_gauge = metrics.gauge(
            SERVER_INFLIGHT, help="requests currently evaluating"
        )
        self._cache_hits = metrics.counter(SERVER_CACHE_HITS_TOTAL)
        self._cache_misses = metrics.counter(SERVER_CACHE_MISSES_TOTAL)
        self._cache_evictions = metrics.counter(SERVER_CACHE_EVICTIONS_TOTAL)
        self._rejected = metrics.counter(
            SERVER_REJECTED_TOTAL, help="admission rejections by reason"
        )
        self._timeouts = metrics.counter(SERVER_TIMEOUTS_TOTAL)
        self._shed = metrics.counter(
            SERVER_SHED_TOTAL, help="requests shed while unhealthy"
        )
        self._stale_served = metrics.counter(
            SERVER_STALE_SERVED_TOTAL,
            help="cache misses answered by an older generation",
        )
        self._retry_attempts = metrics.counter(
            RETRY_ATTEMPTS_TOTAL, help="retries by operation"
        )
        self._retry_exhausted = metrics.counter(
            RETRY_EXHAUSTED_TOTAL, help="retry budgets exhausted by operation"
        )
        self._breaker_state = metrics.gauge(
            BREAKER_STATE, help="0 closed, 1 half-open, 2 open"
        )
        self._breaker_transitions = metrics.counter(BREAKER_TRANSITIONS_TOTAL)
        self._health_state = metrics.gauge(
            SERVER_HEALTH_STATE, help="0 healthy, 1 degraded, 2 unhealthy"
        )
        self._health_transitions = metrics.counter(
            SERVER_HEALTH_TRANSITIONS_TOTAL
        )
        self._rebuilds = metrics.counter(
            INDEX_REBUILDS_TOTAL, help="indexes rebuilt from source text"
        )
        self._worker_deaths = metrics.counter(POOL_WORKER_DEATHS_TOTAL)
        self.health = HealthMonitor(
            window_seconds=self.config.health_window,
            degraded_threshold=self.config.degraded_threshold,
            unhealthy_threshold=self.config.unhealthy_threshold,
            min_samples=self.config.health_min_samples,
            probe_interval=self.config.probe_interval,
            on_transition=self._on_health_transition,
        )
        self._health_state.set(0)
        self._retry_policy = RetryPolicy(
            attempts=self.config.retry_attempts,
            base_delay=self.config.retry_base_delay,
            max_delay=self.config.retry_max_delay,
            budget=5.0,
        )
        self.cache = ResultCache(self.config.cache_capacity)
        self.pool = WorkerPool(
            workers=self.config.workers,
            queue_depth=self.config.queue_depth,
            on_depth_change=self._queue_gauge.set,
            on_worker_death=self._worker_deaths.inc,
        )
        # SLO observatory: always on (it only reads request outcomes);
        # a fast burn becomes health pressure, which degrades — or, if
        # configured, sheds — before the error budget is gone.
        self.slo = SLOObservatory.from_config(
            self.config, metrics=metrics, on_burn_change=self._on_burn_change
        )
        # Trace retention only exists when tracing is on; `None` is the
        # request path's single cheap "is tracing off?" check.
        self.traces: TraceStore | None = None
        self._sampler = HeadSampler(self.config.trace_sample_rate)
        if self.config.tracing:
            self.traces = TraceStore(
                capacity=self.config.trace_store_capacity,
                tail_capacity=self.config.trace_tail_capacity,
                slow_threshold=self.config.trace_slow_seconds,
                metrics=metrics,
            )
        # Live ingestion (docs/internals.md, "Segments, generations, and
        # the WAL"): per-corpus write state, plus the WAL directory — a
        # private temporary one when the config names none.
        self._ingest_ops = metrics.counter(
            INGEST_OPS_TOTAL, help="ingest operations applied, by kind"
        )
        self._ingest_batches = metrics.counter(
            INGEST_BATCHES_TOTAL, help="ingest batches by outcome"
        )
        self._ingest_commit_seconds = metrics.histogram(
            INGEST_COMMIT_SECONDS, help="ingest batch commit wall time"
        )
        self._ingest_documents = metrics.gauge(
            INGEST_DOCUMENTS, help="live ingested documents per corpus"
        )
        self._ingest_segments = metrics.gauge(
            INGEST_SEGMENTS, help="segments per corpus"
        )
        self._ingest_tombstones = metrics.gauge(
            INGEST_TOMBSTONES, help="tombstoned documents per corpus"
        )
        self._compaction_runs = metrics.counter(
            COMPACTION_RUNS_TOTAL, help="compactions that merged segments"
        )
        self._compaction_merged = metrics.counter(
            COMPACTION_MERGED_SEGMENTS_TOTAL, help="segments merged away"
        )
        self._compaction_seconds = metrics.histogram(
            COMPACTION_SECONDS, help="compaction wall time"
        )
        self._ingest: dict[str, _IngestState] = {}
        self._ingest_tmpdir: tempfile.TemporaryDirectory | None = None
        self._ingest_dir: Path | None = None
        if self.config.ingest_enabled:
            if self.config.ingest_dir is not None:
                self._ingest_dir = Path(self.config.ingest_dir)
            else:
                self._ingest_tmpdir = tempfile.TemporaryDirectory(
                    prefix="repro-ingest-"
                )
                self._ingest_dir = Path(self._ingest_tmpdir.name)
        self.compactor: BackgroundCompactor | None = None
        self._corpora: dict[str, _CorpusHandle] = {}
        self._corpora_lock = threading.Lock()
        self._started_at = monotonic()
        self._evictions_seen = 0
        self._closed = False
        for spec in self.config.corpora:
            self.add_corpus(spec)
        if self.config.ingest_enabled and self.config.compaction_enabled:
            self.compactor = BackgroundCompactor(
                self._compaction_candidates,
                self.compact,
                interval=self.config.compaction_interval,
                health=self.health,
            )
            self.compactor.start()
        # Backend topology (docs/server.md, "Topology & failover").  The
        # slice provider exists regardless: it also answers the
        # ``/shard/query`` endpoint when *this* process is someone
        # else's backend.
        self._slice_provider = SliceProvider(
            self._slice_lookup,
            tracer=self.telemetry.tracer,
            vm=self.config.vm_enabled,
        )
        self._frontier_fallback = metrics.counter(
            FRONTIER_FALLBACK_TOTAL,
            help="frontier queries answered by local evaluation, by reason",
        )
        self._replication_lagging_reads = metrics.counter(
            REPLICATION_LAGGING_READS_TOTAL,
            help="shard reads refused for being behind the generation floor",
        )
        # Replica-side state for WAL log shipping: populated lazily on
        # the first replicate RPC when *this* process is a backend.
        self._replicas: dict[str, _ReplicaState] = {}
        self._replicas_lock = threading.Lock()
        self.frontier: FrontierExecutor | None = None
        self.supervisor = None
        self.replication = None
        if self.config.backend_nodes > 0:
            self._start_frontier()

    # ------------------------------------------------------------------
    # Health / breaker plumbing.
    # ------------------------------------------------------------------

    def _on_health_transition(self, old: str, new: str) -> None:
        self._health_state.set(_HEALTH_VALUES[new])
        self._health_transitions.inc(**{"from": old, "to": new})

    def _on_burn_change(self, name: str, active: bool) -> None:
        severity = (
            UNHEALTHY if self.config.slo_shed_on_fast_burn else DEGRADED
        )
        self.health.set_pressure(f"slo:{name}", active, severity=severity)

    def _make_breaker(self, corpus: str) -> CircuitBreaker:
        def on_transition(old: str, new: str) -> None:
            self._breaker_state.set(
                CircuitBreaker.STATE_VALUES[new], corpus=corpus
            )
            self._breaker_transitions.inc(
                corpus=corpus, **{"from": old, "to": new}
            )
            # An open breaker is external pressure: the service is at
            # least degraded while a corpus cannot be reloaded.
            self.health.set_pressure(
                f"breaker:{corpus}", new != CircuitBreaker.CLOSED
            )

        return CircuitBreaker(
            failure_threshold=self.config.breaker_threshold,
            reset_timeout=self.config.breaker_reset,
            on_transition=on_transition,
        )

    def _make_backend_breaker(self, node_id: str) -> CircuitBreaker:
        def on_transition(old: str, new: str) -> None:
            self._breaker_state.set(
                CircuitBreaker.STATE_VALUES[new], node=node_id
            )
            self._breaker_transitions.inc(
                node=node_id, **{"from": old, "to": new}
            )
            # A dead backend is degradation pressure while its replicas
            # carry the load — never unhealthy, since queries still work.
            self.health.set_pressure(
                f"backend:{node_id}", new != CircuitBreaker.CLOSED
            )

        return CircuitBreaker(
            failure_threshold=self.config.breaker_threshold,
            reset_timeout=self.config.breaker_reset,
            on_transition=on_transition,
        )

    # ------------------------------------------------------------------
    # Backend topology.
    # ------------------------------------------------------------------

    def _slice_lookup(self, corpus: str):
        engine, generation = self._handle(corpus).snapshot()
        return engine.instance, generation

    def _start_frontier(self) -> None:
        config = self.config
        tracer = self.telemetry.tracer
        if config.backend_mode == "http":
            from repro.backend.httpclient import HTTPBackend
            from repro.backend.supervisor import BackendSupervisor

            extra_args: list[str] = []
            if config.tracing:
                extra_args += [
                    "--trace",
                    "--trace-sample",
                    str(config.trace_sample_rate),
                ]
            if not config.vm_enabled:
                extra_args.append("--no-vm")
            self.supervisor = BackendSupervisor(
                corpora=config.corpora,
                count=config.backend_nodes,
                host=config.host,
                respawn_delay=config.backend_respawn_delay,
                extra_args=extra_args,
                metrics=self.telemetry.metrics,
            )
            backends = [
                HTTPBackend(node_id, host, port)
                for node_id, host, port in self.supervisor.start()
            ]
        else:
            from repro.backend.inprocess import InProcessBackend

            backends = [
                InProcessBackend(f"b{i}", self._slice_provider, tracer=tracer)
                for i in range(config.backend_nodes)
            ]
        nodes = [
            BackendNode(backend, self._make_backend_breaker(backend.node_id))
            for backend in backends
        ]
        self.frontier = FrontierExecutor(
            nodes,
            groups=config.backend_groups,
            replicas=config.backend_replicas,
            hedge_quantile=config.backend_hedge_quantile,
            hedge_min_seconds=config.backend_hedge_min_seconds,
            hedge_budget=config.backend_hedge_budget,
            metrics=self.telemetry.metrics,
            tracer=tracer,
        )
        # Log shipping only matters across processes: in-process
        # backends read this service's own corpus handles, so every
        # commit is visible the instant it is installed.
        if (
            config.backend_mode == "http"
            and config.replication_enabled
            and config.ingest_enabled
        ):
            from repro.backend.replication import ReplicationCoordinator

            self.replication = ReplicationCoordinator(
                self.frontier,
                corpora=lambda: tuple(self._ingest),
                state_provider=self._replication_state,
                checksum_provider=self._replication_checksums,
                generation_provider=lambda name: self._handle(name).generation,
                metrics=self.telemetry.metrics,
                tracer=tracer,
                health=self.health,
                interval=config.replication_interval,
                lag_limit=config.replication_lag_limit,
            )
            self.replication.start()

    def _replication_state(self, corpus: str) -> tuple[dict[str, Any], int]:
        """A consistent ``(LiveCorpus.state dump, generation)`` pair for
        snapshot catch-up — the writer lock makes them agree."""
        handle = self._handle(corpus)
        state = self._ingest.get(handle.spec.name)
        if state is None:
            return {"through_batch": 0, "docs": []}, handle.generation
        with state.lock:
            return (
                state.live.state(through_batch=state.wal.last_seq),
                handle.generation,
            )

    def _replication_checksums(self, corpus: str) -> tuple[int, dict[int, str]]:
        """The frontier's own per-group content checksums — the truth
        the anti-entropy sweep measures replicas against."""
        handle = self._handle(corpus)
        groups = self.config.backend_groups
        generation = handle.generation
        checksums: dict[int, str] = {}
        for group in range(groups):
            slice_ = self._slice_provider.slice_for(
                handle.spec.name, group, groups
            )
            generation = slice_.generation
            checksums[group] = slice_checksum(slice_)
        return generation, checksums

    def shard_query(
        self,
        corpus: str | None,
        group: int,
        groups: int,
        queries: list[str],
        want: str,
        bounds: dict[str, int | None],
        deadline: float | None = None,
        trace: dict[str, Any] | None = None,
        floor: int = 0,
    ) -> dict[str, Any]:
        """Answer one backend RPC against this process's slice of
        ``corpus`` — the service half of ``POST /shard/query``.

        Any ``repro serve`` process can play the backend role; slices
        are built lazily from the ``(group, groups)`` coordinates and
        cached per corpus generation.  When ``trace`` carries the
        frontier's :class:`~repro.obs.context.TraceContext`, the
        evaluation runs under it and the finished ``backend.query`` span
        subtree is returned for frontier-side adoption.  A non-zero
        ``floor`` is the frontier's generation floor: answering from an
        older generation would time-travel an acknowledged write, so a
        behind replica refuses with
        :class:`~repro.errors.ReplicaLaggingError` (a 503 on the wire)
        and lets the frontier fail over.
        """
        handle = self._handle(corpus)
        slice_ = self._slice_provider.slice_for(handle.spec.name, group, groups)
        if floor > 0 and slice_.generation < floor:
            self._replication_lagging_reads.inc(corpus=handle.spec.name)
            raise ReplicaLaggingError(handle.spec.name, slice_.generation, floor)
        tracer = self.telemetry.tracer
        token = None
        if trace is not None and tracer.enabled:
            token = _trace_context.activate(
                _trace_context.TraceContext.from_dict(trace)
            )
        try:
            span_dict = None
            if tracer.enabled:
                with tracer.span(
                    "backend.query",
                    corpus=handle.spec.name,
                    group=group,
                    groups=groups,
                ) as span:
                    payload, seconds = evaluate_slice(
                        slice_, queries, want, bounds, deadline=deadline
                    )
                if span is not None:
                    span_dict = span_to_dict(span)
            else:
                payload, seconds = evaluate_slice(
                    slice_, queries, want, bounds, deadline=deadline
                )
        finally:
            if token is not None:
                _trace_context.restore(token)
        return {
            "payload": payload,
            "generation": slice_.generation,
            "seconds": seconds,
            "node": f"{self.config.host}:{self.config.port}",
            "span": span_dict,
        }

    # ------------------------------------------------------------------
    # Replica-side replication RPCs (``POST /replicate/*``) — this
    # process playing backend to someone else's frontier.  See
    # :mod:`repro.backend.replication` for the shipping side.
    # ------------------------------------------------------------------

    def _replica_state(self, handle: _CorpusHandle) -> _ReplicaState:
        with self._replicas_lock:
            replica = self._replicas.get(handle.spec.name)
            if replica is None:
                engine = handle.engine
                replica = _ReplicaState(engine.instance, engine.text, engine.rig)
                self._replicas[handle.spec.name] = replica
            return replica

    def _replica_install(
        self, handle: _CorpusHandle, replica: _ReplicaState, generation: int
    ) -> int:
        engine = Engine(
            replica.live.instance,
            rig=replica.rig,
            telemetry=self.telemetry,
            shards=self._shards_for(handle.spec),
            vm=self.config.vm_enabled,
        )
        return handle.install(engine, generation=generation)

    def replicate_apply(
        self,
        corpus: str | None,
        seq: int,
        ops: list[dict[str, Any]],
        generation: int,
        checksum: str,
    ) -> dict[str, Any]:
        """Apply one shipped WAL batch, publishing exactly the
        frontier's ``generation``.

        The checksum is recomputed over the reassembled record — the
        same canonical-JSON sha256 the WAL uses on disk — so a payload
        corrupted in flight is rejected, never applied.  Statuses per
        :meth:`~repro.backend.base.ShardBackend.replicate_apply`.
        """
        handle = self._handle(corpus)
        name = handle.spec.name
        generation = int(generation)
        record = {
            "corpus": name,
            "seq": int(seq),
            "generation": generation,
            "ops": [dict(op) for op in ops],
        }
        replica = self._replica_state(handle)
        with replica.lock:
            current = handle.generation
            if wal_checksum(record) != str(checksum):
                return {
                    "corpus": name,
                    "applied": current,
                    "status": "checksum_mismatch",
                }
            if current >= generation:
                return {"corpus": name, "applied": current, "status": "stale"}
            if current != generation - 1:
                return {
                    "corpus": name,
                    "applied": current,
                    "status": "out_of_order",
                }
            try:
                replica.live.apply(record["ops"])
            except IngestError:
                # The frontier validated this batch before committing it,
                # so a rejection here means the replica's state drifted;
                # report it and let the sweep snapshot-repair.
                return {
                    "corpus": name,
                    "applied": current,
                    "status": "out_of_order",
                }
            applied = self._replica_install(handle, replica, generation)
        return {"corpus": name, "applied": applied, "status": "applied"}

    def replicate_snapshot(
        self, corpus: str | None, state: dict[str, Any], generation: int
    ) -> dict[str, Any]:
        """Replace this process's replica of ``corpus`` wholesale — the
        catch-up path when shipped history no longer covers the gap, and
        the anti-entropy repair.  The generation is forced to the
        frontier's even when it is not an increment (a divergence repair
        re-publishes the *same* generation with corrected content), so
        the slice and result caches are invalidated explicitly."""
        handle = self._handle(corpus)
        name = handle.spec.name
        replica = self._replica_state(handle)
        with replica.lock:
            replica.live = LiveCorpus.from_state(
                dict(state), replica.base_instance, replica.base_text
            )
            applied = self._replica_install(handle, replica, int(generation))
        self._slice_provider.invalidate(name)
        self.cache.invalidate((name,))
        return {"corpus": name, "applied": applied, "status": "applied"}

    def replicate_status(
        self, corpus: str | None, groups: int
    ) -> dict[str, Any]:
        """This process's replica position: applied generation plus one
        content checksum per shard group, for the anti-entropy sweep."""
        handle = self._handle(corpus)
        name = handle.spec.name
        groups = int(groups)
        applied = handle.generation
        checksums: dict[str, str] = {}
        for group in range(groups):
            slice_ = self._slice_provider.slice_for(name, group, groups)
            applied = slice_.generation
            checksums[str(group)] = slice_checksum(slice_)
        return {"corpus": name, "applied": applied, "checksums": checksums}

    def backends_info(self) -> dict[str, Any]:
        """Topology, breaker, and latency state (``GET /backends``)."""
        if self.frontier is None:
            return {"enabled": False}
        info: dict[str, Any] = {
            "enabled": True,
            "mode": self.config.backend_mode,
            **self.frontier.snapshot(),
            "placement": self.frontier.placement(self.corpus_names),
        }
        if self.supervisor is not None:
            info["processes"] = self.supervisor.describe()
        if self.replication is not None:
            info["replication"] = {
                "enabled": True,
                **self.replication.snapshot(),
            }
        else:
            info["replication"] = {"enabled": False}
        return info

    # ------------------------------------------------------------------
    # Corpus management.
    # ------------------------------------------------------------------

    def _shards_for(self, spec: CorpusSpec) -> int | None:
        """The effective shard count of a corpus: its own override, else
        the service default; ``None`` (plain evaluation) when it is 1."""
        shards = spec.shards if spec.shards is not None else self.config.shards
        return shards if shards > 1 else None

    def _load_engine(self, spec: CorpusSpec) -> Engine:
        """Build a corpus engine under retry; quarantine + rebuild from
        source when corruption survives the retries."""
        shards = self._shards_for(spec)

        def on_retry(_attempt: int, _delay: float, _exc: BaseException) -> None:
            self._retry_attempts.inc(op="load", corpus=spec.name)

        def on_exhausted(_exc: BaseException) -> None:
            self._retry_exhausted.inc(op="load", corpus=spec.name)

        try:
            return retry_call(
                lambda: _build_engine(
                    spec, self.telemetry, shards, vm=self.config.vm_enabled
                ),
                policy=self._retry_policy,
                retry_on=_RETRYABLE_LOAD,
                op=f"load:{spec.name}",
                on_retry=on_retry,
                on_exhausted=on_exhausted,
            )
        except CorruptIndexError:
            if spec.kind != "index" or not spec.source:
                raise
            from repro.engine.storage import quarantine_index

            quarantine_index(spec.path)
            engine = _rebuild_engine(
                spec, self.telemetry, shards, vm=self.config.vm_enabled
            )
            self._rebuilds.inc(corpus=spec.name)
            return engine

    def add_corpus(self, spec: CorpusSpec) -> None:
        with self._corpora_lock:
            if spec.name in self._corpora:
                raise ReproError(f"corpus {spec.name!r} is already served")
        engine = self._load_engine(spec)
        ingest_state = None
        if self.config.ingest_enabled:
            engine, ingest_state = self._recover_ingest(spec, engine)
        handle = _CorpusHandle(spec, engine, self._make_breaker(spec.name))
        with self._corpora_lock:
            if spec.name in self._corpora:
                raise ReproError(f"corpus {spec.name!r} is already served")
            self._corpora[spec.name] = handle
            if ingest_state is not None:
                self._ingest[spec.name] = ingest_state

    def _recover_ingest(
        self, spec: CorpusSpec, engine: Engine
    ) -> tuple[Engine, _IngestState | None]:
        """Attach the write path to a freshly loaded corpus: open its
        WAL, fold in the checkpoint snapshot, re-apply every committed
        batch past the watermark, and — when anything was recovered —
        rebuild the serving engine over the assembled instance.

        A corpus whose word index is not text-backed stays read-only
        (``None`` state; writes get :class:`IngestDisabledError`).
        """
        try:
            live = LiveCorpus(engine.instance, engine.text)
        except IngestError:
            return engine, None
        assert self._ingest_dir is not None
        wal = WriteAheadLog(
            self._ingest_dir,
            spec.name,
            fsync=self.config.ingest_fsync,
            metrics=self.telemetry.metrics,
        )
        snapshot = wal.load_snapshot()
        through = 0
        if snapshot is not None:
            live = LiveCorpus.from_state(snapshot, engine.instance, engine.text)
            through = int(snapshot["through_batch"])
        replayed = 0
        for _seq, ops in wal.replay(after=through):
            live.apply(ops)
            replayed += 1
        state = _IngestState(
            live, wal, rig=engine.rig, replayed_batches=replayed
        )
        if live.document_count or live.tombstone_count:
            engine = self._engine_from_live(spec, state)
        self._sync_ingest_gauges(spec.name, state)
        return engine, state

    def _engine_from_live(self, spec: CorpusSpec, state: _IngestState) -> Engine:
        """A serving engine over the current assembled instance."""
        return Engine(
            state.live.instance,
            rig=state.rig,
            telemetry=self.telemetry,
            shards=self._shards_for(spec),
            vm=self.config.vm_enabled,
        )

    def _ingest_state(self, name: str) -> _IngestState:
        state = self._ingest.get(name)
        if state is None:
            if not self.config.ingest_enabled:
                raise IngestDisabledError(
                    "ingestion is disabled; start the server with ingest "
                    "enabled to accept writes"
                )
            raise IngestDisabledError(
                f"corpus {name!r} does not accept writes "
                "(its word index is not text-backed)"
            )
        return state

    def _sync_ingest_gauges(self, name: str, state: _IngestState) -> None:
        self._ingest_documents.set(state.live.document_count, corpus=name)
        self._ingest_segments.set(state.live.segment_count, corpus=name)
        self._ingest_tombstones.set(state.live.tombstone_count, corpus=name)

    def ingest(
        self, corpus: str | None, ops: list[dict[str, Any]]
    ) -> dict[str, Any]:
        """Commit one mutation batch; the unit behind ``POST /ingest``.

        Order of operations is the durability contract: validate (bad
        batches are rejected before touching disk), WAL-append (fsync'd;
        an acknowledged batch is exactly a durable one), apply to the
        live overlay, build the new engine, and atomically publish it as
        the next generation.  In-flight queries keep their snapshot; the
        result cache only retires generations that aged out of the
        keep-window, so degraded mode can still serve recent stale
        entries.
        """
        handle = self._handle(corpus)
        state = self._ingest_state(handle.spec.name)
        if (
            self.frontier is not None
            and self.config.backend_mode == "http"
            and self.replication is None
        ):
            # Remote backends serve their spawn-time snapshot; without
            # log shipping an accepted write would never reach them and
            # reads through the topology would silently diverge.
            raise IngestUnreplicatedError(handle.spec.name)
        started = perf_counter()
        count = len(ops) if isinstance(ops, list) else 0
        with maybe_span(
            self.telemetry.tracer,
            "ingest.commit",
            corpus=handle.spec.name,
            ops=count,
        ):
            with state.lock:
                try:
                    prepared = state.live.prepare(ops)
                except IngestError:
                    self._ingest_batches.inc(outcome="rejected")
                    raise
                try:
                    seq = state.wal.append_batch(prepared.ops)
                except Exception:
                    self._ingest_batches.inc(outcome="wal_failed")
                    raise
                state.live.commit(prepared)
                engine = self._engine_from_live(handle.spec, state)
                generation = handle.install(engine)
                state.batches += 1
                shipped = None
                if self.replication is not None:
                    # Ship inside the writer lock: batches leave in
                    # commit order, so replicas apply a pure sequence.
                    # A ship failure never fails the ingest — the batch
                    # is already durable in the WAL, and the sweep will
                    # walk lagging nodes forward.
                    shipped = self.replication.ship(
                        handle.spec.name, seq, prepared.ops, generation
                    )
        floor = generation - self.config.ingest_keep_generations + 1
        invalidated = self.cache.invalidate_generations_below(
            handle.spec.name, floor
        )
        for op in prepared.ops:
            self._ingest_ops.inc(kind=op["op"])
        self._ingest_batches.inc(outcome="committed")
        elapsed = perf_counter() - started
        self._ingest_commit_seconds.observe(elapsed, corpus=handle.spec.name)
        self._sync_ingest_gauges(handle.spec.name, state)
        response = {
            "corpus": handle.spec.name,
            "generation": generation,
            "batch_seq": seq,
            "applied": len(prepared.ops),
            "documents": state.live.document_count,
            "segments": state.live.segment_count,
            "tombstones": state.live.tombstone_count,
            "cache_invalidated": invalidated,
            "seconds": elapsed,
        }
        if shipped is not None:
            response["replication"] = shipped
        return response

    def compact(self, corpus: str | None = None) -> dict[str, Any]:
        """Merge segments, drop tombstones, checkpoint, truncate the WAL.

        Safe at any time: the merged overlay assembles to the exact same
        layout, so no generation bump (and no cache invalidation) is
        needed — in-flight and future queries are untouched.  The
        checkpoint happens whenever the WAL is non-empty, even when no
        segments needed merging, so replay work stays bounded.
        """
        handle = self._handle(corpus)
        state = self._ingest_state(handle.spec.name)
        started = perf_counter()
        with maybe_span(
            self.telemetry.tracer, "ingest.compact", corpus=handle.spec.name
        ):
            with state.lock:
                summary = state.live.compact()
                checkpointed = False
                if summary is not None or state.wal.size_bytes() > 0:
                    state.wal.save_snapshot(
                        state.live.state(through_batch=state.wal.last_seq)
                    )
                    state.wal.truncate()
                    checkpointed = True
                if summary is not None:
                    state.compactions += 1
        elapsed = perf_counter() - started
        if summary is not None:
            self._compaction_runs.inc(corpus=handle.spec.name)
            self._compaction_merged.inc(
                summary["merged_segments"], corpus=handle.spec.name
            )
        self._compaction_seconds.observe(elapsed, corpus=handle.spec.name)
        self._sync_ingest_gauges(handle.spec.name, state)
        return {
            "corpus": handle.spec.name,
            "compacted": summary is not None,
            "checkpointed": checkpointed,
            "generation": handle.generation,
            "segments": state.live.segment_count,
            "documents": state.live.document_count,
            "tombstones": state.live.tombstone_count,
            "seconds": elapsed,
            **(summary or {}),
        }

    def _compaction_candidates(self) -> list[str]:
        """Corpora the background compactor should visit: tombstones to
        drop, or enough small segments to cross the size-tier trigger."""
        config = self.config
        names = []
        for name, state in list(self._ingest.items()):
            live = state.live
            if live.tombstone_count > 0 or (
                live.small_segment_count(config.compaction_small_docs)
                >= config.compaction_min_segments
            ):
                names.append(name)
        return sorted(names)

    def ingest_info(self) -> dict[str, Any]:
        """Write-path state per corpus (surfaced in ``/healthz``)."""
        return {
            "enabled": self.config.ingest_enabled,
            "directory": str(self._ingest_dir) if self._ingest_dir else None,
            "corpora": {
                name: state.info()
                for name, state in sorted(self._ingest.items())
            },
        }

    def _handle(self, name: str | None) -> _CorpusHandle:
        with self._corpora_lock:
            if name is None:
                if len(self._corpora) == 1:
                    return next(iter(self._corpora.values()))
                raise UnknownCorpusError(
                    "(unspecified)", tuple(self._corpora)
                )
            try:
                return self._corpora[name]
            except KeyError:
                raise UnknownCorpusError(name, tuple(self._corpora)) from None

    @property
    def corpus_names(self) -> tuple[str, ...]:
        with self._corpora_lock:
            return tuple(sorted(self._corpora))

    def reload_corpus(self, name: str) -> dict[str, Any]:
        """Reload one corpus from its spec and invalidate its cache.

        Guarded by the corpus's circuit breaker: while it is open
        (repeated load failures), reloads short-circuit with
        :class:`~repro.errors.CorpusUnavailableError` — queries keep
        serving the last good engine either way.
        """
        handle = self._handle(name)
        breaker = handle.breaker
        if not breaker.allow():
            raise CorpusUnavailableError(
                handle.spec.name,
                retry_after=max(0.1, breaker.seconds_until_probe()),
            )
        try:
            engine = self._load_engine(handle.spec)
        except Exception:
            breaker.record_failure()
            raise
        breaker.record_success()
        state = self._ingest.get(handle.spec.name)
        if state is not None:
            # Rebase the live overlay onto the fresh base: surviving
            # ingested documents are re-appended on top of the reloaded
            # engine, so a reload never silently drops committed writes.
            with state.lock:
                rebased = LiveCorpus(engine.instance, engine.text)
                survivors = state.live.documents()
                if survivors:
                    rebased.apply(
                        [
                            {"op": "append", "id": doc_id, "text": text}
                            for doc_id, text in survivors
                        ]
                    )
                state.live = rebased
                state.rig = engine.rig
                if survivors:
                    engine = self._engine_from_live(handle.spec, state)
                generation = handle.install(engine)
            self._sync_ingest_gauges(handle.spec.name, state)
        else:
            generation = handle.install(engine)
        # A reload is a wholesale base swap: every cached generation of
        # this corpus is suspect, so invalidate by corpus prefix (the
        # generation-window retirement is only for ingest commits).
        invalidated = self.cache.invalidate((handle.spec.name,))
        return {
            "corpus": handle.spec.name,
            "generation": generation,
            "cache_invalidated": invalidated,
        }

    def corpora_info(self) -> list[dict[str, Any]]:
        with self._corpora_lock:
            handles = list(self._corpora.values())
        return [handle.info() for handle in handles]

    # ------------------------------------------------------------------
    # The request path.
    # ------------------------------------------------------------------

    def execute(
        self,
        query: str,
        corpus: str | None = None,
        optimize: bool | None = None,
        deadline: float | None = None,
        use_cache: bool = True,
        explain_only: bool = False,
    ) -> dict[str, Any]:
        """Run (or explain) one query; the unit behind ``POST /query``.

        Returns a JSON-ready response dict.  Raises
        :class:`UnknownCorpusError`, :class:`ServerOverloadedError`,
        :class:`~repro.errors.ServiceUnhealthyError` (load shed),
        :class:`~repro.errors.QueryTimeout`, or another
        :class:`~repro.errors.ReproError` (parse errors, unknown region
        names); the HTTP layer maps each to a status code.
        """
        endpoint = "explain" if explain_only else "query"
        started = perf_counter()
        trace = self._begin_trace(endpoint, query)
        status = "200"
        error: BaseException | None = None
        try:
            response = self._execute(
                endpoint, query, corpus, optimize, deadline, use_cache
            )
        except ServiceUnhealthyError as exc:
            # The monitor's own shed decision: neither a success nor a
            # worker-path failure, so it does not feed back into state.
            status, error = "503", exc
            self._shed.inc()
            self._rejected.inc(reason="unhealthy")
            raise
        except CorpusUnavailableError as exc:
            status, error = "503", exc
            raise
        except ServerOverloadedError as exc:
            status, error = "429", exc
            self._rejected.inc(reason="saturated")
            raise
        except QueryTimeout as exc:
            status, error = "504", exc
            self._timeouts.inc()
            self.health.record_failure()
            raise
        except (WorkerCrashedError, FaultInjected) as exc:
            status, error = "500", exc
            self.health.record_failure()
            raise
        except UnknownCorpusError as exc:
            status, error = "404", exc
            raise
        except ReproError as exc:
            # Client-side errors (parse, validation): not a health signal.
            status, error = "400", exc
            raise
        except Exception as exc:  # unexpected: surfaces as 500 upstream
            status, error = "500", exc
            raise
        else:
            self.health.record_success()
            response["seconds"] = perf_counter() - started
            if trace is not None:
                response["trace_id"] = trace[0].trace_id
            return response
        finally:
            self._complete(endpoint, status, started, trace, error)

    # ------------------------------------------------------------------
    # Request-trace lifecycle.
    # ------------------------------------------------------------------

    _Trace = tuple  # (TraceContext, context token, span context, root span)

    def _begin_trace(self, endpoint: str, query: str) -> "_Trace | None":
        """Mint a trace context and open the request root span.

        Returns ``None`` when tracing is off.  The context is installed
        in this thread's contextvars, from where the worker pool's
        context propagation carries it — and the open span — into the
        worker thread and onward to shard executors.
        """
        if self.traces is None:
            return None
        trace_id = _trace_context.new_trace_id()
        sampled = self._sampler.sample(trace_id)
        context = _trace_context.TraceContext(trace_id, sampled=sampled)
        token = _trace_context.activate(context)
        span_context = self.telemetry.tracer.span(
            "request",
            endpoint=endpoint,
            trace_id=trace_id,
            sampled=sampled,
            query=query,
        )
        span = span_context.__enter__()
        if span is None:  # tracer flipped off mid-flight
            _trace_context.restore(token)
            return None
        return (context, token, span_context, span)

    def _complete(
        self,
        endpoint: str,
        status: str,
        started: float,
        trace: "_Trace | None",
        error: BaseException | None,
    ) -> None:
        """Request epilogue, success or not: finish and offer the trace,
        then record metrics (with an exemplar when the trace was kept)
        and feed the SLO observatory."""
        elapsed = perf_counter() - started
        exemplar = None
        if trace is not None:
            exemplar = self._finish_trace(endpoint, status, trace, error)
        self._requests.inc(endpoint=endpoint, status=status)
        self._request_seconds.observe(
            elapsed, exemplar=exemplar, endpoint=endpoint
        )
        self.slo.record(endpoint, status, elapsed)

    def _finish_trace(
        self,
        endpoint: str,
        status: str,
        trace: "_Trace",
        error: BaseException | None,
    ) -> str | None:
        """Close the root span, restore the context, and offer the tree
        to the store; returns the trace id if it was kept."""
        context, token, span_context, span = trace
        span.set("status", status)
        if error is not None:
            span.set("error", type(error).__name__)
            if isinstance(error, FaultInjected):
                span.set("fault", True)
            try:
                # Join handle for error envelopes and the query log.
                error.trace_id = context.trace_id  # type: ignore[attr-defined]
            except AttributeError:  # pragma: no cover - slotted exception
                pass
        span_context.__exit__(None, None, None)
        _trace_context.restore(token)
        reasons = self.traces.offer(
            context.trace_id,
            span,
            sampled=context.sampled,
            endpoint=endpoint,
            status=status,
            error=status in ("500", "504"),
        )
        return context.trace_id if reasons else None

    def _execute(
        self,
        endpoint: str,
        query: str,
        corpus: str | None,
        optimize: bool | None,
        deadline: float | None,
        use_cache: bool,
    ) -> dict[str, Any]:
        if self._closed:
            raise ServerOverloadedError("service is shutting down")
        if self.health.should_shed():
            raise ServiceUnhealthyError(
                "service is unhealthy and shedding load", retry_after=1.0
            )
        degraded = self.health.state != HEALTHY
        handle = self._handle(corpus)
        engine, generation = handle.snapshot()
        optimize = (
            self.config.optimize_default if optimize is None else bool(optimize)
        )
        if optimize and degraded and endpoint != "explain":
            # Degraded mode: skip the optimizer pass — evaluate the
            # parsed plan directly, trading plan quality for less work.
            optimize = False
        budget = self._clamp_deadline(deadline)
        # Parse + view-expand on the calling thread: cheap, and parse
        # errors turn into 400s without consuming a worker slot.
        plan_key = engine.normalize(query)
        if endpoint == "explain":
            future = self.pool.submit(self._run_explain, engine, query)
            plan, cache_hits = self._await(future, budget)
            # Cache hits are reported distinctly: "plan_cache_hit" is the
            # engine's CostModel, "program_cache_hit" the compiled VM
            # program — a cost-model hit alone no longer masquerades as
            # a fully warmed query.
            return {
                "corpus": handle.spec.name,
                "generation": generation,
                "query": query,
                "plan": str(plan),
                "original_cost": plan.original_cost,
                "optimized_cost": plan.optimized_cost,
                "rewrites": list(plan.steps),
                "compiled": plan.compiled,
                "program": list(plan.program),
                "plan_cache_hit": cache_hits["plan_cache_hit"],
                "program_cache_hit": cache_hits["program_cache_hit"],
            }
        caching = use_cache and self.config.cache_enabled
        key = (handle.spec.name, generation, plan_key, optimize)
        if caching:
            cached = self._cache_get(key)
            if cached is not None:
                self._cache_hits.inc()
                return {**cached, "cached": True}
            self._cache_misses.inc()
            if degraded and self.config.stale_when_degraded:
                stale = self._stale_lookup(handle.spec.name, plan_key, optimize)
                if stale is not None:
                    self._stale_served.inc()
                    return {**stale, "cached": True, "stale": True}
        response = self._dispatch(
            handle, engine, generation, query, optimize, budget
        )
        response.update(
            corpus=handle.spec.name, generation=generation, query=query
        )
        if caching:
            self.cache.put(key, dict(response))
        return {**response, "cached": False}

    def _cache_get(self, key: tuple) -> dict[str, Any] | None:
        """A cache probe that survives an injected ``cache.get`` fault:
        a failing cache is just a cache miss."""
        try:
            _faults.fire("cache.get")
        except FaultInjected:
            return None
        return self.cache.get(key)

    def _stale_lookup(
        self, corpus: str, plan_key: str, optimize: bool
    ) -> dict[str, Any] | None:
        """Degraded mode: a matching entry from *any* generation."""
        found = self.cache.get_where(
            lambda k: (
                isinstance(k, tuple)
                and len(k) == 4
                and k[0] == corpus
                and k[2] == plan_key
                and k[3] == optimize
            )
        )
        if found is None:
            return None
        _key, value = found
        return dict(value)

    def _dispatch(
        self,
        handle: _CorpusHandle,
        engine: Engine,
        generation: int,
        query: str,
        optimize: bool,
        budget: float,
    ) -> dict[str, Any]:
        """Submit to the pool, re-dispatching when a worker dies holding
        the job (``dispatch_retries`` budget).

        ``engine`` is the snapshot captured alongside ``generation`` in
        :meth:`_execute`; the worker must evaluate against it rather
        than re-reading ``handle.engine``, or an ingest commit landing
        between capture and evaluation would pair a new engine with the
        old generation — breaking snapshot isolation and poisoning the
        generation-keyed cache.  The same captured generation doubles as
        the read's replication floor.
        """
        attempts = self.config.dispatch_retries + 1
        for attempt in range(attempts):
            admitted_at = monotonic()
            future = self.pool.submit(
                self._run_query,
                handle,
                engine,
                generation,
                query,
                optimize,
                budget,
                admitted_at,
            )
            try:
                return self._await(future, budget)
            except WorkerCrashedError:
                if attempt + 1 >= attempts:
                    self._retry_exhausted.inc(op="dispatch")
                    raise
                self._retry_attempts.inc(op="dispatch")
        raise AssertionError("unreachable")  # pragma: no cover

    def _clamp_deadline(self, deadline: float | None) -> float:
        if deadline is None:
            return self.config.default_deadline
        if deadline <= 0:
            raise ReproError("deadline must be positive seconds")
        return min(float(deadline), self.config.max_deadline)

    def _await(self, future: Any, budget: float) -> Any:
        """Wait for a pool future, bounding the wait by the budget plus
        grace for the evaluator's own cooperative abort to fire."""
        from concurrent.futures import TimeoutError as FutureTimeout

        try:
            return future.result(timeout=budget + 2.0)
        except FutureTimeout:  # pragma: no cover - defensive backstop
            raise QueryTimeout(budget) from None

    def _run_query(
        self,
        handle: _CorpusHandle,
        engine: Engine,
        generation: int,
        query: str,
        optimize: bool,
        budget: float,
        admitted_at: float,
    ) -> dict[str, Any]:
        """Worker-side: evaluate with whatever budget queueing left."""
        queued = monotonic() - admitted_at
        remaining = budget - queued
        tracer = self.telemetry.tracer
        if tracer.enabled:
            # The request span crossed the pool boundary with this job's
            # context copy; backdate a span for the time spent queued.
            tracer.record_span("queue.wait", queued, budget=budget)
        if remaining <= 0:
            raise QueryTimeout(budget)
        self._inflight_gauge.inc()
        backend_info = None
        try:
            eval_started = perf_counter()
            if self.frontier is not None:
                result, backend_info = self._frontier_query(
                    handle, engine, generation, query, optimize, remaining
                )
            else:
                result = engine.query(
                    query, optimize_query=optimize, deadline=remaining
                )
            eval_seconds = perf_counter() - eval_started
        finally:
            self._inflight_gauge.dec()
        response = {
            "regions": [[r.left, r.right] for r in result],
            "cardinality": len(result),
            "optimized": optimize,
            "eval_seconds": eval_seconds,
            "queued_seconds": monotonic() - admitted_at - eval_seconds,
        }
        if backend_info is not None:
            response["backend"] = backend_info
        return response

    def _frontier_query(
        self,
        handle: _CorpusHandle,
        engine: Engine,
        generation: int,
        query: str,
        optimize: bool,
        remaining: float,
    ) -> tuple[Any, dict[str, Any]]:
        """Evaluate via the backend topology, falling back locally.

        Two fallbacks, both returning complete and correct results:
        ``unsupported`` (the plan cannot be sharded — e.g. a word
        occurrence spans a partition cut) is routine; ``unavailable``
        (some shard group lost *all* its replicas) marks the response
        degraded — the PR-5 invariant, now across processes: losing
        backends may cost the distributed path, never correctness.

        With replication active, the captured ``generation`` is stamped
        on the scatter as the read's floor: read-your-writes, because a
        replica still behind the acknowledged generation refuses rather
        than answers from the past (and if *every* replica of a group
        is behind, the local fallback — whose engine IS the captured
        snapshot — serves the exact floor generation).
        """
        frontier = self.frontier
        assert frontier is not None
        floor = generation if self.replication is not None else 0
        expr = (
            engine.plan(query).optimized
            if optimize
            else _parse_query(engine.normalize(query))
        )
        tracer = self.telemetry.tracer
        try:
            with maybe_span(
                tracer, "shard.query", mode="backend", groups=frontier.groups
            ):
                result, stats = frontier.run(
                    handle.spec.name, expr, deadline=remaining, floor=floor
                )
        except BackendUnsupportedError as exc:
            return self._frontier_fallback_query(
                engine, query, optimize, remaining, "unsupported", str(exc)
            )
        except BackendUnavailableError as exc:
            return self._frontier_fallback_query(
                engine, query, optimize, remaining, "unavailable", str(exc)
            )
        return result, {
            "mode": self.config.backend_mode,
            "groups": stats.groups,
            "replicas": frontier.replicas,
            "hedges": stats.hedges,
            "hedge_wins": stats.hedge_wins,
            "failovers": stats.failovers,
            "nodes": sorted(set(stats.nodes_used)),
            "degraded": False,
        }

    def _frontier_fallback_query(
        self,
        engine: Engine,
        query: str,
        optimize: bool,
        remaining: float,
        reason: str,
        detail: str,
    ) -> tuple[Any, dict[str, Any]]:
        self._frontier_fallback.inc(reason=reason)
        result = engine.query(
            query, optimize_query=optimize, deadline=remaining
        )
        return result, {
            "mode": self.config.backend_mode,
            "groups": self.config.backend_groups,
            "fallback": reason,
            "detail": detail,
            # Only replica exhaustion means the topology is limping;
            # an unsupported plan is a routine local evaluation.
            "degraded": reason == "unavailable",
        }

    @staticmethod
    def _run_explain(engine: Engine, query: str):
        return engine.explain_with_caches(query)

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    def healthz(self) -> dict[str, Any]:
        with self._corpora_lock:
            breakers = {
                name: handle.breaker.snapshot()
                for name, handle in self._corpora.items()
            }
        faults = _faults.active()
        return {
            "status": "shutting-down" if self._closed else self.health.state,
            "uptime_seconds": monotonic() - self._started_at,
            "corpora": len(self.corpus_names),
            "health": self.health.snapshot(),
            "breakers": breakers,
            "faults": faults.snapshot() if faults is not None else None,
            "pool": self.pool.stats(),
            "cache": self.cache.snapshot(),
            "ingest": self.ingest_info(),
            "config": self.config.to_dict(),
        }

    def metrics_snapshot(self) -> dict[str, Any]:
        """The shared registry + query log, JSON-ready (``/metrics``)."""
        # Mirror cache/pool state into instruments so one registry
        # snapshot tells the whole story.
        snapshot = self.cache.snapshot()
        metrics = self.telemetry.metrics
        metrics.gauge("server_cache_entries").set(snapshot["entries"])
        new_evictions = snapshot["evictions"] - self._evictions_seen
        if new_evictions > 0:
            self._cache_evictions.inc(new_evictions)
            self._evictions_seen = snapshot["evictions"]
        self.slo.snapshot()  # refresh the slo_* gauges at scrape time
        return self.telemetry.snapshot()

    def slo_snapshot(self) -> dict[str, Any]:
        """Objectives, burn rates, and alert state (``/slo``)."""
        return {
            "objectives": self.slo.snapshot(),
            "health": self.health.snapshot(),
            "tracing": self.traces is not None,
            "traces": self.traces.stats() if self.traces is not None else None,
        }

    def trace_tree(self, trace_id: str) -> dict[str, Any] | None:
        """The stitched span tree of one kept trace, or ``None``."""
        if self.traces is None:
            return None
        kept = self.traces.get(trace_id)
        return kept.to_dict() if kept is not None else None

    def trace_summaries(
        self, limit: int = 50, sort: str = "recent"
    ) -> list[dict[str, Any]]:
        """Kept-trace listing rows (``/debug/traces``, ``repro top``)."""
        if self.traces is None:
            return []
        return self.traces.summaries(limit=limit, sort=sort)

    def close(self) -> None:
        """Stop admitting work and drain the pool."""
        self._closed = True
        # The compactor goes first: it calls back into compact(), which
        # takes writer locks and touches the WAL — none of that should
        # race the teardown below.
        if self.compactor is not None:
            self.compactor.close()
        self.pool.shutdown(wait=True)
        # The replication sweep talks to backends, so it stops before
        # the frontier (whose close drops the transports) and the
        # supervisor (whose stop kills the processes it would dial).
        if self.replication is not None:
            self.replication.close()
        if self.frontier is not None:
            self.frontier.close()
        if self.supervisor is not None:
            self.supervisor.stop()
        with self._corpora_lock:
            handles = list(self._corpora.values())
        for handle in handles:
            handle.engine.close()
        if self._ingest_tmpdir is not None:
            self._ingest_tmpdir.cleanup()
            self._ingest_tmpdir = None
