"""The concurrent query service: corpora + worker pool + result cache.

:class:`QueryService` is the transport-independent core of the serving
layer (the HTTP front end in :mod:`repro.server.http` is a thin JSON
adapter over it, and the benchmarks drive it in-process).  One service
owns:

* a set of named **corpus handles**, each wrapping an
  :class:`~repro.engine.Engine` plus a monotonically increasing
  *generation* counter bumped on every reload;
* a :class:`~repro.server.pool.WorkerPool` providing bounded admission
  (reject-early under overload) and the threads queries evaluate on;
* a :class:`~repro.server.cache.ResultCache` keyed by
  ``(corpus, generation, normalized plan, optimize flag)`` — reloading a
  corpus bumps the generation and eagerly invalidates its entries;
* one shared :class:`~repro.obs.Telemetry` bundle all engines record
  into, extended with the ``server_*`` metrics, so ``/metrics`` is a
  single registry snapshot.

Every query request carries a deadline.  The clock starts at admission:
time spent waiting in the queue counts against the budget, and the
remaining budget is handed to the evaluator's cooperative
deadline/cancellation check — a queued request whose client has already
given up aborts on pickup instead of burning a worker.
"""

from __future__ import annotations

import threading
from time import monotonic, perf_counter
from typing import Any

from repro.engine.session import Engine
from repro.errors import (
    QueryTimeout,
    ReproError,
    ServerOverloadedError,
    UnknownRegionNameError,
)
from repro.obs import Telemetry
from repro.obs.metrics import (
    SERVER_CACHE_EVICTIONS_TOTAL,
    SERVER_CACHE_HITS_TOTAL,
    SERVER_CACHE_MISSES_TOTAL,
    SERVER_INFLIGHT,
    SERVER_QUEUE_DEPTH,
    SERVER_REJECTED_TOTAL,
    SERVER_REQUEST_SECONDS,
    SERVER_REQUESTS_TOTAL,
    SERVER_TIMEOUTS_TOTAL,
)
from repro.server.cache import ResultCache
from repro.server.config import CorpusSpec, ServerConfig
from repro.server.pool import WorkerPool

__all__ = ["QueryService", "UnknownCorpusError"]


class UnknownCorpusError(ReproError):
    """A request named a corpus the service does not serve."""

    def __init__(self, name: str, known: tuple[str, ...]):
        self.name = name
        self.known = known
        hint = f"; serving: {', '.join(sorted(known))}" if known else ""
        super().__init__(f"unknown corpus {name!r}{hint}")


def _build_engine(spec: CorpusSpec, telemetry: Telemetry) -> Engine:
    """Load one corpus per its spec, sharing the service telemetry."""
    from pathlib import Path

    if spec.kind == "synthetic":
        text = _synthesize(spec)
        if spec.path == "source":
            document_engine = Engine.from_source(text)
        else:
            document_engine = Engine.from_tagged_text(text)
        # Rebuild on the shared telemetry (constructors make their own).
        engine = Engine(
            document_engine.instance,
            text=text,
            rig=document_engine.rig,
            telemetry=telemetry,
        )
        return engine
    text = None
    if spec.kind == "index":
        from repro.engine.storage import load_instance

        instance = load_instance(spec.path)
        rig = None
    elif spec.kind == "tagged":
        from repro.engine.tagged import parse_tagged_text

        text = Path(spec.path).read_text(encoding="utf-8")
        document = parse_tagged_text(text)
        instance, text = document.instance, document.text
        rig = None
    else:  # "source"
        from repro.engine.sourcecode import parse_source
        from repro.rig.graph import figure_1_rig

        text = Path(spec.path).read_text(encoding="utf-8")
        document = parse_source(text)
        instance, text = document.instance, document.text
        rig = figure_1_rig()
    return Engine(instance, text=text, rig=rig, telemetry=telemetry)


def _synthesize(spec: CorpusSpec) -> str:
    import random

    from repro.workloads.corpora import (
        generate_dictionary,
        generate_play,
        generate_report,
    )

    rng = random.Random(spec.seed)
    scale = max(1, spec.scale)
    if spec.path == "play":
        return generate_play(
            rng,
            acts=scale,
            scenes_per_act=scale,
            speeches_per_scene=2 * scale,
            lines_per_speech=3,
        )
    if spec.path == "dictionary":
        return generate_dictionary(rng, entries=5 * scale)
    if spec.path == "report":
        return generate_report(rng, sections=scale, max_depth=3)
    from repro.engine.sourcecode import generate_program_source

    return generate_program_source(rng, procedures=10 * scale)


class _CorpusHandle:
    """One served corpus: engine + generation + reload lock."""

    __slots__ = ("spec", "engine", "generation", "loaded_at", "lock")

    def __init__(self, spec: CorpusSpec, engine: Engine):
        self.spec = spec
        self.engine = engine
        self.generation = 1
        self.loaded_at = monotonic()
        self.lock = threading.Lock()  # serializes reloads, not queries
        self._warm()

    def _warm(self) -> None:
        # Build the lazily-cached forest up front so concurrent first
        # queries don't race on its construction.
        self.engine.instance.forest()

    def reload(self, telemetry: Telemetry) -> int:
        """Swap in a freshly loaded engine; returns the new generation.

        Queries already running keep the old engine (their reference
        keeps it alive); new requests see the new generation atomically.
        """
        with self.lock:
            engine = _build_engine(self.spec, telemetry)
            engine.instance.forest()
            self.engine = engine
            self.generation += 1
            self.loaded_at = monotonic()
            return self.generation

    def info(self) -> dict[str, Any]:
        stats = self.engine.statistics()
        return {
            **self.spec.to_dict(),
            "generation": self.generation,
            "regions": stats["total"],
            "region_names": sorted(stats["regions"]),
            "nesting_depth": stats["nesting_depth"],
        }


class QueryService:
    """See the module docstring.  Construct, then :meth:`execute`."""

    def __init__(self, config: ServerConfig | None = None):
        self.config = config if config is not None else ServerConfig()
        self.telemetry = Telemetry(
            query_log_capacity=self.config.query_log_capacity
        )
        if self.config.tracing:
            self.telemetry.enable_tracing()
        metrics = self.telemetry.metrics
        self._requests = metrics.counter(
            SERVER_REQUESTS_TOTAL, help="requests by endpoint and status"
        )
        self._request_seconds = metrics.histogram(
            SERVER_REQUEST_SECONDS, help="request wall time by endpoint"
        )
        self._queue_gauge = metrics.gauge(
            SERVER_QUEUE_DEPTH, help="requests waiting for a worker"
        )
        self._inflight_gauge = metrics.gauge(
            SERVER_INFLIGHT, help="requests currently evaluating"
        )
        self._cache_hits = metrics.counter(SERVER_CACHE_HITS_TOTAL)
        self._cache_misses = metrics.counter(SERVER_CACHE_MISSES_TOTAL)
        self._cache_evictions = metrics.counter(SERVER_CACHE_EVICTIONS_TOTAL)
        self._rejected = metrics.counter(
            SERVER_REJECTED_TOTAL, help="admission rejections by reason"
        )
        self._timeouts = metrics.counter(SERVER_TIMEOUTS_TOTAL)
        self.cache = ResultCache(self.config.cache_capacity)
        self.pool = WorkerPool(
            workers=self.config.workers,
            queue_depth=self.config.queue_depth,
            on_depth_change=self._queue_gauge.set,
        )
        self._corpora: dict[str, _CorpusHandle] = {}
        self._corpora_lock = threading.Lock()
        self._started_at = monotonic()
        self._evictions_seen = 0
        self._closed = False
        for spec in self.config.corpora:
            self.add_corpus(spec)

    # ------------------------------------------------------------------
    # Corpus management.
    # ------------------------------------------------------------------

    def add_corpus(self, spec: CorpusSpec) -> None:
        engine = _build_engine(spec, self.telemetry)
        with self._corpora_lock:
            if spec.name in self._corpora:
                raise ReproError(f"corpus {spec.name!r} is already served")
            self._corpora[spec.name] = _CorpusHandle(spec, engine)

    def _handle(self, name: str | None) -> _CorpusHandle:
        with self._corpora_lock:
            if name is None:
                if len(self._corpora) == 1:
                    return next(iter(self._corpora.values()))
                raise UnknownCorpusError(
                    "(unspecified)", tuple(self._corpora)
                )
            try:
                return self._corpora[name]
            except KeyError:
                raise UnknownCorpusError(name, tuple(self._corpora)) from None

    @property
    def corpus_names(self) -> tuple[str, ...]:
        with self._corpora_lock:
            return tuple(sorted(self._corpora))

    def reload_corpus(self, name: str) -> dict[str, Any]:
        """Reload one corpus from its spec and invalidate its cache."""
        handle = self._handle(name)
        generation = handle.reload(self.telemetry)
        invalidated = self.cache.invalidate((handle.spec.name,))
        return {
            "corpus": handle.spec.name,
            "generation": generation,
            "cache_invalidated": invalidated,
        }

    def corpora_info(self) -> list[dict[str, Any]]:
        with self._corpora_lock:
            handles = list(self._corpora.values())
        return [handle.info() for handle in handles]

    # ------------------------------------------------------------------
    # The request path.
    # ------------------------------------------------------------------

    def execute(
        self,
        query: str,
        corpus: str | None = None,
        optimize: bool | None = None,
        deadline: float | None = None,
        use_cache: bool = True,
        explain_only: bool = False,
    ) -> dict[str, Any]:
        """Run (or explain) one query; the unit behind ``POST /query``.

        Returns a JSON-ready response dict.  Raises
        :class:`UnknownCorpusError`, :class:`ServerOverloadedError`,
        :class:`~repro.errors.QueryTimeout`, or another
        :class:`~repro.errors.ReproError` (parse errors, unknown region
        names); the HTTP layer maps each to a status code.
        """
        endpoint = "explain" if explain_only else "query"
        started = perf_counter()
        try:
            response = self._execute(
                endpoint, query, corpus, optimize, deadline, use_cache
            )
        except ServerOverloadedError:
            self._observe(endpoint, "429", started)
            self._rejected.inc(reason="saturated")
            raise
        except QueryTimeout:
            self._observe(endpoint, "504", started)
            self._timeouts.inc()
            raise
        except UnknownCorpusError:
            self._observe(endpoint, "404", started)
            raise
        except ReproError:
            self._observe(endpoint, "400", started)
            raise
        self._observe(endpoint, "200", started)
        response["seconds"] = perf_counter() - started
        return response

    def _observe(self, endpoint: str, status: str, started: float) -> None:
        self._requests.inc(endpoint=endpoint, status=status)
        self._request_seconds.observe(
            perf_counter() - started, endpoint=endpoint
        )

    def _execute(
        self,
        endpoint: str,
        query: str,
        corpus: str | None,
        optimize: bool | None,
        deadline: float | None,
        use_cache: bool,
    ) -> dict[str, Any]:
        if self._closed:
            raise ServerOverloadedError("service is shutting down")
        handle = self._handle(corpus)
        engine, generation = handle.engine, handle.generation
        optimize = (
            self.config.optimize_default if optimize is None else bool(optimize)
        )
        budget = self._clamp_deadline(deadline)
        # Parse + view-expand on the calling thread: cheap, and parse
        # errors turn into 400s without consuming a worker slot.
        plan_key = engine.normalize(query)
        if endpoint == "explain":
            future = self.pool.submit(self._run_explain, engine, query)
            plan = self._await(future, budget)
            return {
                "corpus": handle.spec.name,
                "generation": generation,
                "query": query,
                "plan": str(plan),
                "original_cost": plan.original_cost,
                "optimized_cost": plan.optimized_cost,
                "rewrites": list(plan.steps),
            }
        caching = use_cache and self.config.cache_enabled
        key = (handle.spec.name, generation, plan_key, optimize)
        if caching:
            cached = self.cache.get(key)
            if cached is not None:
                self._cache_hits.inc()
                return {**cached, "cached": True}
            self._cache_misses.inc()
        admitted_at = monotonic()
        future = self.pool.submit(
            self._run_query,
            engine,
            query,
            optimize,
            budget,
            admitted_at,
        )
        response = self._await(future, budget)
        response.update(
            corpus=handle.spec.name, generation=generation, query=query
        )
        if caching:
            self.cache.put(key, dict(response))
        return {**response, "cached": False}

    def _clamp_deadline(self, deadline: float | None) -> float:
        if deadline is None:
            return self.config.default_deadline
        if deadline <= 0:
            raise ReproError("deadline must be positive seconds")
        return min(float(deadline), self.config.max_deadline)

    def _await(self, future: Any, budget: float) -> Any:
        """Wait for a pool future, bounding the wait by the budget plus
        grace for the evaluator's own cooperative abort to fire."""
        from concurrent.futures import TimeoutError as FutureTimeout

        try:
            return future.result(timeout=budget + 2.0)
        except FutureTimeout:  # pragma: no cover - defensive backstop
            raise QueryTimeout(budget) from None

    def _run_query(
        self,
        engine: Engine,
        query: str,
        optimize: bool,
        budget: float,
        admitted_at: float,
    ) -> dict[str, Any]:
        """Worker-side: evaluate with whatever budget queueing left."""
        remaining = budget - (monotonic() - admitted_at)
        if remaining <= 0:
            raise QueryTimeout(budget)
        self._inflight_gauge.inc()
        try:
            eval_started = perf_counter()
            result = engine.query(
                query, optimize_query=optimize, deadline=remaining
            )
            eval_seconds = perf_counter() - eval_started
        finally:
            self._inflight_gauge.dec()
        return {
            "regions": [[r.left, r.right] for r in result],
            "cardinality": len(result),
            "optimized": optimize,
            "eval_seconds": eval_seconds,
            "queued_seconds": monotonic() - admitted_at - eval_seconds,
        }

    @staticmethod
    def _run_explain(engine: Engine, query: str):
        return engine.explain(query)

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    def healthz(self) -> dict[str, Any]:
        return {
            "status": "ok" if not self._closed else "shutting-down",
            "uptime_seconds": monotonic() - self._started_at,
            "corpora": len(self.corpus_names),
            "pool": self.pool.stats(),
            "cache": self.cache.snapshot(),
            "config": self.config.to_dict(),
        }

    def metrics_snapshot(self) -> dict[str, Any]:
        """The shared registry + query log, JSON-ready (``/metrics``)."""
        # Mirror cache/pool state into instruments so one registry
        # snapshot tells the whole story.
        snapshot = self.cache.snapshot()
        metrics = self.telemetry.metrics
        metrics.gauge("server_cache_entries").set(snapshot["entries"])
        new_evictions = snapshot["evictions"] - self._evictions_seen
        if new_evictions > 0:
            self._cache_evictions.inc(new_evictions)
            self._evictions_seen = snapshot["evictions"]
        return self.telemetry.snapshot()

    def close(self) -> None:
        """Stop admitting work and drain the pool."""
        self._closed = True
        self.pool.shutdown(wait=True)
