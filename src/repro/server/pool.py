"""A fixed worker pool with bounded queueing and admission control.

``concurrent.futures.ThreadPoolExecutor`` queues without bound, which is
exactly wrong for a query service: under overload every request waits,
every request times out, and no feedback reaches the client.  This pool
instead rejects at admission time — ``submit`` raises
:class:`~repro.errors.ServerOverloadedError` the moment the bounded
queue is full — so saturation turns into fast ``429`` responses with a
``Retry-After`` estimate derived from observed service times, while
accepted requests keep their latency.
"""

from __future__ import annotations

import contextvars
import queue
import threading
from concurrent.futures import Future
from time import monotonic, perf_counter
from typing import Any, Callable

from repro.errors import ServerOverloadedError, WorkerCrashedError, WorkerKilled
from repro.faults import registry as _faults

__all__ = ["WorkerPool"]

_STOP = object()


class _Job:
    __slots__ = ("fn", "args", "kwargs", "future", "enqueued_at", "ctx")

    def __init__(
        self,
        fn: Callable[..., Any],
        args: tuple,
        kwargs: dict,
        ctx: contextvars.Context | None = None,
    ):
        self.fn = fn
        self.args = args
        self.kwargs = kwargs
        self.future: Future = Future()
        self.enqueued_at = monotonic()
        self.ctx = ctx


class WorkerPool:
    """``workers`` daemon threads draining a queue of at most
    ``queue_depth`` waiting jobs (running jobs do not count against the
    queue bound).

    ``on_depth_change``, when given, is called with the current number
    of waiting jobs after every enqueue/dequeue — the hook the service
    uses to keep the ``server_queue_depth`` gauge current without the
    pool knowing about metrics.  ``on_worker_death`` fires whenever a
    worker thread dies at the ``pool.worker`` fault point (chaos only):
    the job it held fails with
    :class:`~repro.errors.WorkerCrashedError` and a replacement thread
    is spawned immediately, so pool capacity is never lost.

    With ``propagate_context`` (the default), each job captures the
    submitter's :mod:`contextvars` context and runs inside a copy of it
    on the worker thread — this is what lets a request's trace context
    and open span follow the job across the pool boundary, so spans
    opened on the worker stitch into the submitting request's trace.
    """

    def __init__(
        self,
        workers: int = 4,
        queue_depth: int = 16,
        name: str = "repro-worker",
        on_depth_change: Callable[[int], None] | None = None,
        on_worker_death: Callable[[], None] | None = None,
        propagate_context: bool = True,
    ):
        if workers < 1:
            raise ValueError("worker pool needs at least one worker")
        if queue_depth < 0:
            raise ValueError("queue depth cannot be negative")
        self.workers = workers
        self.queue_depth = queue_depth
        self.propagate_context = propagate_context
        self._name = name
        self._queue: "queue.Queue[Any]" = queue.Queue(maxsize=queue_depth + workers)
        self._admission = threading.Semaphore(queue_depth + workers)
        self._on_depth_change = on_depth_change
        self._on_worker_death = on_worker_death
        self._shutdown = False
        self._lock = threading.Lock()
        self._inflight = 0
        self._completed = 0
        self._rejected = 0
        self._deaths = 0
        self._spawned = 0
        # EWMA of job service time, seeding the Retry-After estimate.
        self._ewma_seconds = 0.05
        self._threads: list[threading.Thread] = []
        for _ in range(workers):
            self._threads.append(self._spawn())

    def _spawn(self) -> threading.Thread:
        with self._lock:
            index = self._spawned
            self._spawned += 1
        thread = threading.Thread(
            target=self._run, name=f"{self._name}-{index}", daemon=True
        )
        thread.start()
        return thread

    # ------------------------------------------------------------------

    def submit(self, fn: Callable[..., Any], /, *args: Any, **kwargs: Any) -> Future:
        """Enqueue ``fn(*args, **kwargs)``; never blocks.

        Raises :class:`ServerOverloadedError` when ``workers`` jobs are
        running and ``queue_depth`` more are already waiting.
        """
        if self._shutdown:
            raise ServerOverloadedError("worker pool is shut down", retry_after=1.0)
        # The semaphore counts free slots (running + waiting); a failed
        # non-blocking acquire IS the admission decision.
        if not self._admission.acquire(blocking=False):
            with self._lock:
                self._rejected += 1
                retry_after = self.estimate_retry_after()
            raise ServerOverloadedError(
                f"query queue is full ({self.queue_depth} waiting, "
                f"{self.workers} running)",
                retry_after=retry_after,
            )
        ctx = contextvars.copy_context() if self.propagate_context else None
        job = _Job(fn, args, kwargs, ctx)
        self._queue.put(job)  # cannot block: the semaphore bounds occupancy
        self._notify_depth()
        return job.future

    def estimate_retry_after(self) -> float:
        """Seconds until a queue slot plausibly frees up: the backlog
        ahead of a new arrival divided by drain rate, floored at 100ms."""
        backlog = self._queue.qsize() + self.workers
        return round(max(0.1, backlog * self._ewma_seconds / self.workers), 3)

    # ------------------------------------------------------------------

    def _run(self) -> None:
        while True:
            job = self._queue.get()
            if job is _STOP:
                self._queue.task_done()
                return
            self._notify_depth()
            # Fault point: a worker can die while picking up a job
            # (chaos only — the check is one module-attribute load).
            if _faults._active is not None:
                try:
                    _faults._active.fire("pool.worker")
                except WorkerKilled:
                    self._abandon(job)
                    return
                except Exception as exc:  # noqa: BLE001 - injected error
                    if job.future.set_running_or_notify_cancel():
                        job.future.set_exception(exc)
                    self._admission.release()
                    self._queue.task_done()
                    continue
            with self._lock:
                self._inflight += 1
            started = perf_counter()
            try:
                if job.future.set_running_or_notify_cancel():
                    try:
                        if job.ctx is not None:
                            result = job.ctx.run(job.fn, *job.args, **job.kwargs)
                        else:
                            result = job.fn(*job.args, **job.kwargs)
                        job.future.set_result(result)
                    except BaseException as exc:  # noqa: BLE001 - relayed
                        job.future.set_exception(exc)
            finally:
                elapsed = perf_counter() - started
                with self._lock:
                    self._inflight -= 1
                    self._completed += 1
                    self._ewma_seconds += 0.2 * (elapsed - self._ewma_seconds)
                self._admission.release()
                self._queue.task_done()

    def _abandon(self, job: "_Job") -> None:
        """This worker drew a kill fault: fail the job it was holding
        with :class:`WorkerCrashedError`, spawn a replacement thread,
        and let the calling thread return (die)."""
        if job.future.set_running_or_notify_cancel():
            job.future.set_exception(
                WorkerCrashedError(
                    "worker thread died while holding this job; "
                    "a replacement worker was started"
                )
            )
        self._admission.release()
        self._queue.task_done()
        with self._lock:
            self._deaths += 1
            dead = threading.current_thread()
            self._threads = [t for t in self._threads if t is not dead]
            respawn = not self._shutdown
        if self._on_worker_death is not None:
            self._on_worker_death()
        if respawn:
            self._threads.append(self._spawn())

    def _notify_depth(self) -> None:
        if self._on_depth_change is not None:
            self._on_depth_change(self.waiting)

    # ------------------------------------------------------------------

    @property
    def waiting(self) -> int:
        """Jobs enqueued but not yet picked up by a worker (approximate:
        jobs between ``put`` and a worker's ``get`` are counted)."""
        return self._queue.qsize()

    @property
    def inflight(self) -> int:
        return self._inflight

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "workers": self.workers,
                "queue_depth": self.queue_depth,
                "waiting": self.waiting,
                "inflight": self._inflight,
                "completed": self._completed,
                "rejected": self._rejected,
                "worker_deaths": self._deaths,
                "ewma_seconds": self._ewma_seconds,
            }

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work; drain queued jobs, then stop workers."""
        if self._shutdown:
            return
        self._shutdown = True
        with self._lock:
            threads = list(self._threads)
        for _ in threads:
            self._queue.put(_STOP)
        if wait:
            for thread in threads:
                thread.join(timeout=10.0)
