"""``repro top`` — a terminal SLO observatory for a running service.

Polls a live server's ``/metrics`` (JSON), ``/slo``, ``/healthz``, and
``/debug/traces`` endpoints and renders one refreshing frame: request
rate and interpolated latency quantiles over the last interval, cache
hit rate, shard fan-out, per-objective burn rates with their alert
state, and the trace IDs of the slowest kept traces — the handles to
paste into ``/debug/trace/<id>``.

Everything here is pull-based and stateless on the server side: the
dashboard keeps the previous metrics sample and differences cumulative
counters/histograms itself, so any number of ``repro top`` instances
can watch one server.  Frame computation (:func:`compute_frame`) is
pure — tests feed it canned samples; only :func:`run_top` talks HTTP.
"""

from __future__ import annotations

import http.client
import json
import sys
from time import monotonic, sleep
from typing import Any, Callable, Mapping, TextIO

from repro.obs.metrics import parse_label_text

__all__ = [
    "fetch_json",
    "take_sample",
    "compute_frame",
    "render_frame",
    "run_top",
    "bucket_quantile",
]

#: ANSI "clear screen, cursor home" — used only on real terminals.
_CLEAR = "\x1b[2J\x1b[H"


def fetch_json(
    host: str, port: int, path: str, timeout: float = 2.0
) -> Any | None:
    """GET ``path`` and parse the JSON body; ``None`` on any failure.

    The dashboard must keep rendering while the server restarts or
    sheds load, so connection errors and non-JSON bodies degrade to
    missing data rather than raising.
    """
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        payload = response.read()
        return json.loads(payload)
    except (OSError, http.client.HTTPException, json.JSONDecodeError):
        return None
    finally:
        connection.close()


def take_sample(host: str, port: int) -> dict[str, Any]:
    """One poll of every endpoint a frame needs, timestamped."""
    return {
        "time": monotonic(),
        "metrics": fetch_json(host, port, "/metrics"),
        "slo": fetch_json(host, port, "/slo"),
        "healthz": fetch_json(host, port, "/healthz"),
        "traces": fetch_json(
            host, port, "/debug/traces?sort=slowest&limit=5"
        ),
    }


# ----------------------------------------------------------------------
# Frame computation (pure)


def _instrument(
    sample: Mapping[str, Any] | None, kind: str, name: str
) -> dict[str, Any]:
    metrics = (sample or {}).get("metrics") or {}
    return (metrics.get("metrics") or {}).get(kind, {}).get(name, {})


def _counter_total(
    sample: Mapping[str, Any] | None,
    name: str,
    where: Callable[[dict[str, str]], bool] | None = None,
) -> float:
    total = 0.0
    for text, value in _instrument(sample, "counters", name).items():
        if where is None or where(dict(parse_label_text(text))):
            total += value
    return total


def _merged_buckets(
    sample: Mapping[str, Any] | None, name: str
) -> dict[str, float]:
    """Sum one histogram's per-bucket counts across all label series."""
    merged: dict[str, float] = {}
    for series in _instrument(sample, "histograms", name).values():
        for bound, count in series.get("buckets", {}).items():
            merged[bound] = merged.get(bound, 0.0) + count
    return merged


def _bucket_delta(
    prev: Mapping[str, float], cur: Mapping[str, float]
) -> dict[str, float]:
    return {
        bound: max(0.0, count - prev.get(bound, 0.0))
        for bound, count in cur.items()
    }


def bucket_quantile(buckets: Mapping[str, float], q: float) -> float:
    """Interpolated quantile from per-bucket (non-cumulative) counts.

    Walks bounds ascending and interpolates linearly inside the bucket
    the target rank falls in — the same estimate Prometheus's
    ``histogram_quantile`` makes.  The ``+inf`` bucket cannot be
    interpolated; it reports its lower bound (the largest finite one).
    """
    finite = sorted(
        (float(bound), count)
        for bound, count in buckets.items()
        if bound not in ("+inf", "+Inf")
    )
    inf_count = sum(
        count for bound, count in buckets.items() if bound in ("+inf", "+Inf")
    )
    total = sum(count for _, count in finite) + inf_count
    if total <= 0:
        return 0.0
    target = q * total
    seen = 0.0
    lower = 0.0
    for bound, count in finite:
        if count > 0 and seen + count >= target:
            fraction = (target - seen) / count
            return lower + (bound - lower) * fraction
        seen += count
        lower = bound
    return lower  # rank landed in +inf: best estimate is the last bound


def compute_frame(
    prev: Mapping[str, Any] | None, cur: Mapping[str, Any]
) -> dict[str, Any]:
    """Difference two samples into one displayable frame.

    With ``prev=None`` (the first poll) rates fall back to cumulative
    since server start, using ``/healthz`` uptime as the interval.
    """
    uptime = ((cur.get("healthz") or {}).get("uptime_seconds")) or 0.0
    interval = (
        cur["time"] - prev["time"] if prev is not None else max(uptime, 1e-9)
    )
    interval = max(interval, 1e-9)

    def delta(name: str, where=None) -> float:
        now = _counter_total(cur, name, where)
        if prev is None:
            return now
        return max(0.0, now - _counter_total(prev, name, where))

    requests = delta("server_requests_total")
    errors = delta(
        "server_requests_total",
        lambda labels: labels.get("status", "").startswith("5"),
    )
    hits = delta("server_cache_hits_total")
    misses = delta("server_cache_misses_total")
    shard_tasks = delta("shard_tasks_total")
    queries = delta(
        "server_requests_total",
        lambda labels: labels.get("endpoint") == "query",
    )

    cur_buckets = _merged_buckets(cur, "server_request_seconds")
    buckets = (
        _bucket_delta(_merged_buckets(prev, "server_request_seconds"), cur_buckets)
        if prev is not None
        else cur_buckets
    )

    slo_rows = []
    for name, snap in ((cur.get("slo") or {}).get("objectives") or {}).items():
        slo_rows.append(
            {
                "name": name,
                "fast_burn": round(snap["fast"]["burn"], 2),
                "slow_burn": round(snap["slow"]["burn"], 2),
                "threshold": snap["burn_threshold"],
                "active": snap["fast_burn_active"],
            }
        )

    traces = (cur.get("traces") or {}).get("traces") or []
    lookups = hits + misses
    return {
        "interval": round(interval, 3),
        "qps": round(requests / interval, 2),
        "error_rate": round(errors / requests, 4) if requests else 0.0,
        "latency_ms": {
            "p50": round(bucket_quantile(buckets, 0.50) * 1e3, 1),
            "p95": round(bucket_quantile(buckets, 0.95) * 1e3, 1),
            "p99": round(bucket_quantile(buckets, 0.99) * 1e3, 1),
        },
        "cache_hit_rate": round(hits / lookups, 4) if lookups else None,
        "shard_fanout": round(shard_tasks / queries, 2) if queries else None,
        "health": ((cur.get("healthz") or {}).get("status")) or "unknown",
        "slo": sorted(slo_rows, key=lambda row: row["name"]),
        "slowest_traces": [
            {
                "trace_id": t.get("trace_id"),
                "duration_ms": round((t.get("duration") or 0.0) * 1e3, 1),
                "endpoint": t.get("endpoint"),
                "status": t.get("status"),
                "reasons": t.get("reasons"),
            }
            for t in traces[:5]
        ],
        "reachable": cur.get("metrics") is not None,
    }


def render_frame(frame: Mapping[str, Any]) -> str:
    """One frame as fixed-width terminal text."""
    if not frame.get("reachable"):
        return "server unreachable — retrying..."
    lat = frame["latency_ms"]
    hit = frame["cache_hit_rate"]
    fanout = frame["shard_fanout"]
    lines = [
        f"health {frame['health']:<10}  qps {frame['qps']:>8.1f}  "
        f"errors {frame['error_rate'] * 100:5.1f}%  "
        f"(last {frame['interval']:.1f}s)",
        f"latency  p50 {lat['p50']:>7.1f} ms   p95 {lat['p95']:>7.1f} ms   "
        f"p99 {lat['p99']:>7.1f} ms",
        f"cache hit {hit * 100:5.1f}%" if hit is not None else "cache hit   n/a",
    ]
    if fanout is not None:
        lines[-1] += f"   shard fan-out {fanout:.1f}x"
    lines.append("")
    lines.append("objective      fast-burn  slow-burn  threshold  alert")
    for row in frame["slo"]:
        alert = "FAST BURN" if row["active"] else "ok"
        lines.append(
            f"{row['name']:<14} {row['fast_burn']:>9.2f}  "
            f"{row['slow_burn']:>9.2f}  {row['threshold']:>9.1f}  {alert}"
        )
    if frame["slowest_traces"]:
        lines.append("")
        lines.append("slowest kept traces (GET /debug/trace/<id>):")
        for t in frame["slowest_traces"]:
            reasons = ",".join(t.get("reasons") or ())
            lines.append(
                f"  {t['duration_ms']:>8.1f} ms  {t['trace_id']}  "
                f"{t.get('endpoint') or '?'} {t.get('status') or '?'}  [{reasons}]"
            )
    return "\n".join(lines)


def run_top(
    host: str,
    port: int,
    interval: float = 2.0,
    iterations: int | None = None,
    json_output: bool = False,
    stream: TextIO | None = None,
) -> None:
    """Poll and render until interrupted (or ``iterations`` frames).

    ``iterations`` bounds the loop for scripts and CI; ``json_output``
    emits one frame per line as JSON instead of the ANSI dashboard.
    """
    out = stream if stream is not None else sys.stdout
    clear = not json_output and out.isatty()
    prev: dict[str, Any] | None = None
    frames = 0
    try:
        while iterations is None or frames < iterations:
            cur = take_sample(host, port)
            frame = compute_frame(prev, cur)
            if json_output:
                out.write(json.dumps(frame) + "\n")
            else:
                if clear:
                    out.write(_CLEAR)
                out.write(
                    f"repro top — {host}:{port} "
                    f"(refresh {interval:g}s, ctrl-c to quit)\n\n"
                )
                out.write(render_frame(frame) + "\n")
            out.flush()
            prev = cur
            frames += 1
            if iterations is None or frames < iterations:
                sleep(interval)
    except KeyboardInterrupt:
        pass
