"""An open-loop HTTP load generator for the query service.

Replays a query mix against ``POST /query`` at a target QPS and reports
the latency distribution (p50/p95/p99), per-status counts, and dropped
connections.  Open-loop means request start times are fixed on a global
schedule (``start + i/qps``) rather than waiting for responses — the
arrival pattern real traffic has — so a slow server accumulates
concurrent requests instead of silently throttling the generator, and
saturation shows up as 429s/timeouts rather than a lower achieved QPS.

Stdlib-only (:mod:`http.client`); reused keep-alive connections, one per
worker thread.
"""

from __future__ import annotations

import http.client
import json
import random
import threading
from dataclasses import dataclass, field
from time import monotonic, sleep
from typing import Any, Callable, Mapping, Sequence

__all__ = ["LoadResult", "run_load", "percentile"]

#: Longest single backoff honored from a ``Retry-After`` hint (seconds).
_RETRY_AFTER_CAP = 1.0

#: Backoff bounds after a transport-level failure (refused, reset, …):
#: doubles per consecutive failure so a dead server is not hammered at
#: full schedule speed, capped so recovery is noticed quickly.
_TRANSPORT_BACKOFF_BASE = 0.05
_TRANSPORT_BACKOFF_CAP = 0.5


def percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sequence."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1, round(fraction * (len(sorted_values) - 1))))
    return sorted_values[rank]


@dataclass
class LoadResult:
    """What one load run measured."""

    target_qps: float
    duration: float  #: wall seconds the run actually took
    sent: int = 0
    dropped: int = 0  #: connection-level failures (refused, reset, timeout)
    #: ``dropped`` broken down as a distinct outcome class: every
    #: transport-level failure also counts here, labelled by exception
    #: kind, so a run against a dying backend shows *how* requests were
    #: lost (``ConnectionRefusedError`` vs ``ConnectionResetError`` vs a
    #: read timeout), not just that they were.
    transport_errors: int = 0
    transport_error_kinds: dict[str, int] = field(default_factory=dict)
    retried: int = 0  #: 429/503 responses retried after their Retry-After
    status_counts: dict[str, int] = field(default_factory=dict)
    latencies: list[float] = field(default_factory=list)  #: seconds, ok only
    cache_hits: int = 0
    #: (latency_seconds, trace_id) per 200 response that carried one.
    trace_samples: list[tuple[float, str]] = field(default_factory=list)
    #: The write stream (``ingest_rate > 0``): ``POST /ingest`` requests
    #: on their own open-loop schedule, measured separately so write
    #: latency never pollutes the query percentiles.
    ingest_rate: float = 0.0
    ingest_sent: int = 0
    ingest_dropped: int = 0
    #: write-side 429/503s retried after their ``Retry-After`` hint —
    #: what a lagging replica's backpressure looks like to the writer.
    ingest_retried: int = 0
    ingest_status_counts: dict[str, int] = field(default_factory=dict)
    ingest_latencies: list[float] = field(default_factory=list)

    @property
    def ingest_ok(self) -> int:
        return self.ingest_status_counts.get("200", 0)

    @property
    def completed(self) -> int:
        return sum(self.status_counts.values())

    @property
    def achieved_qps(self) -> float:
        return self.completed / self.duration if self.duration > 0 else 0.0

    def slowest_traces(self, n: int = 5) -> list[dict[str, Any]]:
        """The trace IDs of the ``n`` slowest traced requests — the
        handles to paste into ``/debug/trace/<id>`` when a run's tail
        looks bad."""
        worst = sorted(self.trace_samples, key=lambda s: -s[0])[: max(0, n)]
        return [
            {"latency_ms": round(latency * 1e3, 3), "trace_id": trace_id}
            for latency, trace_id in worst
        ]

    def summary(self) -> dict[str, Any]:
        ordered = sorted(self.latencies)
        ordered_ingest = sorted(self.ingest_latencies)
        return {
            "target_qps": self.target_qps,
            "achieved_qps": round(self.achieved_qps, 2),
            "duration_seconds": round(self.duration, 3),
            "sent": self.sent,
            "completed": self.completed,
            "dropped": self.dropped,
            "transport_errors": self.transport_errors,
            "transport_error_kinds": dict(
                sorted(self.transport_error_kinds.items())
            ),
            "retried": self.retried,
            "status_counts": dict(sorted(self.status_counts.items())),
            "cache_hits": self.cache_hits,
            "latency_ms": {
                "p50": round(percentile(ordered, 0.50) * 1e3, 3),
                "p95": round(percentile(ordered, 0.95) * 1e3, 3),
                "p99": round(percentile(ordered, 0.99) * 1e3, 3),
                "mean": round(
                    (sum(ordered) / len(ordered) * 1e3) if ordered else 0.0, 3
                ),
            },
            "slowest_traces": self.slowest_traces(),
            **(
                {
                    "ingest": {
                        "target_rate": self.ingest_rate,
                        "sent": self.ingest_sent,
                        "ok": self.ingest_ok,
                        "dropped": self.ingest_dropped,
                        "retried": self.ingest_retried,
                        "status_counts": dict(
                            sorted(self.ingest_status_counts.items())
                        ),
                        # Same quantile set as the read side, kept in a
                        # separate block so write commits (WAL fsync +
                        # replication ship) never blur the read tail.
                        "latency_ms": {
                            "p50": round(
                                percentile(ordered_ingest, 0.50) * 1e3, 3
                            ),
                            "p95": round(
                                percentile(ordered_ingest, 0.95) * 1e3, 3
                            ),
                            "p99": round(
                                percentile(ordered_ingest, 0.99) * 1e3, 3
                            ),
                            "mean": round(
                                (
                                    sum(ordered_ingest)
                                    / len(ordered_ingest)
                                    * 1e3
                                )
                                if ordered_ingest
                                else 0.0,
                                3,
                            ),
                        },
                    }
                }
                if self.ingest_rate > 0
                else {}
            ),
        }

    def format_report(self) -> str:
        s = self.summary()
        lat = s["latency_ms"]
        lines = [
            f"sent {s['sent']} requests in {s['duration_seconds']:.1f}s "
            f"(target {s['target_qps']:g} QPS, achieved {s['achieved_qps']:g})",
            f"statuses: "
            + ", ".join(f"{k}: {v}" for k, v in s["status_counts"].items())
            + f"; retried: {s['retried']}; dropped: {s['dropped']}; "
            f"cache hits: {s['cache_hits']}",
        ]
        if s["transport_errors"]:
            kinds = ", ".join(
                f"{kind}: {count}"
                for kind, count in s["transport_error_kinds"].items()
            )
            lines.append(f"transport errors: {s['transport_errors']} ({kinds})")
        lines += [
            f"latency  p50 {lat['p50']:.1f} ms   p95 {lat['p95']:.1f} ms   "
            f"p99 {lat['p99']:.1f} ms   mean {lat['mean']:.1f} ms",
        ]
        if s["slowest_traces"]:
            lines.append("slowest traces:")
            lines.extend(
                f"  {t['latency_ms']:8.1f} ms  trace {t['trace_id']}"
                for t in s["slowest_traces"]
            )
        ingest = s.get("ingest")
        if ingest:
            wlat = ingest["latency_ms"]
            lines.append(
                f"ingest   sent {ingest['sent']} (target "
                f"{ingest['target_rate']:g}/s), ok {ingest['ok']}, retried "
                f"{ingest['retried']}, dropped {ingest['dropped']}"
            )
            lines.append(
                f"ingest latency  p50 {wlat['p50']:.1f} ms   "
                f"p95 {wlat['p95']:.1f} ms   p99 {wlat['p99']:.1f} ms   "
                f"mean {wlat['mean']:.1f} ms"
            )
        return "\n".join(lines)


#: Vocabulary for generated ingest documents — ordinary words so the
#: appended text exercises the same token paths the seeded plays do.
_INGEST_WORDS = (
    "alarum", "battle", "crown", "daggers", "exeunt", "fortune",
    "ghost", "herald", "kingdom", "midnight", "prophecy", "throne",
)


def _ingest_op(
    rng: random.Random, prefix: str, serial: int, acked: list[str]
) -> dict[str, Any]:
    """The next deterministic write: mostly appends of small play-shaped
    documents, with occasional updates and deletes of already-acked ids
    (so the corpus both grows and churns under load).  ``prefix``
    carries the run's seed so back-to-back runs against one server never
    collide on document ids."""
    roll = rng.random()
    line = " ".join(rng.choice(_INGEST_WORDS) for _ in range(rng.randrange(3, 9)))
    if acked and roll < 0.10:
        return {"op": "delete", "id": acked.pop(rng.randrange(len(acked)))}
    if acked and roll < 0.25:
        doc_id = acked[rng.randrange(len(acked))]
        return {
            "op": "update",
            "id": doc_id,
            "text": f"<speech><speaker>Loadgen</speaker>"
            f"<line>{line}</line></speech>",
        }
    return {
        "op": "append",
        "id": f"{prefix}-{serial}",
        "text": f"<speech><speaker>Loadgen</speaker>"
        f"<line>{line}</line></speech>",
    }


class _Clock:
    """Hands out schedule slots: worker i-th request fires at start+i/qps."""

    def __init__(self, qps: float, deadline_at: float):
        self._interval = 1.0 / qps
        self._start = monotonic()
        self._deadline_at = deadline_at
        self._next = 0
        self._lock = threading.Lock()

    def next_slot(self) -> float | None:
        """The absolute time of the next unclaimed slot, or None when
        the run's duration has elapsed."""
        with self._lock:
            slot = self._start + self._next * self._interval
            if slot >= self._deadline_at:
                return None
            self._next += 1
            return slot


def run_load(
    host: str,
    port: int,
    queries: Mapping[str, str] | Sequence[str],
    corpus: str | None = None,
    qps: float = 20.0,
    duration: float = 3.0,
    concurrency: int = 4,
    optimize: bool = False,
    use_cache: bool = True,
    timeout: float = 10.0,
    seed: int = 7,
    max_retries: int = 2,
    on_response: Callable[[int, bytes], None] | None = None,
    ingest_rate: float = 0.0,
    on_ingest_response: Callable[[list[dict[str, Any]], int, bytes], None]
    | None = None,
) -> LoadResult:
    """Drive ``host:port`` with ``queries`` at ``qps`` for ``duration``
    seconds using ``concurrency`` keep-alive client threads.

    Queries are drawn from the mix uniformly at random (seeded — two
    runs replay the same request sequence).  Returns a
    :class:`LoadResult`; connection-level failures count as ``dropped``
    and never raise.

    Flow-control responses (``429``/``503``) are retried up to
    ``max_retries`` times, honoring the server's ``Retry-After`` hint
    capped at 1s; each retry counts in ``LoadResult.retried`` and only
    the final status lands in ``status_counts``.  ``on_response``, when
    given, is called with ``(status, body_bytes)`` for every final
    response — the hook the chaos harness uses to verify payloads.

    ``ingest_rate > 0`` adds a write mix: one dedicated writer thread
    POSTs single-op ``/ingest`` batches on its own open-loop schedule
    (same start-time discipline as the query stream, so a slow commit
    path shows up as concurrent writes backing up, not a lower write
    rate).  Writes are deterministic by ``seed`` — mostly appends of
    small play-shaped documents, with occasional updates/deletes of
    already-acknowledged ids.  Write-side ``429``/``503`` responses
    (e.g. ``replica_lagging`` backpressure) are retried with the same
    capped ``Retry-After`` discipline as reads, counted in
    ``LoadResult.ingest_retried``.  ``on_ingest_response(ops, status,
    body)`` sees every final write outcome; write latencies land in
    ``LoadResult.ingest_latencies``, never in the query percentiles.
    """
    if qps <= 0:
        raise ValueError("qps must be positive")
    pool = list(queries.values()) if isinstance(queries, Mapping) else list(queries)
    if not pool:
        raise ValueError("the query mix is empty")
    rng = random.Random(seed)
    # Pre-draw the request sequence so randomness is schedule-independent.
    planned = [pool[rng.randrange(len(pool))] for _ in range(int(qps * duration) + concurrency)]
    result = LoadResult(target_qps=qps, duration=0.0, ingest_rate=ingest_rate)
    result_lock = threading.Lock()
    started = monotonic()
    clock = _Clock(qps, started + duration)
    ingest_clock = (
        _Clock(ingest_rate, started + duration) if ingest_rate > 0 else None
    )

    def ingest_worker() -> None:
        # A single writer keeps the op stream deterministic by seed:
        # delete/update targets depend only on which earlier writes were
        # acknowledged, never on thread interleaving.
        connection = http.client.HTTPConnection(host, port, timeout=timeout)
        write_rng = random.Random(seed + 0x1096)
        acked: list[str] = []
        serial = 0
        try:
            while True:
                assert ingest_clock is not None
                slot = ingest_clock.next_slot()
                if slot is None:
                    return
                delay = slot - monotonic()
                if delay > 0:
                    sleep(delay)
                ops = [_ingest_op(write_rng, f"loadgen-{seed}", serial, acked)]
                serial += 1
                body = json.dumps({"corpus": corpus, "ops": ops})
                sent_at = monotonic()
                try:
                    retries_left = max(0, max_retries)
                    while True:
                        connection.request(
                            "POST",
                            "/ingest",
                            body=body,
                            headers={"Content-Type": "application/json"},
                        )
                        response = connection.getresponse()
                        payload = response.read()
                        if response.status in (429, 503) and retries_left > 0:
                            # A replicated server answers 503 with a
                            # Retry-After while replicas are lagging;
                            # honor the hint (capped) like the read side
                            # does instead of dropping the write.
                            hint = response.getheader("Retry-After")
                            try:
                                retry_delay = float(hint) if hint else 0.1
                            except ValueError:
                                retry_delay = 0.1
                            retries_left -= 1
                            with result_lock:
                                result.ingest_retried += 1
                            sleep(
                                max(0.0, min(retry_delay, _RETRY_AFTER_CAP))
                            )
                            continue
                        break
                    latency = monotonic() - sent_at
                    status = str(response.status)
                    with result_lock:
                        result.ingest_sent += 1
                        result.ingest_status_counts[status] = (
                            result.ingest_status_counts.get(status, 0) + 1
                        )
                        if response.status == 200:
                            result.ingest_latencies.append(latency)
                    if response.status == 200 and ops[0]["op"] == "append":
                        acked.append(ops[0]["id"])
                    if on_ingest_response is not None:
                        on_ingest_response(ops, response.status, payload)
                except (OSError, http.client.HTTPException):
                    with result_lock:
                        result.ingest_sent += 1
                        result.ingest_dropped += 1
                    connection.close()
                    connection = http.client.HTTPConnection(
                        host, port, timeout=timeout
                    )
        finally:
            connection.close()

    def worker() -> None:
        connection = http.client.HTTPConnection(host, port, timeout=timeout)
        # Transport-failure cooldown: after a refused/reset connection
        # the worker stops touching the socket until `blocked_until`
        # (capped exponential backoff), fast-failing the requests that
        # come due meanwhile.  The schedule keeps its pace — every slot
        # is still counted — but a dead server sees one reconnect
        # attempt per backoff window instead of the full request rate.
        transport_failures = 0
        blocked_until: float | None = None
        blocked_kind = ""
        try:
            while True:
                slot = clock.next_slot()
                if slot is None:
                    return
                delay = slot - monotonic()
                if delay > 0:
                    sleep(delay)
                if blocked_until is not None:
                    if monotonic() < blocked_until:
                        with result_lock:
                            result.sent += 1
                            result.dropped += 1
                            result.transport_errors += 1
                            result.transport_error_kinds[blocked_kind] = (
                                result.transport_error_kinds.get(blocked_kind, 0)
                                + 1
                            )
                        continue
                    blocked_until = None
                index_query = planned[
                    min(len(planned) - 1, int((slot - started) * qps))
                ]
                body = json.dumps(
                    {
                        "query": index_query,
                        "corpus": corpus,
                        "optimize": optimize,
                        "use_cache": use_cache,
                    }
                )
                sent_at = monotonic()
                try:
                    retries_left = max(0, max_retries)
                    while True:
                        connection.request(
                            "POST",
                            "/query",
                            body=body,
                            headers={"Content-Type": "application/json"},
                        )
                        response = connection.getresponse()
                        payload = response.read()
                        if response.status in (429, 503) and retries_left > 0:
                            # Honor the server's backpressure hint
                            # (capped) instead of giving up immediately.
                            hint = response.getheader("Retry-After")
                            try:
                                delay = float(hint) if hint else 0.1
                            except ValueError:
                                delay = 0.1
                            retries_left -= 1
                            with result_lock:
                                result.retried += 1
                            sleep(max(0.0, min(delay, _RETRY_AFTER_CAP)))
                            continue
                        break
                    latency = monotonic() - sent_at
                    status = str(response.status)
                    hit = False
                    trace_id = None
                    if response.status == 200:
                        try:
                            parsed = json.loads(payload)
                            hit = bool(parsed.get("cached"))
                            trace_id = parsed.get("trace_id")
                        except (json.JSONDecodeError, UnicodeDecodeError):
                            pass
                    transport_failures = 0
                    blocked_until = None
                    with result_lock:
                        result.sent += 1
                        result.status_counts[status] = (
                            result.status_counts.get(status, 0) + 1
                        )
                        if response.status == 200:
                            result.latencies.append(latency)
                            if hit:
                                result.cache_hits += 1
                            if trace_id:
                                result.trace_samples.append((latency, trace_id))
                    if on_response is not None:
                        on_response(response.status, payload)
                except (OSError, http.client.HTTPException) as exc:
                    # A distinct outcome class, not just a drop: refused
                    # and reset connections are what a killed backend
                    # process looks like from out here.
                    kind = type(exc).__name__
                    with result_lock:
                        result.sent += 1
                        result.dropped += 1
                        result.transport_errors += 1
                        result.transport_error_kinds[kind] = (
                            result.transport_error_kinds.get(kind, 0) + 1
                        )
                    connection.close()
                    connection = http.client.HTTPConnection(
                        host, port, timeout=timeout
                    )
                    # Arm the cooldown: capped so a respawned server is
                    # noticed within half a second.
                    backoff = min(
                        _TRANSPORT_BACKOFF_CAP,
                        _TRANSPORT_BACKOFF_BASE * 2.0**transport_failures,
                    )
                    transport_failures += 1
                    blocked_kind = kind
                    blocked_until = monotonic() + backoff
        finally:
            connection.close()

    threads = [
        threading.Thread(target=worker, name=f"loadgen-{i}", daemon=True)
        for i in range(max(1, concurrency))
    ]
    if ingest_clock is not None:
        threads.append(
            threading.Thread(
                target=ingest_worker, name="loadgen-ingest", daemon=True
            )
        )
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    result.duration = monotonic() - started
    return result
