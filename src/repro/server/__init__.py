"""The serving layer: a concurrent query service over the region engine.

The region algebra is read-only and side-effect-free, which makes a
query over an immutable corpus a pure function — the property this
package exploits end to end:

* :mod:`repro.server.service` — :class:`QueryService`: named corpora
  with generation counters, a bounded worker pool, per-request
  deadlines, and an LRU result cache;
* :mod:`repro.server.pool` — :class:`WorkerPool` with admission
  control (reject-early instead of queue-forever);
* :mod:`repro.server.cache` — :class:`ResultCache`, thread-safe LRU
  keyed by (corpus, generation, normalized plan);
* :mod:`repro.server.http` — stdlib JSON/HTTP endpoints
  (``/query /explain /corpora /healthz /metrics``);
* :mod:`repro.server.loadgen` — an open-loop load generator reporting
  p50/p95/p99.

``repro serve`` and ``repro loadgen`` (see :mod:`repro.engine.cli`) are
the operational entry points; ``docs/server.md`` is the operator guide.
"""

from repro.server.cache import CacheStats, ResultCache
from repro.server.config import CorpusSpec, ServerConfig
from repro.server.http import QueryHTTPServer, create_server, render_prometheus
from repro.server.loadgen import LoadResult, percentile, run_load
from repro.server.pool import WorkerPool
from repro.server.service import QueryService, UnknownCorpusError

__all__ = [
    "CacheStats",
    "CorpusSpec",
    "LoadResult",
    "QueryHTTPServer",
    "QueryService",
    "ResultCache",
    "ServerConfig",
    "UnknownCorpusError",
    "WorkerPool",
    "create_server",
    "percentile",
    "render_prometheus",
    "run_load",
]
