"""The JSON/HTTP front end over :class:`~repro.server.QueryService`.

Stdlib-only: a :class:`http.server.ThreadingHTTPServer` whose handler
threads do admission, parsing, and cache probes, while evaluation runs
on the service's bounded worker pool.  Endpoints:

====================================  =======================================
``POST /query``                       evaluate; body ``{"query": …,
                                      "corpus": …, "optimize": bool,
                                      "deadline": seconds,
                                      "use_cache": bool}``
``GET /query?q=…&corpus=…``           same, for curl convenience
``POST /explain``                     the optimizer's plan, not executed
``GET /corpora``                      served corpora with generations
``POST /corpora/<name>/reload``       hot-reload one corpus (bumps its
                                      generation, invalidates its cache)
``POST /ingest``                      commit one mutation batch; body
                                      ``{"corpus": …, "ops": [{"op":
                                      "append"|"update"|"delete",
                                      "id": …, "text": …}, …]}`` —
                                      all-or-nothing, WAL'd, publishes
                                      a new generation
``POST /compact``                     merge segments, drop tombstones,
                                      checkpoint + truncate the WAL;
                                      body ``{"corpus": …}``
``GET /healthz``                      liveness + pool/cache/config state
``GET /metrics``                      the shared registry snapshot (JSON);
                                      ``?format=prometheus`` for text
``GET /backends``                     frontier topology: placement,
                                      breakers, latency, subprocesses
``POST /shard/query``                 backend-role RPC: evaluate query
                                      texts against one shard slice;
                                      ``X-Repro-Deadline`` /
                                      ``X-Repro-Trace`` headers carry
                                      the cross-process context; a
                                      ``floor`` body field is the read's
                                      generation floor (``503
                                      replica_lagging`` when behind)
``POST /replicate/apply``             backend-role RPC: apply one
                                      shipped WAL batch at the
                                      frontier's generation
``POST /replicate/snapshot``          backend-role RPC: replace the
                                      replica wholesale (catch-up /
                                      anti-entropy repair)
``POST /replicate/status``            backend-role RPC: applied
                                      generation + per-group content
                                      checksums for the sweep
====================================  =======================================

Status mapping: ``400`` parse/validation errors (including rejected
ingest batches and ingest-disabled corpora), ``404`` unknown corpus,
document, or path, ``408`` client-requested deadline ≤ 0, ``409``
duplicate document id or a write to a corpus whose remote backends are
not replicated (``ingest_unreplicated``), ``429`` admission
rejection (with ``Retry-After``), ``503`` load shed, corpus breaker
open, or a shard replica behind the read floor (``replica_lagging``;
all with ``Retry-After``), ``504`` query deadline exceeded, ``500``
worker crashes, injected faults, and anything unexpected.

Every error envelope carries a stable machine-readable ``code``
(``{"error": …, "code": …}``) from the taxonomy in
:mod:`repro.errors` — documented in ``docs/server.md`` — so clients
branch on codes, not on prose or transport status.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlsplit

from repro.errors import (
    CorpusUnavailableError,
    DuplicateDocumentError,
    IngestUnreplicatedError,
    QueryTimeout,
    ReplicaLaggingError,
    ReproError,
    ServerOverloadedError,
    ServiceUnhealthyError,
    UnknownDocumentError,
    error_code,
)
from repro.obs.metrics import parse_label_text
from repro.server.service import QueryService, UnknownCorpusError

__all__ = ["QueryHTTPServer", "create_server", "render_prometheus"]


def _escape_label_value(value: str) -> str:
    """Prometheus label-value escaping: backslash, quote, newline."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def render_prometheus(snapshot: dict[str, Any]) -> str:
    """The registry snapshot in Prometheus text exposition format.

    Real-scraper correct: label values are escaped (backslash, double
    quote, newline), histogram ``_bucket`` series are cumulative and end
    in the ``+Inf`` bucket equal to ``_count``, and buckets carrying an
    exemplar get the OpenMetrics ``# {trace_id="…"} value timestamp``
    suffix linking the aggregate to one kept trace.
    """
    lines: list[str] = []
    metrics = snapshot.get("metrics", snapshot)

    def labelize(text: str, extra: str = "") -> str:
        rendered = ",".join(
            f'{k}="{_escape_label_value(v)}"'
            for k, v in parse_label_text(text)
            if k
        )
        if extra:
            rendered = f"{rendered},{extra}" if rendered else extra
        return "{" + rendered + "}" if rendered else ""

    for name, series in metrics.get("counters", {}).items():
        lines.append(f"# TYPE {name} counter")
        for labels, value in sorted(series.items()):
            lines.append(f"{name}{labelize(labels)} {value}")
    for name, series in metrics.get("gauges", {}).items():
        lines.append(f"# TYPE {name} gauge")
        for labels, value in sorted(series.items()):
            lines.append(f"{name}{labelize(labels)} {value}")
    for name, series in metrics.get("histograms", {}).items():
        lines.append(f"# TYPE {name} histogram")
        for labels, data in sorted(series.items()):
            exemplars = data.get("exemplars", {})
            cumulative = 0
            for bound, count in data["buckets"].items():
                cumulative += count
                le = "+Inf" if bound == "+inf" else bound
                le_label = 'le="%s"' % le
                line = f"{name}_bucket{labelize(labels, le_label)} {cumulative}"
                exemplar = exemplars.get(bound)
                if exemplar is not None:
                    line += (
                        f' # {{trace_id="{exemplar["trace_id"]}"}} '
                        f'{exemplar["value"]} {exemplar["timestamp"]:.3f}'
                    )
                lines.append(line)
            lines.append(f"{name}_sum{labelize(labels)} {data['sum']}")
            lines.append(f"{name}_count{labelize(labels)} {data['count']}")
    return "\n".join(lines) + "\n"


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the service; one instance per request."""

    protocol_version = "HTTP/1.1"
    server: "QueryHTTPServer"

    # ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        url = urlsplit(self.path)
        try:
            if url.path == "/healthz":
                health = self.server.service.healthz()
                # Liveness stays 200 while degraded (still serving);
                # only an unhealthy or stopping service answers 503.
                status = (
                    503
                    if health["status"] in ("unhealthy", "shutting-down")
                    else 200
                )
                self._json(status, health)
            elif url.path == "/corpora":
                self._json(200, {"corpora": self.server.service.corpora_info()})
            elif url.path == "/metrics":
                self._metrics(url)
            elif url.path == "/slo":
                self._json(200, self.server.service.slo_snapshot())
            elif url.path == "/debug/traces":
                self._trace_listing(url)
            elif url.path.startswith("/debug/trace/"):
                self._trace_tree(url.path[len("/debug/trace/") :])
            elif url.path == "/backends":
                self._json(200, self.server.service.backends_info())
            elif url.path == "/query":
                self._query_from_params(url)
            else:
                self._json(
                    404,
                    {"error": f"no such endpoint {url.path!r}", "code": "not_found"},
                )
        except Exception as exc:  # noqa: BLE001 - last-resort boundary
            self._error(exc)

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        url = urlsplit(self.path)
        try:
            if url.path == "/query":
                self._run(self._body(), explain_only=False)
            elif url.path == "/ingest":
                self._ingest(self._body())
            elif url.path == "/compact":
                body = self._body()
                self._json(
                    200, self.server.service.compact(body.get("corpus"))
                )
            elif url.path == "/shard/query":
                self._shard_query(self._body())
            elif url.path == "/replicate/apply":
                self._replicate_apply(self._body())
            elif url.path == "/replicate/snapshot":
                self._replicate_snapshot(self._body())
            elif url.path == "/replicate/status":
                body = self._body()
                self._json(
                    200,
                    self.server.service.replicate_status(
                        body.get("corpus"), int(body.get("groups", 1))
                    ),
                )
            elif url.path == "/explain":
                self._run(self._body(), explain_only=True)
            elif url.path.startswith("/corpora/") and url.path.endswith(
                "/reload"
            ):
                name = url.path[len("/corpora/") : -len("/reload")]
                self._json(200, self.server.service.reload_corpus(name))
            else:
                self._json(
                    404,
                    {"error": f"no such endpoint {url.path!r}", "code": "not_found"},
                )
        except Exception as exc:  # noqa: BLE001 - last-resort boundary
            self._error(exc)

    # ------------------------------------------------------------------

    def _metrics(self, url) -> None:
        snapshot = self.server.service.metrics_snapshot()
        params = parse_qs(url.query)
        if params.get("format", [""])[0] == "prometheus":
            body = render_prometheus(snapshot).encode("utf-8")
            self._raw(200, body, "text/plain; version=0.0.4")
        else:
            self._json(200, snapshot)

    def _trace_listing(self, url) -> None:
        service = self.server.service
        if service.traces is None:
            self._json(
                404,
                {"error": "tracing is not enabled", "code": "tracing_disabled"},
            )
            return
        params = parse_qs(url.query)
        limit = int(params.get("limit", ["50"])[0])
        sort = params.get("sort", ["recent"])[0]
        self._json(
            200,
            {
                "traces": service.trace_summaries(limit=limit, sort=sort),
                "stats": service.traces.stats(),
            },
        )

    def _trace_tree(self, trace_id: str) -> None:
        service = self.server.service
        if service.traces is None:
            self._json(
                404,
                {"error": "tracing is not enabled", "code": "tracing_disabled"},
            )
            return
        tree = service.trace_tree(trace_id)
        if tree is None:
            self._json(
                404,
                {
                    "error": f"no kept trace {trace_id!r}",
                    "code": "trace_not_found",
                },
            )
            return
        self._json(200, tree)

    def _query_from_params(self, url) -> None:
        params = parse_qs(url.query)

        def first(key: str, default: str | None = None) -> str | None:
            return params.get(key, [default])[0]

        query = first("q") or first("query")
        if not query:
            self._json(
                400,
                {"error": "missing query parameter 'q'", "code": "invalid_request"},
            )
            return
        request: dict[str, Any] = {"query": query, "corpus": first("corpus")}
        if first("optimize") is not None:
            request["optimize"] = first("optimize") not in ("0", "false", "no")
        if first("deadline") is not None:
            request["deadline"] = float(first("deadline"))
        self._run(request, explain_only=False)

    def _body(self) -> dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b"{}"
        try:
            body = json.loads(raw.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ReproError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(body, dict):
            raise ReproError("request body must be a JSON object")
        return body

    def _run(self, request: dict[str, Any], explain_only: bool) -> None:
        query = request.get("query")
        if not isinstance(query, str) or not query.strip():
            self._json(
                400,
                {"error": "request needs a non-empty 'query'", "code": "invalid_request"},
            )
            return
        deadline = request.get("deadline")
        if deadline is not None:
            deadline = float(deadline)
        response = self.server.service.execute(
            query,
            corpus=request.get("corpus"),
            optimize=request.get("optimize"),
            deadline=deadline,
            use_cache=bool(request.get("use_cache", True)),
            explain_only=explain_only,
        )
        self._json(200, response)

    def _ingest(self, body: dict[str, Any]) -> None:
        ops = body.get("ops")
        if not isinstance(ops, list) or not ops:
            self._json(
                400,
                {
                    "error": "ingest request needs a non-empty 'ops' list",
                    "code": "invalid_request",
                },
            )
            return
        response = self.server.service.ingest(body.get("corpus"), ops)
        self._json(200, response)

    def _shard_query(self, body: dict[str, Any]) -> None:
        """The backend half of the frontier's shard RPC."""
        queries = body.get("queries")
        if not isinstance(queries, list) or not all(
            isinstance(q, str) for q in queries
        ):
            self._json(
                400,
                {
                    "error": "shard request needs a 'queries' list of strings",
                    "code": "invalid_request",
                },
            )
            return
        deadline = None
        header = self.headers.get("X-Repro-Deadline")
        if header is not None:
            try:
                deadline = float(header)
            except ValueError:
                deadline = None  # advisory context, never fails the query
        trace = None
        header = self.headers.get("X-Repro-Trace")
        if header is not None:
            try:
                trace = json.loads(header)
            except json.JSONDecodeError:
                trace = None  # a bad trace header never fails the query
        response = self.server.service.shard_query(
            body.get("corpus"),
            int(body.get("group", 0)),
            int(body.get("groups", 1)),
            queries,
            str(body.get("want", "sets")),
            dict(body.get("bounds") or {}),
            deadline=deadline,
            trace=trace,
            floor=int(body.get("floor", 0)),
        )
        self._json(200, response)

    def _replicate_apply(self, body: dict[str, Any]) -> None:
        """The backend half of WAL log shipping (one batch)."""
        ops = body.get("ops")
        if not isinstance(ops, list):
            self._json(
                400,
                {
                    "error": "replicate request needs an 'ops' list",
                    "code": "invalid_request",
                },
            )
            return
        response = self.server.service.replicate_apply(
            body.get("corpus"),
            int(body.get("seq", 0)),
            ops,
            int(body.get("generation", 0)),
            str(body.get("checksum", "")),
        )
        self._json(200, response)

    def _replicate_snapshot(self, body: dict[str, Any]) -> None:
        """The backend half of snapshot catch-up / divergence repair."""
        state = body.get("state")
        if not isinstance(state, dict):
            self._json(
                400,
                {
                    "error": "replicate request needs a 'state' object",
                    "code": "invalid_request",
                },
            )
            return
        response = self.server.service.replicate_snapshot(
            body.get("corpus"), state, int(body.get("generation", 0))
        )
        self._json(200, response)

    # ------------------------------------------------------------------

    def _error(self, exc: Exception) -> None:
        code = error_code(exc)
        # When tracing is on, the service stamped the exception with its
        # request's trace id — included so a 5xx is joinable against the
        # kept trace at /debug/trace/<id>.
        envelope: dict[str, Any] = {"error": str(exc), "code": code}
        trace_id = getattr(exc, "trace_id", None)
        if trace_id is not None:
            envelope["trace_id"] = trace_id
        if isinstance(exc, ServerOverloadedError):
            self._json(
                429,
                {**envelope, "retry_after": exc.retry_after},
                extra_headers={"Retry-After": f"{exc.retry_after:.3f}"},
            )
        elif isinstance(exc, ReplicaLaggingError):
            # A shard read refused for being behind the generation
            # floor: retryable — the replica is catching up.  The
            # corpus/applied/floor fields let the frontier's transport
            # rebuild the typed error for its failover machinery.
            self._json(
                503,
                {
                    **envelope,
                    "corpus": exc.corpus,
                    "applied": exc.applied,
                    "floor": exc.floor,
                    "retry_after": exc.retry_after,
                },
                extra_headers={"Retry-After": f"{exc.retry_after:.3f}"},
            )
        elif isinstance(exc, (ServiceUnhealthyError, CorpusUnavailableError)):
            self._json(
                503,
                {**envelope, "retry_after": exc.retry_after},
                extra_headers={"Retry-After": f"{exc.retry_after:.3f}"},
            )
        elif isinstance(exc, QueryTimeout):
            self._json(504, {**envelope, "budget": exc.budget})
        elif isinstance(exc, (UnknownCorpusError, UnknownDocumentError)):
            self._json(404, envelope)
        elif isinstance(exc, (DuplicateDocumentError, IngestUnreplicatedError)):
            self._json(409, envelope)
        elif isinstance(exc, ReproError) and code in (
            "worker_crashed",
            "fault_injected",
            "worker_killed",
        ):
            self._json(500, envelope)
        elif isinstance(exc, ReproError):
            self._json(400, envelope)
        elif isinstance(exc, ValueError):
            self._json(
                400, {**envelope, "error": str(exc), "code": "invalid_request"}
            )
        else:
            self._json(500, {**envelope, "error": f"internal error: {exc!r}"})

    def _json(
        self,
        status: int,
        payload: dict[str, Any],
        extra_headers: dict[str, str] | None = None,
    ) -> None:
        self._raw(
            status,
            json.dumps(payload).encode("utf-8"),
            "application/json",
            extra_headers,
        )

    def _raw(
        self,
        status: int,
        body: bytes,
        content_type: str,
        extra_headers: dict[str, str] | None = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for key, value in (extra_headers or {}).items():
            self.send_header(key, value)
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if self.server.verbose:
            super().log_message(format, *args)


class QueryHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`QueryService`."""

    daemon_threads = True

    def __init__(
        self,
        service: QueryService,
        host: str = "127.0.0.1",
        port: int = 0,
        verbose: bool = False,
    ):
        self.service = service
        self.verbose = verbose
        super().__init__((host, port), _Handler)

    @property
    def bound_port(self) -> int:
        return self.server_address[1]

    def serve_in_background(self) -> threading.Thread:
        """Start ``serve_forever`` on a daemon thread (tests, benches)."""
        thread = threading.Thread(
            target=self.serve_forever, name="repro-http", daemon=True
        )
        thread.start()
        return thread

    def stop(self) -> None:
        """Shut down the listener, then drain the service's pool."""
        self.shutdown()
        self.server_close()
        self.service.close()


def create_server(
    service: QueryService,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
) -> QueryHTTPServer:
    """Bind (but do not start) the HTTP server; ``port=0`` picks a free
    port, readable afterwards as ``server.bound_port``."""
    return QueryHTTPServer(service, host=host, port=port, verbose=verbose)
