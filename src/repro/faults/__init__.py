"""Fault injection and resilience machinery (see ``docs/robustness.md``).

Three pieces:

* :mod:`repro.faults.registry` — a deterministic, seedable registry of
  named fault points sprinkled through storage, the evaluator, the
  worker pool, and the service cache.  Inactive (the production state)
  every point is one ``is None`` check.
* :mod:`repro.faults.retry` — bounded exponential-backoff retry and a
  per-corpus circuit breaker, used by the service around corpus
  (re)loads and job dispatch.
* :mod:`repro.faults.chaos` — the ``repro chaos`` harness: drive the
  load generator against a fault-injected service and check the
  invariants the paper's deletion/reduction theorems make checkable
  (no corrupted responses, bounded error rate, full recovery).
"""

from repro.faults.registry import (
    FAULT_MODES,
    FAULT_POINTS,
    FaultRegistry,
    FaultSpec,
    activate,
    active,
    deactivate,
    fire,
    injected_faults,
)
from repro.faults.retry import CircuitBreaker, RetryPolicy, retry_call

__all__ = [
    "FAULT_MODES",
    "FAULT_POINTS",
    "FaultRegistry",
    "FaultSpec",
    "activate",
    "active",
    "deactivate",
    "fire",
    "injected_faults",
    "CircuitBreaker",
    "RetryPolicy",
    "retry_call",
]
