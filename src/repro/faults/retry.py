"""Retry with exponential backoff + jitter, and a circuit breaker.

The two small pieces of resilience machinery the serving layer leans on
(``docs/robustness.md``):

* :func:`retry_call` — bounded attempts, exponential backoff with
  multiplicative jitter, a hard cap per delay, and an overall *sleep
  budget* so a retry loop can never hold a request hostage;
* :class:`CircuitBreaker` — the classic closed → open → half-open
  machine, one per served corpus, so a corpus whose storage keeps
  failing stops being hammered and is re-probed on a timer.

Both are dependency-free and clock-injectable for deterministic tests.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass
from time import monotonic, sleep as _sleep
from typing import Any, Callable, Iterable

__all__ = ["RetryPolicy", "retry_call", "CircuitBreaker"]

_RNG = random.Random(0x5EED)


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to try: attempts, backoff shape, and a sleep budget.

    The delay before retry ``i`` (0-based) is
    ``min(max_delay, base_delay * multiplier**i)`` scaled by a uniform
    jitter factor in ``[1 - jitter, 1 + jitter]``.  ``budget`` caps the
    *total* seconds slept across all retries; a delay that would exceed
    it aborts the loop early (the last error propagates).
    """

    attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 1.0
    jitter: float = 0.25
    budget: float | None = 10.0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("retry policy needs at least one attempt")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("retry delays cannot be negative")
        if not (0.0 <= self.jitter <= 1.0):
            raise ValueError("jitter must be within [0, 1]")

    def delay(self, retry_index: int, rng: random.Random | None = None) -> float:
        raw = min(self.max_delay, self.base_delay * self.multiplier**retry_index)
        if self.jitter:
            rng = rng if rng is not None else _RNG
            raw *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return max(0.0, raw)


def retry_call(
    fn: Callable[[], Any],
    *,
    policy: RetryPolicy | None = None,
    retry_on: Iterable[type[BaseException]] = (Exception,),
    op: str = "",
    rng: random.Random | None = None,
    on_retry: Callable[[int, float, BaseException], None] | None = None,
    on_exhausted: Callable[[BaseException], None] | None = None,
    sleep: Callable[[float], None] = _sleep,
) -> Any:
    """Call ``fn`` until it succeeds or the policy is exhausted.

    Only exceptions in ``retry_on`` are retried; anything else
    propagates immediately.  ``on_retry(retry_index, delay, exc)`` runs
    before each backoff sleep (the service hooks metrics there);
    ``on_exhausted(exc)`` runs once when giving up, after which the last
    exception is re-raised.
    """
    policy = policy if policy is not None else RetryPolicy()
    retry_on = tuple(retry_on)
    slept = 0.0
    last: BaseException | None = None
    for attempt in range(policy.attempts):
        try:
            return fn()
        except retry_on as exc:
            last = exc
            if attempt + 1 >= policy.attempts:
                break
            delay = policy.delay(attempt, rng)
            if policy.budget is not None and slept + delay > policy.budget:
                break
            if on_retry is not None:
                on_retry(attempt, delay, exc)
            sleep(delay)
            slept += delay
    assert last is not None  # the loop either returned or set ``last``
    if on_exhausted is not None:
        on_exhausted(last)
    raise last


class CircuitBreaker:
    """Closed → open → half-open, driven by consecutive failures.

    * **closed** — everything flows; ``failure_threshold`` consecutive
      :meth:`record_failure` calls trip it open.
    * **open** — :meth:`allow` answers ``False`` until
      ``reset_timeout`` seconds pass, then the breaker half-opens.
    * **half-open** — exactly one caller gets ``True`` (the probe);
      its :meth:`record_success` closes the breaker, its
      :meth:`record_failure` re-opens it (restarting the timer).
      Concurrent callers fast-fail (``allow() == False``) while the
      probe is in flight.  A probe whose caller never reports back
      (crashed, abandoned, lost) would otherwise wedge the breaker in
      half-open forever, so an unreported probe expires after
      ``reset_timeout`` and the next :meth:`allow` hands out a fresh
      one.

    ``on_transition(old, new)`` fires under the lock whenever the state
    changes — the service mirrors it into ``breaker_state`` /
    ``breaker_transitions_total`` metrics.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    #: Gauge encoding used by the metrics mirror.
    STATE_VALUES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout: float = 10.0,
        clock: Callable[[], float] = monotonic,
        on_transition: Callable[[str, str], None] | None = None,
    ):
        if failure_threshold < 1:
            raise ValueError("failure threshold must be at least 1")
        if reset_timeout <= 0:
            raise ValueError("reset timeout must be positive")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        self._probe_taken = False
        self._probe_started: float | None = None
        self._trips = 0

    # ------------------------------------------------------------------

    def _transition(self, new: str) -> None:
        old, self._state = self._state, new
        if new == self.OPEN:
            self._opened_at = self._clock()
            self._trips += 1
        if new == self.HALF_OPEN:
            self._probe_taken = False
            self._probe_started = None
        if old != new and self._on_transition is not None:
            self._on_transition(old, new)

    def allow(self) -> bool:
        """May a protected call proceed right now?"""
        with self._lock:
            if self._state == self.CLOSED:
                return True
            if self._state == self.OPEN:
                assert self._opened_at is not None
                if self._clock() - self._opened_at < self.reset_timeout:
                    return False
                self._transition(self.HALF_OPEN)
            # Half-open: exactly one probe in flight at a time.  A
            # probe nobody reported on within reset_timeout is treated
            # as lost and replaced — otherwise one crashed caller would
            # wedge the breaker half-open forever.
            if self._probe_taken:
                if (
                    self._probe_started is None
                    or self._clock() - self._probe_started < self.reset_timeout
                ):
                    return False
            self._probe_taken = True
            self._probe_started = self._clock()
            return True

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._probe_taken = False
            self._probe_started = None
            if self._state != self.CLOSED:
                self._transition(self.CLOSED)

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            self._probe_taken = False
            self._probe_started = None
            if self._state == self.HALF_OPEN:
                self._transition(self.OPEN)
            elif (
                self._state == self.CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._transition(self.OPEN)

    # ------------------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    @property
    def trips(self) -> int:
        """How many times this breaker has opened."""
        with self._lock:
            return self._trips

    def seconds_until_probe(self) -> float:
        """How long until an open breaker half-opens (0 otherwise)."""
        with self._lock:
            if self._state != self.OPEN or self._opened_at is None:
                return 0.0
            return max(
                0.0, self.reset_timeout - (self._clock() - self._opened_at)
            )

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "trips": self._trips,
                "reset_timeout": self.reset_timeout,
            }
