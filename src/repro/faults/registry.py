"""A deterministic, seedable fault-injection registry.

The serving stack is sprinkled with named **fault points** — call sites
that ask the active registry "should something go wrong here?" before
doing their real work:

====================  ==================================================
``storage.read``      reading an index file (:func:`load_instance`)
``storage.write``     writing an index file (:func:`save_instance`)
``index.build``       building an engine from text or a saved index
``evaluator.step``    one operator evaluation inside the evaluator
``vm.kernel``         one kernel execution inside the plan VM (repro.vm)
``pool.worker``       a worker picking up a job from the pool queue
``cache.get``         a result-cache probe in the query service
``shard.task``        one per-shard task of the sharded executor
``backend.rpc``       one frontier→backend shard RPC (any transport)
``replication.ship``  one WAL-batch ship from the frontier to a replica
====================  ==================================================

With no registry active (the default, and the only production state)
every fault point is a single ``is None`` check — the hot paths stay
within noise of their unfaulted cost (bench E13 guards the request
path).  Activating a registry arms any subset of points with
:class:`FaultSpec`\\ s; each spec fires with a configured probability
drawn from one seeded RNG, so a chaos run with a fixed seed injects a
reproducible fault load.

Four fault modes:

* ``error`` — raise a typed :class:`~repro.errors.FaultInjected`;
* ``latency`` — sleep ``spec.latency`` seconds, then continue;
* ``corrupt`` — deterministically flip bytes in the payload flowing
  through the point (only points that pass data, e.g. storage reads);
* ``kill`` — raise :class:`~repro.errors.WorkerKilled`; the worker
  pool translates this into the death (and replacement) of the worker
  thread that drew it.

Every fire lands in the ``fault_injections_total{point,mode}`` counter
of the registry's metrics registry (the process-global one by default),
so ``/metrics`` tells you exactly what the chaos harness did.
"""

from __future__ import annotations

import random
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import sleep
from typing import TYPE_CHECKING, Any, Iterator

from repro.errors import FaultInjected, ReproError, WorkerKilled

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry

__all__ = [
    "FAULT_POINTS",
    "FAULT_MODES",
    "FaultSpec",
    "FaultRegistry",
    "activate",
    "deactivate",
    "active",
    "fire",
    "injected_faults",
]

#: The named fault points the codebase exposes.
FAULT_POINTS = (
    "storage.read",
    "storage.write",
    "index.build",
    "evaluator.step",
    "vm.kernel",
    "pool.worker",
    "cache.get",
    "shard.task",
    "backend.rpc",
    "replication.ship",
)

#: The ways a fault point can misbehave.
FAULT_MODES = ("error", "latency", "corrupt", "kill")


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault: where, how, how often, and for how long.

    ``probability`` is the chance of firing per traversal of the point;
    ``max_fires`` bounds the total number of fires (``None`` = no
    budget), letting a chaos scenario inject exactly-N faults.
    ``skip_fires`` swallows the first N would-be fires — with
    ``probability=1.0`` and ``max_fires=1`` this targets exactly the
    (N+1)-th traversal, which is how the WAL recovery property test
    kills a writer at every record boundary in turn.
    """

    point: str
    mode: str = "error"
    probability: float = 1.0
    latency: float = 0.0  #: seconds slept per fire in ``latency`` mode
    max_fires: int | None = None
    skip_fires: int = 0
    error: type[ReproError] = field(default=FaultInjected)

    def __post_init__(self) -> None:
        if self.point not in FAULT_POINTS:
            raise ReproError(
                f"unknown fault point {self.point!r} "
                f"(available: {', '.join(FAULT_POINTS)})"
            )
        if self.mode not in FAULT_MODES:
            raise ReproError(
                f"unknown fault mode {self.mode!r} "
                f"(available: {', '.join(FAULT_MODES)})"
            )
        if not (0.0 <= self.probability <= 1.0):
            raise ReproError("fault probability must be within [0, 1]")
        if self.latency < 0:
            raise ReproError("fault latency cannot be negative")
        if self.max_fires is not None and self.max_fires < 0:
            raise ReproError("max_fires cannot be negative")
        if self.skip_fires < 0:
            raise ReproError("skip_fires cannot be negative")


def corrupt_bytes(data: bytes, rng: random.Random) -> bytes:
    """Flip a deterministic handful of bytes (at least one)."""
    if not data:
        return data
    out = bytearray(data)
    flips = 1 + len(out) // 512
    for _ in range(flips):
        out[rng.randrange(len(out))] ^= 0xFF
    return bytes(out)


class FaultRegistry:
    """Armed fault specs plus the seeded RNG that rolls them.

    Thread-safe: the serving layer fires points from HTTP handler
    threads, pool workers, and reload threads concurrently; all RNG
    draws and counters sit behind one lock (fault points are not hot
    enough for that to matter — the *disabled* path never takes it).
    """

    def __init__(self, seed: int = 0, metrics: "MetricsRegistry | None" = None):
        from repro.obs.metrics import FAULT_INJECTIONS_TOTAL, global_registry

        self.seed = seed
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._specs: list[FaultSpec] = []
        self._spec_fires: list[int] = []
        self._spec_skips: list[int] = []
        self._fires: dict[tuple[str, str], int] = {}
        self._counter = (metrics or global_registry()).counter(
            FAULT_INJECTIONS_TOTAL, help="injected faults by point and mode"
        )

    # ------------------------------------------------------------------

    def arm(self, spec: FaultSpec | None = None, /, **kwargs: Any) -> FaultSpec:
        """Arm one fault spec (given directly, or built from kwargs)."""
        if spec is None:
            spec = FaultSpec(**kwargs)
        elif kwargs:
            raise ReproError("pass a FaultSpec or keyword arguments, not both")
        with self._lock:
            self._specs.append(spec)
            self._spec_fires.append(0)
            self._spec_skips.append(0)
        return spec

    def disarm(self, point: str | None = None) -> None:
        """Drop every spec at ``point`` (or all specs)."""
        with self._lock:
            if point is None:
                self._specs, self._spec_fires, self._spec_skips = [], [], []
                return
            kept = [
                (s, n, k)
                for s, n, k in zip(
                    self._specs, self._spec_fires, self._spec_skips
                )
                if s.point != point
            ]
            self._specs = [s for s, _, _ in kept]
            self._spec_fires = [n for _, n, _ in kept]
            self._spec_skips = [k for _, _, k in kept]

    # ------------------------------------------------------------------

    def fire(self, point: str, data: bytes | None = None) -> bytes | None:
        """Traverse ``point``: roll every armed spec there, in order.

        Returns ``data`` (possibly corrupted); raises for ``error`` and
        ``kill`` fires.  Latency fires sleep outside the lock.
        """
        delay = 0.0
        raise_exc: ReproError | None = None
        fired: list[str] = []
        with self._lock:
            for i, spec in enumerate(self._specs):
                if spec.point != point:
                    continue
                if (
                    spec.max_fires is not None
                    and self._spec_fires[i] >= spec.max_fires
                ):
                    continue
                if spec.probability < 1.0 and self._rng.random() >= spec.probability:
                    continue
                if self._spec_skips[i] < spec.skip_fires:
                    self._spec_skips[i] += 1
                    continue
                self._spec_fires[i] += 1
                key = (point, spec.mode)
                self._fires[key] = self._fires.get(key, 0) + 1
                fired.append(spec.mode)
                if spec.mode == "latency":
                    delay += spec.latency
                elif spec.mode == "corrupt":
                    if data is not None:
                        data = corrupt_bytes(data, self._rng)
                elif spec.mode == "kill":
                    raise_exc = WorkerKilled(point)
                    break
                else:  # "error"
                    error = spec.error
                    raise_exc = (
                        error(point)
                        if issubclass(error, FaultInjected)
                        else error(f"injected fault at {point!r}")
                    )
                    break
        for mode in fired:
            self._counter.inc(point=point, mode=mode)
        if delay > 0:
            sleep(delay)
        if raise_exc is not None:
            raise raise_exc
        return data

    # ------------------------------------------------------------------

    def fires(self, point: str | None = None, mode: str | None = None) -> int:
        """Total fires, optionally filtered by point and/or mode."""
        with self._lock:
            return sum(
                count
                for (p, m), count in self._fires.items()
                if (point is None or p == point) and (mode is None or m == mode)
            )

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready view of armed specs and fire counts (``/healthz``)."""
        with self._lock:
            return {
                "seed": self.seed,
                "armed": [
                    {
                        "point": s.point,
                        "mode": s.mode,
                        "probability": s.probability,
                        "latency": s.latency,
                        "max_fires": s.max_fires,
                        "fires": n,
                    }
                    for s, n in zip(self._specs, self._spec_fires)
                ],
                "fires": {
                    f"{p}:{m}": count for (p, m), count in sorted(self._fires.items())
                },
            }


# ----------------------------------------------------------------------
# The process-wide active registry.  ``_active`` is read (unlocked) on
# hot paths — a plain attribute load of None — and written only by
# activate()/deactivate(), which tests and the chaos harness serialize.
# ----------------------------------------------------------------------

_active: FaultRegistry | None = None


def activate(registry: FaultRegistry) -> FaultRegistry:
    """Install ``registry`` as the process's active fault registry."""
    global _active
    _active = registry
    return registry


def deactivate() -> None:
    """Remove the active registry; every fault point goes quiet."""
    global _active
    _active = None


def active() -> FaultRegistry | None:
    return _active


def fire(point: str, data: bytes | None = None) -> bytes | None:
    """Module-level fault point used by call sites that are not hot
    enough to inline the ``_active`` check themselves."""
    registry = _active
    if registry is None:
        return data
    return registry.fire(point, data)


@contextmanager
def injected_faults(
    *specs: FaultSpec, seed: int = 0, metrics: "MetricsRegistry | None" = None
) -> Iterator[FaultRegistry]:
    """Scoped activation: arm ``specs``, yield the registry, deactivate.

    The unit tests' front door::

        with injected_faults(FaultSpec("storage.read", "error")) as reg:
            ...
    """
    registry = FaultRegistry(seed=seed, metrics=metrics)
    for spec in specs:
        registry.arm(spec)
    activate(registry)
    try:
        yield registry
    finally:
        deactivate()
