"""The chaos harness behind ``repro chaos``.

Runs the real HTTP serving stack — :class:`~repro.server.QueryService`
behind :class:`~repro.server.http.QueryHTTPServer`, driven by the
open-loop load generator — through three phases:

1. **warmup** — no faults.  The harness computes its oracles here: the
   expected result of every query in the mix from the engine itself,
   and a *k-reduced-instance* oracle from the paper's reduction theorem
   (Thm 4.4 / Prop 4.5): for order-free queries, a region ``r`` is in
   ``e(I)`` iff ``h(r)`` is in ``e(I')`` for the reduced instance
   ``I'`` — an algebraic invariant any corrupted response is unlikely
   to satisfy.
2. **fault** — a seeded :class:`~repro.faults.FaultRegistry` is armed:
   evaluator errors and latency, worker kills, storage read
   errors/corruption, and an ``index.build`` outage budgeted to fail
   exactly enough reloads to trip the corpus circuit breaker.  A
   reload-churn thread hammers ``reload_corpus`` throughout, and
   (optionally) the index file on disk is deliberately corrupted to
   force the quarantine + rebuild-from-source path.
3. **recovery** — faults deactivated; the same load continues and the
   service must climb back: breaker closed, health ``healthy``, zero
   server errors in the tail of the phase.

Every ``200`` response from every phase is verified against both
oracles; :class:`ChaosReport.violations` lists everything that went
wrong.  The whole run is deterministic for a fixed seed (modulo
thread scheduling, which the invariants are written to tolerate).
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from pathlib import Path
from time import monotonic, sleep
from typing import Any

from repro.algebra import ast as A
from repro.algebra.evaluator import Evaluator
from repro.algebra.parser import parse
from repro.errors import ReproError
from repro.faults.registry import FaultRegistry, FaultSpec, activate, deactivate

__all__ = ["ChaosConfig", "ChaosReport", "run_chaos"]


@dataclass(frozen=True)
class ChaosConfig:
    """Knobs for one chaos run (defaults match the CI smoke job)."""

    seed: int = 0
    scale: int = 2  #: size of each generated play
    documents: int = 3  #: plays concatenated into the corpus (forest roots)
    shards: int = 2  #: per-corpus shard count the service evaluates with
    qps: float = 60.0
    concurrency: int = 4
    warmup_seconds: float = 1.0
    fault_seconds: float = 4.0
    recovery_seconds: float = 3.0
    #: per-traversal probabilities for the armed fault points
    storage_fault_rate: float = 0.05
    evaluator_fault_rate: float = 0.004  #: per evaluator *node*
    vm_fault_rate: float = 0.004  #: per VM *kernel* execution
    vm_latency_rate: float = 0.01
    latency_fault_rate: float = 0.02
    latency_seconds: float = 0.002
    kill_rate: float = 0.01
    shard_fault_rate: float = 0.05  #: per shard *task*; retry/degrade absorbs
    reload_period: float = 0.4
    corrupt_disk: bool = True  #: deliberately corrupt the index file once
    breaker_reset: float = 1.0
    workdir: str | None = None  #: where the index corpus lives (tempdir)


@dataclass
class ChaosReport:
    """What one chaos run observed; ``ok`` iff no invariant broke."""

    seed: int = 0
    duration_seconds: float = 0.0
    responses: dict[str, dict[str, int]] = field(default_factory=dict)
    verified_responses: int = 0
    corrupted_responses: int = 0
    reduction_checks: int = 0
    fault_fires: dict[str, int] = field(default_factory=dict)
    vm_kernel_faults: int = 0
    reloads: dict[str, int] = field(default_factory=dict)
    breaker_trips: int = 0
    breaker_final_state: str = ""
    worker_deaths: int = 0
    rebuilds: int = 0
    shard_task_errors: int = 0
    shard_retries: int = 0
    shard_degraded: int = 0
    traces_kept: int = 0
    fault_marked_traces: int = 0
    fault_marked_spans: int = 0  #: fault-marked ``shard.task`` spans kept
    slo: dict[str, Any] = field(default_factory=dict)
    slowest_traces: list[dict[str, Any]] = field(default_factory=list)
    health_states_seen: list[str] = field(default_factory=list)
    final_health: str = ""
    loadgen: dict[str, Any] = field(default_factory=dict)
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "seed": self.seed,
            "duration_seconds": round(self.duration_seconds, 2),
            "responses": self.responses,
            "verified_responses": self.verified_responses,
            "corrupted_responses": self.corrupted_responses,
            "reduction_checks": self.reduction_checks,
            "fault_fires": self.fault_fires,
            "vm_kernel_faults": self.vm_kernel_faults,
            "reloads": self.reloads,
            "breaker_trips": self.breaker_trips,
            "breaker_final_state": self.breaker_final_state,
            "worker_deaths": self.worker_deaths,
            "rebuilds": self.rebuilds,
            "shard_task_errors": self.shard_task_errors,
            "shard_retries": self.shard_retries,
            "shard_degraded": self.shard_degraded,
            "traces_kept": self.traces_kept,
            "fault_marked_traces": self.fault_marked_traces,
            "fault_marked_spans": self.fault_marked_spans,
            "slo": self.slo,
            "slowest_traces": self.slowest_traces,
            "health_states_seen": self.health_states_seen,
            "final_health": self.final_health,
            "loadgen": self.loadgen,
            "violations": self.violations,
        }

    def format_report(self) -> str:
        lines = [
            f"chaos run (seed {self.seed}) "
            f"{'PASSED' if self.ok else 'FAILED'} "
            f"in {self.duration_seconds:.1f}s",
            f"responses by phase: "
            + "; ".join(
                f"{phase}: "
                + ", ".join(f"{k}: {v}" for k, v in sorted(counts.items()))
                for phase, counts in self.responses.items()
            ),
            f"verified {self.verified_responses} responses "
            f"({self.reduction_checks} reduction-oracle checks), "
            f"{self.corrupted_responses} corrupted",
            f"faults fired: "
            + (
                ", ".join(
                    f"{k}: {v}" for k, v in sorted(self.fault_fires.items())
                )
                or "none"
            ),
            f"reloads: "
            + ", ".join(f"{k}: {v}" for k, v in sorted(self.reloads.items())),
            f"breaker: {self.breaker_trips} trip(s), final state "
            f"{self.breaker_final_state}; worker deaths: "
            f"{self.worker_deaths}; index rebuilds: {self.rebuilds}",
            f"vm: {self.vm_kernel_faults} kernel fault(s) injected into "
            "the compiled path (interpreter oracle held)",
            f"shards: {self.shard_task_errors} task error(s) injected, "
            f"{self.shard_retries} retried, {self.shard_degraded} "
            f"quer{'y' if self.shard_degraded == 1 else 'ies'} degraded "
            "to single-shard",
            f"traces: {self.traces_kept} kept, {self.fault_marked_traces} "
            f"fault-marked ({self.fault_marked_spans} fault span(s))",
            f"slo: "
            + (
                "; ".join(
                    f"{name}: {snap['activations']} fast-burn alert(s), "
                    f"{snap['bad_events']}/{snap['events']} bad"
                    for name, snap in sorted(self.slo.items())
                )
                or "disabled"
            ),
            f"health: {' -> '.join(self.health_states_seen)} "
            f"(final: {self.final_health})",
        ]
        if self.violations:
            lines.append("violations:")
            lines.extend(f"  - {v}" for v in self.violations)
        else:
            lines.append("violations: none")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Oracles.
# ----------------------------------------------------------------------


class _Oracles:
    """Baseline + reduction-theorem verification for query responses.

    Built during warmup from the fault-free engine.  ``verify`` checks a
    ``200`` payload (a) region-for-region against the fault-free
    baseline and (b), for order-free queries where a legal reduce step
    exists, against the k=0-reduced instance through the mapping ``h``
    (Theorem 4.4: order-free expressions cannot distinguish ``I`` from
    any reduced version).
    """

    def __init__(self, engine, queries: dict[str, str]):
        from repro.properties.reduction import (
            isomorphic_sibling_pairs,
            reduce_regions,
        )

        self.baseline: dict[str, set[tuple[int, int]]] = {}
        self.reduction: dict[str, set[tuple[int, int]]] = {}
        self._verdicts: dict[tuple[str, tuple], bool] = {}
        self.reduction_checks = 0
        instance = engine.instance
        self._instance_regions = [
            (r.left, r.right) for r in instance.all_regions()
        ]
        exprs: dict[str, A.Expr] = {}
        order_free: dict[str, A.Expr] = {}
        # Baseline truth comes from a plain single-shard evaluator, so a
        # sharded serving engine is checked against an independent path.
        baseline_evaluator = Evaluator("indexed", vm=False)
        for text in queries.values():
            expr = parse(text)
            exprs[text] = expr
            self.baseline[text] = {
                (r.left, r.right)
                for r in baseline_evaluator.evaluate(expr, instance)
            }
            if A.order_op_count(expr) == 0:
                order_free[text] = expr
        self._h: dict[tuple[int, int], tuple[int, int]] = {}
        if order_free:
            patterns = sorted(
                set().union(*(A.pattern_names(e) for e in order_free.values()))
            )
            pairs = isomorphic_sibling_pairs(instance, patterns)
            if pairs:
                keep, remove = pairs[0]
                reduced, mapping = reduce_regions(
                    instance, keep, remove, patterns
                )
                self._h = {
                    (r.left, r.right): (mapping[r].left, mapping[r].right)
                    for r in instance.all_regions()
                }
                evaluator = Evaluator("indexed", vm=False)
                for text, expr in order_free.items():
                    result = evaluator.evaluate(expr, reduced)
                    self.reduction[text] = {
                        (r.left, r.right) for r in result
                    }

    def verify(self, query: str, regions: list[list[int]]) -> list[str]:
        """Problems with one 200 payload (empty list = verified)."""
        if query not in self.baseline:
            return []  # not a mix query (should not happen)
        got = {(int(l), int(r)) for l, r in regions}
        key = (query, tuple(sorted(got)))
        if key in self._verdicts:
            return [] if self._verdicts[key] else ["(repeat of earlier corruption)"]
        problems: list[str] = []
        expected = self.baseline[query]
        if got != expected:
            missing = len(expected - got)
            extra = len(got - expected)
            problems.append(
                f"response for {query!r} disagrees with the fault-free "
                f"baseline ({missing} missing, {extra} extra regions)"
            )
        reduced_result = self.reduction.get(query)
        if reduced_result is not None:
            self.reduction_checks += 1
            for pair in self._instance_regions:
                if (pair in got) != (self._h[pair] in reduced_result):
                    problems.append(
                        f"response for {query!r} violates the reduction "
                        f"theorem at region {pair}: r in e(I) must equal "
                        "h(r) in e(I')"
                    )
                    break
        self._verdicts[key] = not problems
        return problems


# ----------------------------------------------------------------------
# The run.
# ----------------------------------------------------------------------


def _build_corpus(config: ChaosConfig, workdir: Path):
    """Generate a multi-play document, index it to disk, return the spec.

    Several plays are concatenated so the instance is a multi-root
    forest the sharded executor can actually cut — a single play is one
    top-level tree and degenerates to a single segment.
    """
    import random

    from repro.engine.session import Engine
    from repro.engine.storage import save_instance
    from repro.server.config import CorpusSpec
    from repro.workloads.corpora import generate_play

    scale = max(1, config.scale)
    rng = random.Random(config.seed)
    text = "\n".join(
        generate_play(
            rng,
            acts=scale,
            scenes_per_act=scale,
            speeches_per_scene=2 * scale,
            lines_per_speech=3,
        )
        for _ in range(max(1, config.documents))
    )
    source_path = workdir / "play.tagged"
    source_path.write_text(text, encoding="utf-8")
    engine = Engine.from_tagged_text(text)
    index_path = workdir / "play.json"
    save_instance(engine.instance, index_path)
    return CorpusSpec(
        name="chaos",
        kind="index",
        path=str(index_path),
        source=str(source_path),
        source_format="tagged",
    )


def run_chaos(config: ChaosConfig | None = None) -> ChaosReport:
    """Run the three-phase chaos scenario; see the module docstring."""
    import tempfile

    from repro.server.config import ServerConfig
    from repro.server.http import create_server
    from repro.server.service import QueryService
    from repro.workloads.queries import PLAY_QUERIES

    config = config if config is not None else ChaosConfig()
    report = ChaosReport(seed=config.seed)
    started = monotonic()
    owned_tmp = None
    if config.workdir is None:
        owned_tmp = tempfile.TemporaryDirectory(prefix="repro-chaos-")
        workdir = Path(owned_tmp.name)
    else:
        workdir = Path(config.workdir)
        workdir.mkdir(parents=True, exist_ok=True)
    try:
        spec = _build_corpus(config, workdir)
        server_config = ServerConfig(
            workers=4,
            queue_depth=32,
            cache_enabled=True,
            default_deadline=5.0,
            corpora=(spec,),
            retry_attempts=3,
            retry_base_delay=0.02,
            retry_max_delay=0.1,
            dispatch_retries=2,
            breaker_threshold=3,
            breaker_reset=config.breaker_reset,
            health_window=2.0,
            degraded_threshold=0.02,
            unhealthy_threshold=0.6,
            health_min_samples=8,
            shards=config.shards,
            # Tracing on with a roomy tail ring: every fault-marked
            # trace must survive the run for the fault-span invariant.
            tracing=True,
            trace_sample_rate=0.25,
            trace_tail_capacity=4096,
            # Tight SLO windows so a few seconds of injected errors can
            # trip the fast-burn alert within the fault phase.
            slo_fast_window=1.0,
            slo_slow_window=2.0,
            slo_burn_threshold=1.5,
            slo_min_samples=4,
        )
        service = QueryService(server_config)
        server = create_server(service, port=0)
        server.serve_in_background()
        try:
            _run_phases(config, report, service, server, PLAY_QUERIES, workdir)
        finally:
            server.stop()
    finally:
        deactivate()
        if owned_tmp is not None:
            owned_tmp.cleanup()
    report.duration_seconds = monotonic() - started
    return report


def _run_phases(config, report, service, server, queries, workdir) -> None:
    from repro.server.loadgen import run_load

    host, port = "127.0.0.1", server.bound_port
    handle = service._handle("chaos")
    oracles = _Oracles(handle.engine, queries)

    # Shared response collector; the phase label changes between runs.
    lock = threading.Lock()
    phase = {"name": "warmup"}

    def on_response(status: int, payload: bytes) -> None:
        with lock:
            counts = report.responses.setdefault(phase["name"], {})
            counts[str(status)] = counts.get(str(status), 0) + 1
        if status != 200:
            return
        try:
            body = json.loads(payload)
            query = body["query"]
            regions = body["regions"]
        except (ValueError, KeyError, UnicodeDecodeError):
            with lock:
                report.corrupted_responses += 1
                report.violations.append(
                    "a 200 response failed to parse as a query result"
                )
            return
        problems = oracles.verify(query, regions)
        with lock:
            report.verified_responses += 1
            if problems:
                report.corrupted_responses += 1
                report.violations.extend(problems)

    def load(phase_name: str, seconds: float, seed: int):
        phase["name"] = phase_name
        return run_load(
            host,
            port,
            queries,
            corpus="chaos",
            qps=config.qps,
            duration=seconds,
            concurrency=config.concurrency,
            use_cache=False,  # every 200 is a fresh evaluation
            seed=seed,
            on_response=on_response,
        )

    # Reload churn across all phases.
    stop_churn = threading.Event()
    reload_counts = {"ok": 0, "unavailable": 0, "failed": 0}

    def churn() -> None:
        while not stop_churn.wait(config.reload_period):
            try:
                service.reload_corpus("chaos")
                reload_counts["ok"] += 1
            except ReproError as exc:
                kind = (
                    "unavailable"
                    if getattr(exc, "code", "") == "corpus_unavailable"
                    else "failed"
                )
                reload_counts[kind] += 1

    churn_thread = threading.Thread(target=churn, name="chaos-churn", daemon=True)
    churn_thread.start()

    try:
        # Phase 1: warmup, no faults.
        load("warmup", config.warmup_seconds, config.seed + 1)

        # Phase 2: faults armed.
        registry = FaultRegistry(seed=config.seed)
        # An index.build outage budgeted to fail exactly breaker_threshold
        # reloads' worth of retries — trips the breaker, then clears, so
        # the half-open probe later succeeds even inside this phase.
        outage_fires = 3 * service.config.breaker_threshold
        registry.arm(
            FaultSpec("index.build", "error", probability=1.0, max_fires=outage_fires)
        )
        registry.arm(
            FaultSpec(
                "storage.read", "error", probability=config.storage_fault_rate
            )
        )
        registry.arm(
            FaultSpec(
                "storage.read", "corrupt", probability=config.storage_fault_rate
            )
        )
        registry.arm(
            FaultSpec(
                "evaluator.step",
                "error",
                probability=config.evaluator_fault_rate,
            )
        )
        registry.arm(
            FaultSpec(
                "evaluator.step",
                "latency",
                probability=config.latency_fault_rate,
                latency=config.latency_seconds,
            )
        )
        registry.arm(
            FaultSpec(
                "vm.kernel",
                "error",
                probability=config.vm_fault_rate,
            )
        )
        registry.arm(
            FaultSpec(
                "vm.kernel",
                "latency",
                probability=config.vm_latency_rate,
                latency=config.latency_seconds,
            )
        )
        registry.arm(
            FaultSpec("pool.worker", "kill", probability=config.kill_rate)
        )
        registry.arm(
            FaultSpec(
                "shard.task", "error", probability=config.shard_fault_rate
            )
        )
        activate(registry)
        smash_timer = None
        if config.corrupt_disk:
            # Half the fault phase in, smash the on-disk index so the
            # quarantine + rebuild-from-source path must run.
            def smash() -> None:
                index_path = Path(workdir) / "play.json"
                try:
                    raw = bytearray(index_path.read_bytes())
                    for i in range(0, len(raw), 97):
                        raw[i] ^= 0xFF
                    index_path.write_bytes(bytes(raw))
                except OSError:
                    pass

            smash_timer = threading.Timer(config.fault_seconds / 2, smash)
            smash_timer.start()
        fault_result = load("fault", config.fault_seconds, config.seed + 2)
        if smash_timer is not None:
            smash_timer.join(timeout=1.0)

        # Phase 3: recovery.
        deactivate()
        load("recovery-early", config.recovery_seconds / 2, config.seed + 3)
        tail_result = load(
            "recovery", config.recovery_seconds / 2, config.seed + 4
        )
        # Give the breaker time for its half-open probe via the churn
        # thread before taking final readings.
        deadline = monotonic() + max(2.0, 2 * config.breaker_reset)
        while (
            handle.breaker.state != "closed" and monotonic() < deadline
        ):
            sleep(0.05)
        report.loadgen = {
            "fault": fault_result.summary(),
            "recovery": tail_result.summary(),
        }
    finally:
        stop_churn.set()
        churn_thread.join(timeout=5.0)
        deactivate()

    # ------------------------------------------------------------------
    # Final readings + invariants.
    # ------------------------------------------------------------------
    report.reloads = dict(reload_counts)
    report.reduction_checks = oracles.reduction_checks
    report.fault_fires = dict(registry.snapshot()["fires"])
    report.breaker_trips = handle.breaker.trips
    report.breaker_final_state = handle.breaker.state
    report.worker_deaths = service.pool.stats()["worker_deaths"]
    snapshot = service.metrics_snapshot()["metrics"]["counters"]
    rebuilds = snapshot.get("index_rebuilds_total", {})
    report.rebuilds = int(sum(rebuilds.values()))
    report.shard_task_errors = registry.fires(point="shard.task", mode="error")
    report.vm_kernel_faults = registry.fires(point="vm.kernel", mode="error") + registry.fires(
        point="vm.kernel", mode="latency"
    )
    report.shard_retries = int(
        sum(snapshot.get("shard_task_retries_total", {}).values())
    )
    report.shard_degraded = int(
        sum(snapshot.get("shard_degraded_total", {}).values())
    )
    report.health_states_seen = service.health.states_seen()
    report.final_health = service.health.state
    report.slo = {
        name: monitor.snapshot()
        for name, monitor in service.slo.monitors.items()
    }
    if service.traces is not None:
        kept = service.traces.all()
        report.traces_kept = len(kept)
        for trace in kept:
            marked = sum(
                1
                for span in trace.root.walk()
                if span.name == "shard.task" and span.attributes.get("fault")
            )
            report.fault_marked_spans += marked
            if marked:
                report.fault_marked_traces += 1
        report.slowest_traces = [
            trace.to_summary() for trace in service.traces.slowest(5)
        ]

    fault_counts = report.responses.get("fault", {})
    server_errors = fault_counts.get("500", 0) + fault_counts.get("504", 0)
    # Only evaluator errors and worker kills can surface as 5xx query
    # responses; storage/index faults fail reloads, not queries.
    injected = (
        registry.fires(point="evaluator.step", mode="error")
        + registry.fires(point="vm.kernel", mode="error")
        + registry.fires(point="pool.worker", mode="kill")
    )
    sheds = fault_counts.get("503", 0)
    if server_errors > injected + sheds + 2:
        report.violations.append(
            f"fault-phase server errors ({server_errors}) exceed the "
            f"injected fault budget ({injected} fires + {sheds} shed + 2)"
        )
    if report.breaker_trips < 1:
        report.violations.append(
            "the corpus circuit breaker never tripped despite the "
            "index.build outage"
        )
    if report.breaker_final_state != "closed":
        report.violations.append(
            f"the circuit breaker did not recover (final state "
            f"{report.breaker_final_state!r})"
        )
    if config.corrupt_disk and report.rebuilds < 1:
        report.violations.append(
            "the corrupted index file was never rebuilt from source"
        )
    if report.vm_kernel_faults < 1:
        report.violations.append(
            "no vm.kernel fault ever fired — the compiled execution path "
            "was not exercised under chaos"
        )
    if report.shard_task_errors and not (
        report.shard_retries or report.shard_degraded
    ):
        report.violations.append(
            f"shard.task faults fired ({report.shard_task_errors}) but the "
            "sharded executor never retried or degraded a query"
        )
    # Every injected shard.task fault fires inside (or is synthesized
    # into) exactly one shard.task span, and any trace containing one is
    # tail-kept unconditionally — so the kept traces must account for
    # every fire.
    if report.shard_task_errors and report.fault_marked_spans < report.shard_task_errors:
        report.violations.append(
            f"only {report.fault_marked_spans} fault-marked shard.task "
            f"span(s) were kept for {report.shard_task_errors} injected "
            "shard.task fault(s) — the tracer lost fault attribution"
        )
    # With enough sustained 5xx the availability fast-burn alert must
    # have fired at least once; a small error count may legitimately
    # never align across both burn windows, so gate on volume.
    availability = report.slo.get("availability", {})
    if server_errors >= 12 and availability.get("activations", 0) < 1:
        report.violations.append(
            f"{server_errors} fault-phase server errors never tripped "
            "the availability fast-burn alert"
        )
    if "degraded" not in report.health_states_seen:
        report.violations.append(
            "the service never reported itself degraded during the faults"
        )
    if report.final_health != "healthy":
        report.violations.append(
            f"the service did not return to healthy (final state "
            f"{report.final_health!r})"
        )
    tail_counts = report.responses.get("recovery", {})
    tail_errors = tail_counts.get("500", 0) + tail_counts.get("504", 0)
    if tail_errors:
        report.violations.append(
            f"{tail_errors} server error(s) in the recovery tail — faults "
            "were cleared, so none are acceptable"
        )
