"""The live-ingestion chaos harness behind ``repro chaos --mode ingest``.

Runs the real serving stack — an ingest-enabled
:class:`~repro.server.QueryService` behind the HTTP front end, driven by
the load generator's write mix — through three phases:

1. **warmup** — clean queries + writes.  The harness keeps a local
   *mirror* :class:`~repro.ingest.LiveCorpus` that applies exactly the
   acknowledged batches in acknowledgment order, and snapshots the
   mirror's assembled instance per published generation; every ``200``
   query response is verified region-for-region against the oracle of
   the generation it reports.
2. **fault** — ``storage.write`` error faults are armed, so a fraction
   of WAL appends fail mid-batch: those writes must be rejected (``5xx``)
   and must *not* change any query answer.  Halfway through, the whole
   service is torn down **without a checkpoint** and rebuilt over the
   same ingest directory — WAL replay must reconstruct a corpus
   bit-identical (``instance_to_dict`` equality) to the mirror of the
   acknowledged writes.  No acknowledged mutation may be lost; no
   unacknowledged one may appear.
3. **recovery** — faults off, clean writes resume against the recovered
   service, then a manual compaction merges every segment and the run
   ends with the three-way final oracle: serving instance == mirror ==
   a full re-parse of the combined corpus text from scratch.

The run is deterministic for a fixed seed (modulo thread scheduling,
which every invariant is written to tolerate).
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from pathlib import Path
from time import monotonic, sleep
from typing import Any

from repro.algebra.evaluator import Evaluator
from repro.algebra.parser import parse
from repro.faults.registry import FaultRegistry, FaultSpec, activate, deactivate
from repro.ingest import LiveCorpus

__all__ = ["IngestChaosConfig", "IngestChaosReport", "run_ingest_chaos"]


@dataclass(frozen=True)
class IngestChaosConfig:
    """Knobs for one ingest-chaos run (defaults match the CI smoke job)."""

    seed: int = 0
    scale: int = 2  #: size of the generated base play
    qps: float = 60.0  #: query rate
    write_rate: float = 8.0  #: ingest batches per second
    concurrency: int = 4
    warmup_seconds: float = 1.0
    fault_seconds: float = 4.0  #: split around the mid-phase restart
    recovery_seconds: float = 3.0
    #: per-WAL-record probability that the write fault point fires
    wal_fault_rate: float = 0.35
    workdir: str | None = None  #: where WALs + checkpoints live (tempdir)


@dataclass
class IngestChaosReport:
    """What one ingest-chaos run observed; ``ok`` iff nothing broke."""

    seed: int = 0
    duration_seconds: float = 0.0
    responses: dict[str, dict[str, int]] = field(default_factory=dict)
    verified_responses: int = 0
    corrupted_responses: int = 0
    writes: dict[str, dict[str, int]] = field(default_factory=dict)
    writes_acked: int = 0
    writes_failed: int = 0
    generations_published: int = 0
    wal_fault_fires: int = 0
    replayed_batches: int = 0
    restart_bit_identical: bool = False
    final_bit_identical: bool = False
    compaction: dict[str, Any] = field(default_factory=dict)
    documents_final: int = 0
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "seed": self.seed,
            "duration_seconds": round(self.duration_seconds, 2),
            "responses": self.responses,
            "verified_responses": self.verified_responses,
            "corrupted_responses": self.corrupted_responses,
            "writes": self.writes,
            "writes_acked": self.writes_acked,
            "writes_failed": self.writes_failed,
            "generations_published": self.generations_published,
            "wal_fault_fires": self.wal_fault_fires,
            "replayed_batches": self.replayed_batches,
            "restart_bit_identical": self.restart_bit_identical,
            "final_bit_identical": self.final_bit_identical,
            "compaction": self.compaction,
            "documents_final": self.documents_final,
            "violations": self.violations,
        }

    def format_report(self) -> str:
        lines = [
            f"ingest chaos run (seed {self.seed}) "
            f"{'PASSED' if self.ok else 'FAILED'} "
            f"in {self.duration_seconds:.1f}s",
            "responses by phase: "
            + "; ".join(
                f"{phase}: "
                + ", ".join(f"{k}: {v}" for k, v in sorted(counts.items()))
                for phase, counts in self.responses.items()
            ),
            f"verified {self.verified_responses} responses, "
            f"{self.corrupted_responses} corrupted",
            f"writes: {self.writes_acked} acked, {self.writes_failed} "
            f"failed ({self.wal_fault_fires} WAL fault fire(s)); "
            f"{self.generations_published} generation(s) published",
            f"restart: {self.replayed_batches} batch(es) replayed, "
            f"bit-identical: {self.restart_bit_identical}",
            f"compaction: merged {self.compaction.get('merged_segments', 0)} "
            f"segment(s), dropped "
            f"{self.compaction.get('dropped_tombstones', 0)} tombstone(s)",
            f"final state: {self.documents_final} ingested doc(s), "
            f"bit-identical to rebuilt-from-scratch: "
            f"{self.final_bit_identical}",
        ]
        if self.violations:
            lines.append("violations:")
            lines.extend(f"  - {v}" for v in self.violations)
        else:
            lines.append("violations: none")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# The per-generation oracle.
# ----------------------------------------------------------------------


class _Mirror:
    """The acked-writes mirror + generation-keyed verification oracle.

    ``commit(ops, generation)`` applies one acknowledged batch (in ack
    order — the load generator's single writer guarantees ack order is
    server apply order) and snapshots the assembled instance under
    ``(epoch, generation)``.  ``verify`` checks a ``200`` query payload
    against the instance of the generation it reports; responses racing
    ahead of the writer's ack callback park in ``pending`` and are
    settled at the next quiescent point.
    """

    def __init__(self, base_instance, base_text: str):
        self.live = LiveCorpus(base_instance, base_text)
        self.epoch = 0
        self.lock = threading.Lock()
        self._instances: dict[tuple[int, int], Any] = {}
        self._expected: dict[tuple[int, int, str], set] = {}
        self._evaluator = Evaluator("indexed")
        self.pending: list[tuple[int, int, str, frozenset]] = []
        self.verified = 0
        self.problems: list[str] = []

    def register(self, generation: int) -> None:
        with self.lock:
            self._instances[(self.epoch, generation)] = self.live.instance

    def commit(self, ops: list[dict[str, Any]], generation: int) -> None:
        self.live.apply(ops)
        self.register(generation)

    def rebase_epoch(self, generation: int) -> None:
        """After a service restart, generations restart from scratch."""
        with self.lock:
            self.epoch += 1
            self._instances[(self.epoch, generation)] = self.live.instance

    def _expected_regions(self, epoch: int, generation: int, query: str):
        key = (epoch, generation, query)
        cached = self._expected.get(key)
        if cached is not None:
            return cached
        instance = self._instances.get((epoch, generation))
        if instance is None:
            return None
        result = {
            (r.left, r.right)
            for r in self._evaluator.evaluate(parse(query), instance)
        }
        self._expected[key] = result
        return result

    def verify(self, generation: int, query: str, regions) -> None:
        got = frozenset((int(l), int(r)) for l, r in regions)
        with self.lock:
            epoch = self.epoch
            expected = self._expected_regions(epoch, generation, query)
            if expected is None:
                self.pending.append((epoch, generation, query, got))
                return
            self._check(epoch, generation, query, got, expected)

    def _check(self, epoch, generation, query, got, expected) -> None:
        self.verified += 1
        if got != expected:
            self.problems.append(
                f"response for {query!r} at generation {generation} "
                f"(epoch {epoch}) disagrees with the acked-writes oracle "
                f"({len(expected - got)} missing, {len(got - expected)} "
                "extra regions)"
            )

    def settle_pending(self) -> int:
        """Verify every parked response (call only while quiescent);
        returns how many could not be matched to a known generation."""
        with self.lock:
            unmatched = 0
            for epoch, generation, query, got in self.pending:
                expected = self._expected_regions(epoch, generation, query)
                if expected is None:
                    unmatched += 1
                    continue
                self._check(epoch, generation, query, got, expected)
            self.pending.clear()
            return unmatched


# ----------------------------------------------------------------------
# The run.
# ----------------------------------------------------------------------


def _service_config(config: IngestChaosConfig, ingest_dir: Path):
    from repro.server.config import CorpusSpec, ServerConfig

    return ServerConfig(
        workers=4,
        queue_depth=64,
        cache_enabled=True,  # exercise the generation-keyed cache
        default_deadline=5.0,
        corpora=(
            CorpusSpec(
                name="chaos",
                kind="synthetic",
                path="play",
                seed=config.seed,
                scale=max(1, config.scale),
            ),
        ),
        shards=1,  # ingest rebuilds engines per commit; keep them cheap
        ingest_enabled=True,
        ingest_dir=str(ingest_dir),
        ingest_fsync=True,
        compaction_enabled=False,  # phase 3 compacts manually
    )


def run_ingest_chaos(
    config: IngestChaosConfig | None = None,
) -> IngestChaosReport:
    """Run the three-phase ingest scenario; see the module docstring."""
    import tempfile

    from repro.engine.storage import instance_to_dict
    from repro.server.http import create_server
    from repro.server.loadgen import run_load
    from repro.server.service import QueryService
    from repro.workloads.queries import PLAY_QUERIES

    config = config if config is not None else IngestChaosConfig()
    report = IngestChaosReport(seed=config.seed)
    started = monotonic()
    owned_tmp = None
    if config.workdir is None:
        owned_tmp = tempfile.TemporaryDirectory(prefix="repro-ingest-chaos-")
        workdir = Path(owned_tmp.name)
    else:
        workdir = Path(config.workdir)
        workdir.mkdir(parents=True, exist_ok=True)
    server_config = _service_config(config, workdir)
    service = QueryService(server_config)
    server = create_server(service, port=0)
    server.serve_in_background()
    try:
        handle = service._handle("chaos")
        base_text = handle.engine.text
        assert base_text is not None  # synthetic corpora carry their text
        mirror = _Mirror(handle.engine.instance, base_text)
        mirror.register(handle.generation)

        lock = threading.Lock()
        phase = {"name": "warmup"}

        def on_response(status: int, payload: bytes) -> None:
            with lock:
                counts = report.responses.setdefault(phase["name"], {})
                counts[str(status)] = counts.get(str(status), 0) + 1
            if status != 200:
                return
            try:
                body = json.loads(payload)
                mirror.verify(
                    int(body["generation"]), body["query"], body["regions"]
                )
            except (ValueError, KeyError, UnicodeDecodeError):
                with lock:
                    report.corrupted_responses += 1
                    report.violations.append(
                        "a 200 response failed to parse as a query result"
                    )

        def on_ingest_response(ops, status: int, payload: bytes) -> None:
            with lock:
                counts = report.writes.setdefault(phase["name"], {})
                counts[str(status)] = counts.get(str(status), 0) + 1
            if status != 200:
                report.writes_failed += 1
                return
            try:
                generation = int(json.loads(payload)["generation"])
            except (ValueError, KeyError, UnicodeDecodeError):
                with lock:
                    report.violations.append(
                        "a 200 ingest ack failed to parse"
                    )
                return
            # Single writer: acks arrive in server apply order.
            mirror.commit(ops, generation)
            report.writes_acked += 1

        def load(phase_name: str, seconds: float, seed: int, port: int):
            phase["name"] = phase_name
            return run_load(
                "127.0.0.1",
                port,
                PLAY_QUERIES,
                corpus="chaos",
                qps=config.qps,
                duration=seconds,
                concurrency=config.concurrency,
                seed=seed,
                on_response=on_response,
                ingest_rate=config.write_rate,
                on_ingest_response=on_ingest_response,
            )

        # Phase 1: warmup — clean reads + writes build up segments.
        load("warmup", config.warmup_seconds, config.seed + 1, server.bound_port)

        # Phase 2a: WAL write faults armed.
        registry = FaultRegistry(seed=config.seed)
        registry.arm(
            FaultSpec(
                "storage.write", "error", probability=config.wal_fault_rate
            )
        )
        activate(registry)
        load("fault", config.fault_seconds / 2, config.seed + 2, server.bound_port)

        # Phase 2b: tear the whole service down WITHOUT a checkpoint and
        # rebuild it over the same ingest directory — recovery is WAL
        # replay, and it must reproduce the mirror exactly.
        acked_before_restart = report.writes_acked
        server.stop()
        service = QueryService(server_config)
        server = create_server(service, port=0)
        server.serve_in_background()
        handle = service._handle("chaos")
        report.replayed_batches = service.ingest_info()["corpora"]["chaos"][
            "replayed_batches"
        ]
        mirror.rebase_epoch(handle.generation)
        recovered = instance_to_dict(handle.engine.instance)
        report.restart_bit_identical = recovered == instance_to_dict(
            mirror.live.instance
        )
        if not report.restart_bit_identical:
            report.violations.append(
                "the recovered corpus is not bit-identical to the mirror "
                "of acknowledged writes — WAL replay lost or invented a "
                "mutation"
            )
        if acked_before_restart > 0 and report.replayed_batches < 1:
            report.violations.append(
                f"{acked_before_restart} batch(es) were acked before the "
                "restart but none were replayed from the WAL"
            )

        load(
            "fault-replayed",
            config.fault_seconds / 2,
            config.seed + 3,
            server.bound_port,
        )
        report.wal_fault_fires = registry.fires(
            point="storage.write", mode="error"
        )

        # Phase 3: recovery — clean writes, then compact, then re-read.
        deactivate()
        load(
            "recovery",
            config.recovery_seconds,
            config.seed + 4,
            server.bound_port,
        )
        report.compaction = service.compact("chaos")
        load(
            "post-compact",
            min(1.0, config.recovery_seconds),
            config.seed + 5,
            server.bound_port,
        )

        unmatched = mirror.settle_pending()
        if unmatched:
            report.violations.append(
                f"{unmatched} response(s) reported a generation the "
                "acked-writes oracle never saw"
            )
        report.verified_responses = mirror.verified
        report.corrupted_responses += len(mirror.problems)
        report.violations.extend(mirror.problems)
        report.generations_published = report.writes_acked
        report.documents_final = mirror.live.document_count

        fault_writes = sum(
            count
            for name in ("fault", "fault-replayed")
            for count in report.writes.get(name, {}).values()
        )
        if fault_writes >= 8 and report.wal_fault_fires == 0:
            report.violations.append(
                f"{fault_writes} writes ran through the fault phase but "
                "the storage.write fault never fired"
            )
        if report.writes_acked < 1:
            report.violations.append("no write was ever acknowledged")

        # The final three-way oracle: serving == mirror == full re-parse.
        serving = instance_to_dict(service._handle("chaos").engine.instance)
        mirrored = instance_to_dict(mirror.live.instance)
        scratch_instance = mirror.live.oracle_instance()
        scratch = (
            instance_to_dict(scratch_instance)
            if scratch_instance is not None
            else None
        )
        report.final_bit_identical = serving == mirrored == scratch
        if serving != mirrored:
            report.violations.append(
                "after compaction the serving corpus is not bit-identical "
                "to the mirror of acknowledged writes"
            )
        if mirrored != scratch:
            report.violations.append(
                "the mirror is not bit-identical to a rebuilt-from-scratch "
                "parse of the combined corpus text"
            )
    finally:
        deactivate()
        try:
            server.stop()
        except Exception:  # pragma: no cover - teardown best-effort
            pass
        if owned_tmp is not None:
            owned_tmp.cleanup()
    report.duration_seconds = monotonic() - started
    return report
