"""The replication chaos harness behind ``repro chaos --mode replication``.

The replicated-ingestion torture test: an ingest-enabled frontier
:class:`~repro.server.QueryService` ships every committed WAL batch to
real ``repro serve`` backend subprocesses (a ``groups x replicas`` HTTP
topology), while the load generator drives concurrent reads *and*
writes.  Six phases:

1. **warmup** — clean reads + writes.  Every ``200`` query response is
   verified against a local mirror of the acknowledged batches, keyed by
   the generation the response reports; a response may be *fresher* than
   its stamped generation (a replica that already applied the next
   batch still satisfies the floor) but never staler and never wrong.
2. **ship faults** — ``replication.ship`` error and corruption faults
   are armed, so some replicas miss or reject their copy of a batch.
   A ship failure must never fail the ingest (the write is durable in
   the frontier's WAL) and must never corrupt an answer; the
   anti-entropy sweep repairs the holes.
3. **restart** — the whole frontier is torn down without a checkpoint
   and rebuilt over the same ingest directory.  WAL replay must
   reconstruct the corpus bit-identically, and the (freshly spawned)
   replicas — blank, at a generation the new frontier has never issued —
   must be walked back to current by the sweep's snapshot catch-up.
4. **kill** — one backend replica is SIGKILLed mid-write-load.
   Availability over the kill window must stay above the configured
   floor: reads fail over to the surviving replica or the frontier's
   local degraded path (which serves exactly the stamped generation, so
   the floor holds either way).
5. **respawn wait** — the supervisor restarts the victim; probe traffic
   re-closes its breaker and the sweep catches the blank respawn up.
6. **recovery** — clean load once more, then the final reckoning: a
   sweep must find every (node, corpus) ``current``, and the serving
   corpus, the acked-writes mirror, and a rebuilt-from-scratch parse of
   the combined text must be bit-identical three ways.

Deterministic for a fixed seed (modulo thread scheduling, which every
invariant is written to tolerate).
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from pathlib import Path
from time import monotonic, sleep
from typing import Any

from repro.faults.ingestchaos import _Mirror
from repro.faults.registry import FaultRegistry, FaultSpec, activate, deactivate

__all__ = [
    "ReplicationChaosConfig",
    "ReplicationChaosReport",
    "run_replication_chaos",
]


@dataclass(frozen=True)
class ReplicationChaosConfig:
    """Knobs for one replication-chaos run (defaults match CI)."""

    seed: int = 0
    scale: int = 2  #: size of the generated base play
    groups: int = 2  #: shard groups the frontier scatters to
    replicas: int = 2  #: replicas per group (must survive one kill)
    nodes: int = 2  #: backend subprocesses
    qps: float = 30.0  #: query rate
    write_rate: float = 6.0  #: ingest batches per second
    concurrency: int = 4
    warmup_seconds: float = 1.0
    fault_seconds: float = 4.0  #: ship-fault phase, before the restart
    kill_seconds: float = 3.0
    recovery_seconds: float = 2.0
    kill_after: float = 0.3  #: seconds into the kill phase to SIGKILL
    #: per-(node, batch) probability that a ship attempt fails or the
    #: wire copy is corrupted (split evenly between the two modes)
    ship_fault_rate: float = 0.35
    replication_interval: float = 0.5  #: background sweep period
    lag_limit: int = 4
    breaker_threshold: int = 2
    breaker_reset: float = 1.0
    respawn_delay: float = 0.3
    min_kill_availability: float = 0.9
    settle_seconds: float = 12.0  #: per catch-up wait before giving up
    workdir: str | None = None  #: where WALs + checkpoints live (tempdir)


@dataclass
class ReplicationChaosReport:
    """What one replication-chaos run observed; ``ok`` iff nothing broke."""

    seed: int = 0
    duration_seconds: float = 0.0
    topology: dict[str, Any] = field(default_factory=dict)
    responses: dict[str, dict[str, int]] = field(default_factory=dict)
    verified_responses: int = 0
    corrupted_responses: int = 0
    degraded: dict[str, int] = field(default_factory=dict)  #: per phase
    writes: dict[str, dict[str, int]] = field(default_factory=dict)
    writes_acked: int = 0
    writes_failed: int = 0
    ship_fault_fires: int = 0
    ship_failures: int = 0
    batches_shipped: int = 0
    catchups: dict[str, int] = field(default_factory=dict)  #: per kind
    divergences_repaired: int = 0
    replayed_batches: int = 0
    restart_bit_identical: bool = False
    killed_node: str = ""
    kill_availability: float = 0.0
    respawns: int = 0
    final_breakers: dict[str, str] = field(default_factory=dict)
    final_sweep: dict[str, str] = field(default_factory=dict)  #: node outcome
    final_lag: dict[str, int] = field(default_factory=dict)
    final_bit_identical: bool = False
    documents_final: int = 0
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "seed": self.seed,
            "duration_seconds": round(self.duration_seconds, 2),
            "topology": self.topology,
            "responses": self.responses,
            "verified_responses": self.verified_responses,
            "corrupted_responses": self.corrupted_responses,
            "degraded": self.degraded,
            "writes": self.writes,
            "writes_acked": self.writes_acked,
            "writes_failed": self.writes_failed,
            "ship_fault_fires": self.ship_fault_fires,
            "ship_failures": self.ship_failures,
            "batches_shipped": self.batches_shipped,
            "catchups": self.catchups,
            "divergences_repaired": self.divergences_repaired,
            "replayed_batches": self.replayed_batches,
            "restart_bit_identical": self.restart_bit_identical,
            "killed_node": self.killed_node,
            "kill_availability": round(self.kill_availability, 4),
            "respawns": self.respawns,
            "final_breakers": self.final_breakers,
            "final_sweep": self.final_sweep,
            "final_lag": self.final_lag,
            "final_bit_identical": self.final_bit_identical,
            "documents_final": self.documents_final,
            "violations": self.violations,
        }

    def format_report(self) -> str:
        lines = [
            f"replication chaos run (seed {self.seed}) "
            f"{'PASSED' if self.ok else 'FAILED'} "
            f"in {self.duration_seconds:.1f}s",
            f"topology: {self.topology.get('nodes', '?')} node(s), "
            f"{self.topology.get('groups', '?')} group(s) x "
            f"{self.topology.get('replicas', '?')} replica(s), http, "
            "replicated ingest",
            "responses by phase: "
            + "; ".join(
                f"{phase}: "
                + ", ".join(f"{k}: {v}" for k, v in sorted(counts.items()))
                for phase, counts in self.responses.items()
            ),
            f"verified {self.verified_responses} responses against the "
            f"acked-writes oracle, {self.corrupted_responses} corrupted "
            "or stale",
            f"writes: {self.writes_acked} acked, {self.writes_failed} "
            f"failed; {self.batches_shipped} batch-applies shipped, "
            f"{self.ship_failures} ship failure(s) "
            f"({self.ship_fault_fires} injected)",
            "catch-ups: "
            + (
                ", ".join(
                    f"{kind}: {count}"
                    for kind, count in sorted(self.catchups.items())
                )
                or "none"
            )
            + f"; divergences repaired: {self.divergences_repaired}",
            f"restart: {self.replayed_batches} batch(es) replayed, "
            f"bit-identical: {self.restart_bit_identical}",
            f"killed {self.killed_node} with SIGKILL; availability during "
            f"the kill window {self.kill_availability:.1%}; "
            f"{self.respawns} respawn(s)",
            "final sweep: "
            + ", ".join(
                f"{node}: {outcome}"
                for node, outcome in sorted(self.final_sweep.items())
            ),
            f"final state: {self.documents_final} ingested doc(s), "
            f"three-way bit-identical: {self.final_bit_identical}",
        ]
        if self.violations:
            lines.append("violations:")
            lines.extend(f"  - {v}" for v in self.violations)
        else:
            lines.append("violations: none")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# The floor-aware oracle.
# ----------------------------------------------------------------------


class _FloorMirror(_Mirror):
    """The ingest-chaos mirror, relaxed for generation *floors*.

    Over a replicated topology the generation a response reports is a
    floor, not an exact version: a replica that has already applied a
    later batch legitimately answers with the fresher regions.  So a
    ``200`` is good iff it matches the oracle at its stamped generation
    **or any later one in the same epoch** — and is flagged as a
    floor violation when it matches only an *earlier* generation (a
    stale read the floor should have rejected), or as corruption when it
    matches nothing at all.
    """

    def _check(self, epoch, generation, query, got, expected) -> None:
        self.verified += 1
        if got == expected:
            return
        known = sorted(g for (e, g) in self._instances if e == epoch)
        for later in (g for g in known if g > generation):
            fresher = self._expected_regions(epoch, later, query)
            if fresher is not None and got == fresher:
                return  # ahead of the stamped floor — monotone, fine
        for earlier in reversed([g for g in known if g < generation]):
            staler = self._expected_regions(epoch, earlier, query)
            if staler is not None and got == staler:
                self.problems.append(
                    f"response for {query!r} matched generation {earlier} "
                    f"but was stamped {generation} (epoch {epoch}) — a "
                    "stale read leaked through the generation floor"
                )
                return
        self.problems.append(
            f"response for {query!r} at generation {generation} "
            f"(epoch {epoch}) matches no acked generation at all — "
            "corrupted regions"
        )


# ----------------------------------------------------------------------
# The run.
# ----------------------------------------------------------------------


def _service_config(config: ReplicationChaosConfig, ingest_dir: Path):
    from repro.server.config import CorpusSpec, ServerConfig

    # A synthetic corpus: generation is deterministic by seed, so the
    # backend subprocesses (handed the same spec via --corpus-json)
    # build instances bit-identical to the frontier's — the base the
    # replicas' LiveCorpus overlays start from.
    return ServerConfig(
        workers=4,
        queue_depth=64,
        cache_enabled=False,  # every 200 is a fresh, verifiable evaluation
        default_deadline=5.0,
        corpora=(
            CorpusSpec(
                name="chaos",
                kind="synthetic",
                path="play",
                seed=config.seed,
                scale=max(1, config.scale),
            ),
        ),
        shards=1,  # ingest rebuilds engines per commit; keep them cheap
        breaker_threshold=config.breaker_threshold,
        breaker_reset=config.breaker_reset,
        backend_nodes=max(config.nodes, config.replicas),
        backend_groups=config.groups,
        backend_replicas=config.replicas,
        backend_mode="http",
        backend_respawn_delay=config.respawn_delay,
        ingest_enabled=True,
        ingest_dir=str(ingest_dir),
        ingest_fsync=True,
        compaction_enabled=False,
        replication_enabled=True,
        replication_interval=config.replication_interval,
        replication_lag_limit=config.lag_limit,
    )


def _await_current(service, deadline_seconds: float) -> dict[str, str]:
    """Sweep until every (node, corpus) audit answers ``current`` or the
    deadline passes; returns the last sweep's per-node outcomes."""
    deadline = monotonic() + deadline_seconds
    outcomes: dict[str, str] = {}
    while True:
        sweep = service.replication.sweep()
        outcomes = dict(sweep["corpora"].get("chaos", {}))
        if outcomes and all(o == "current" for o in outcomes.values()):
            return outcomes
        if monotonic() >= deadline:
            return outcomes
        sleep(0.2)


def run_replication_chaos(
    config: ReplicationChaosConfig | None = None,
) -> ReplicationChaosReport:
    """Run the six-phase replication scenario; see the module docstring."""
    import tempfile

    from repro.engine.storage import instance_to_dict
    from repro.server.http import create_server
    from repro.server.loadgen import run_load
    from repro.server.service import QueryService
    from repro.workloads.queries import PLAY_QUERIES

    config = config if config is not None else ReplicationChaosConfig()
    report = ReplicationChaosReport(seed=config.seed)
    report.topology = {
        "nodes": max(config.nodes, config.replicas),
        "groups": config.groups,
        "replicas": config.replicas,
    }
    started = monotonic()
    owned_tmp = None
    if config.workdir is None:
        owned_tmp = tempfile.TemporaryDirectory(prefix="repro-repl-chaos-")
        workdir = Path(owned_tmp.name)
    else:
        workdir = Path(config.workdir)
        workdir.mkdir(parents=True, exist_ok=True)
    server_config = _service_config(config, workdir)
    service = QueryService(server_config)
    server = create_server(service, port=0)
    server.serve_in_background()
    try:
        handle = service._handle("chaos")
        base_text = handle.engine.text
        assert base_text is not None  # synthetic corpora carry their text
        mirror = _FloorMirror(handle.engine.instance, base_text)
        mirror.register(handle.generation)

        lock = threading.Lock()
        phase = {"name": "warmup"}

        def on_response(status: int, payload: bytes) -> None:
            name = phase["name"]
            with lock:
                counts = report.responses.setdefault(name, {})
                counts[str(status)] = counts.get(str(status), 0) + 1
            if status != 200:
                return
            try:
                body = json.loads(payload)
                generation = int(body["generation"])
                query = body["query"]
                regions = body["regions"]
            except (ValueError, KeyError, UnicodeDecodeError):
                with lock:
                    report.corrupted_responses += 1
                    report.violations.append(
                        "a 200 response failed to parse as a query result"
                    )
                return
            if (body.get("backend") or {}).get("degraded"):
                with lock:
                    report.degraded[name] = report.degraded.get(name, 0) + 1
            mirror.verify(generation, query, regions)

        def on_ingest_response(ops, status: int, payload: bytes) -> None:
            with lock:
                counts = report.writes.setdefault(phase["name"], {})
                counts[str(status)] = counts.get(str(status), 0) + 1
            if status != 200:
                report.writes_failed += 1
                return
            try:
                generation = int(json.loads(payload)["generation"])
            except (ValueError, KeyError, UnicodeDecodeError):
                with lock:
                    report.violations.append("a 200 ingest ack failed to parse")
                return
            # Single writer: acks arrive in server apply order.
            mirror.commit(ops, generation)
            report.writes_acked += 1

        def load(phase_name: str, seconds: float, seed: int, port: int):
            phase["name"] = phase_name
            return run_load(
                "127.0.0.1",
                port,
                PLAY_QUERIES,
                corpus="chaos",
                qps=config.qps,
                duration=seconds,
                concurrency=config.concurrency,
                use_cache=False,
                seed=seed,
                on_response=on_response,
                ingest_rate=config.write_rate,
                on_ingest_response=on_ingest_response,
            )

        # Phase 1: warmup — clean reads + replicated writes.
        load("warmup", config.warmup_seconds, config.seed + 1, server.bound_port)

        # Phase 2: ship faults — some replicas miss or corrupt their
        # copy; ingest must keep acking and the sweep must repair.
        registry = FaultRegistry(seed=config.seed)
        registry.arm(
            FaultSpec(
                "replication.ship",
                "error",
                probability=config.ship_fault_rate / 2,
            )
        )
        registry.arm(
            FaultSpec(
                "replication.ship",
                "corrupt",
                probability=config.ship_fault_rate / 2,
            )
        )
        activate(registry)
        load("fault", config.fault_seconds, config.seed + 2, server.bound_port)
        deactivate()
        report.ship_fault_fires = registry.fires(point="replication.ship")

        # Phase 3: tear the frontier down WITHOUT a checkpoint and
        # rebuild over the same ingest directory.  WAL replay restores
        # the corpus; the freshly spawned (blank) replicas must be
        # snapshot-repaired back to current by the sweep.
        acked_before_restart = report.writes_acked
        server.stop()
        service = QueryService(server_config)
        server = create_server(service, port=0)
        server.serve_in_background()
        handle = service._handle("chaos")
        report.replayed_batches = service.ingest_info()["corpora"]["chaos"][
            "replayed_batches"
        ]
        mirror.rebase_epoch(handle.generation)
        recovered = instance_to_dict(handle.engine.instance)
        report.restart_bit_identical = recovered == instance_to_dict(
            mirror.live.instance
        )
        if not report.restart_bit_identical:
            report.violations.append(
                "the recovered corpus is not bit-identical to the mirror "
                "of acknowledged writes — WAL replay lost or invented a "
                "mutation"
            )
        if acked_before_restart > 0 and report.replayed_batches < 1:
            report.violations.append(
                f"{acked_before_restart} batch(es) were acked before the "
                "restart but none were replayed from the WAL"
            )
        restart_sweep = _await_current(service, config.settle_seconds)
        if any(outcome != "current" for outcome in restart_sweep.values()):
            report.violations.append(
                "replicas never converged after the frontier restart: "
                + ", ".join(
                    f"{n}: {o}" for n, o in sorted(restart_sweep.items())
                )
            )

        # Phase 4: SIGKILL one replica of the first shard group a beat
        # into the phase, while reads and writes keep arriving.
        victim = service.frontier.replicas_for("chaos", 0)[0].id
        report.killed_node = victim
        killer = threading.Timer(
            config.kill_after, service.supervisor.kill, args=(victim,)
        )
        killer.start()
        load("kill", config.kill_seconds, config.seed + 3, server.bound_port)
        killer.join(timeout=1.0)

        # Phase 5: the supervisor must bring the victim back; probe
        # traffic re-closes breakers and the sweep catches the blank
        # respawn up (a respawned node remembers nothing).
        respawn_deadline = monotonic() + max(
            config.settle_seconds,
            4 * (config.respawn_delay + config.breaker_reset),
        )
        while (
            service.supervisor.respawns(victim) < 1
            and monotonic() < respawn_deadline
        ):
            sleep(0.1)
        report.respawns = service.supervisor.respawns(victim)
        probe = next(iter(PLAY_QUERIES.values()))
        while monotonic() < respawn_deadline:
            states = {
                node.id: node.breaker.state for node in service.frontier.nodes
            }
            if all(state == "closed" for state in states.values()):
                break
            # A closed breaker needs a successful half-open probe, and
            # probes only happen under traffic.
            phase["name"] = "probe"
            try:
                _post_query("127.0.0.1", server.bound_port, probe)
            except OSError:
                pass
            sleep(0.1)
        respawn_sweep = _await_current(service, config.settle_seconds)
        if any(outcome != "current" for outcome in respawn_sweep.values()):
            report.violations.append(
                f"the respawned {victim} never caught back up: "
                + ", ".join(
                    f"{n}: {o}" for n, o in sorted(respawn_sweep.items())
                )
            )

        # Phase 6: recovery — clean load, then the final reckoning.
        load(
            "recovery",
            config.recovery_seconds,
            config.seed + 4,
            server.bound_port,
        )
        report.final_sweep = _await_current(service, config.settle_seconds)
        report.final_breakers = {
            node.id: node.breaker.state for node in service.frontier.nodes
        }
        report.final_lag = {
            node.id: service.replication.lag(node.id, "chaos")
            for node in service.frontier.nodes
        }

        unmatched = mirror.settle_pending()
        if unmatched:
            report.violations.append(
                f"{unmatched} response(s) reported a generation the "
                "acked-writes oracle never saw"
            )
        report.verified_responses = mirror.verified
        report.corrupted_responses += len(mirror.problems)
        report.violations.extend(mirror.problems)
        report.documents_final = mirror.live.document_count

        counters = service.metrics_snapshot()["metrics"]["counters"]
        report.batches_shipped = int(
            sum(counters.get("replication_batches_shipped_total", {}).values())
        )
        report.ship_failures = int(
            sum(counters.get("replication_ship_failures_total", {}).values())
        )
        report.divergences_repaired = int(
            sum(counters.get("replication_divergence_total", {}).values())
        )
        from repro.obs.metrics import parse_label_text

        for labels, count in counters.get(
            "replication_catchups_total", {}
        ).items():
            kind = dict(parse_label_text(labels)).get("kind", "?")
            report.catchups[kind] = report.catchups.get(kind, 0) + int(count)

        # ------------------------------------------------------------------
        # Invariants.
        # ------------------------------------------------------------------
        warmup_errors = sum(
            count
            for status, count in report.responses.get("warmup", {}).items()
            if status != "200"
        )
        if warmup_errors:
            report.violations.append(
                f"{warmup_errors} non-200 response(s) during warmup with "
                "every replica healthy"
            )
        kill_counts = report.responses.get("kill", {})
        kill_total = sum(kill_counts.values())
        kill_ok = kill_counts.get("200", 0)
        report.kill_availability = kill_ok / kill_total if kill_total else 0.0
        if kill_total == 0:
            report.violations.append("no responses arrived during the kill phase")
        elif report.kill_availability < config.min_kill_availability:
            report.violations.append(
                f"availability during the kill window was "
                f"{report.kill_availability:.1%} "
                f"(minimum {config.min_kill_availability:.0%}) — failover "
                "did not absorb the dead replica"
            )
        if report.respawns < 1:
            report.violations.append(
                f"the supervisor never respawned {report.killed_node}"
            )
        open_breakers = {
            node: state
            for node, state in report.final_breakers.items()
            if state != "closed"
        }
        if open_breakers:
            report.violations.append(
                "breakers did not re-close after the respawn: "
                + ", ".join(
                    f"{n}: {s}" for n, s in sorted(open_breakers.items())
                )
            )
        lagging = {n: l for n, l in report.final_lag.items() if l > 0}
        if lagging:
            report.violations.append(
                "nodes still lag the frontier after recovery: "
                + ", ".join(f"{n}: {l}" for n, l in sorted(lagging.items()))
            )
        if any(o != "current" for o in report.final_sweep.values()) or (
            not report.final_sweep
        ):
            report.violations.append(
                "the final anti-entropy sweep did not find every replica "
                "current: "
                + (
                    ", ".join(
                        f"{n}: {o}"
                        for n, o in sorted(report.final_sweep.items())
                    )
                    or "no outcomes"
                )
            )
        fault_writes = sum(report.writes.get("fault", {}).values())
        if fault_writes >= 8 and report.ship_fault_fires == 0:
            report.violations.append(
                f"{fault_writes} writes ran through the fault phase but "
                "the replication.ship fault never fired"
            )
        fault_write_errors = sum(
            count
            for status, count in report.writes.get("fault", {}).items()
            if status != "200"
        )
        if fault_write_errors:
            report.violations.append(
                f"{fault_write_errors} write(s) failed during ship faults "
                "— a ship failure must never fail the ingest"
            )
        if report.writes_acked < 1:
            report.violations.append("no write was ever acknowledged")

        # The final three-way oracle: serving == mirror == full re-parse.
        serving = instance_to_dict(service._handle("chaos").engine.instance)
        mirrored = instance_to_dict(mirror.live.instance)
        scratch_instance = mirror.live.oracle_instance()
        scratch = (
            instance_to_dict(scratch_instance)
            if scratch_instance is not None
            else None
        )
        report.final_bit_identical = serving == mirrored == scratch
        if serving != mirrored:
            report.violations.append(
                "the serving corpus is not bit-identical to the mirror of "
                "acknowledged writes"
            )
        if mirrored != scratch:
            report.violations.append(
                "the mirror is not bit-identical to a rebuilt-from-scratch "
                "parse of the combined corpus text"
            )
    finally:
        deactivate()
        try:
            server.stop()
        except Exception:  # pragma: no cover - teardown best-effort
            pass
        if owned_tmp is not None:
            owned_tmp.cleanup()
    report.duration_seconds = monotonic() - started
    return report


def _post_query(host: str, port: int, query: str, timeout: float = 10.0):
    """One direct ``POST /query`` (cache off); ``(status, parsed|None)``."""
    import http.client

    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        connection.request(
            "POST",
            "/query",
            body=json.dumps(
                {"query": query, "corpus": "chaos", "use_cache": False}
            ),
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        payload = response.read()
    finally:
        connection.close()
    try:
        return response.status, json.loads(payload)
    except (ValueError, UnicodeDecodeError):
        return response.status, None
