"""The backend-kill chaos harness behind ``repro chaos --mode backend-kill``.

Runs the full multi-process serving topology — a frontier
:class:`~repro.server.QueryService` whose
:class:`~repro.backend.supervisor.BackendSupervisor` spawns real
``repro serve`` subprocesses as shard backends — under open-loop load,
then SIGKILLs one backend mid-run.  Four phases:

1. **warmup** — all backends healthy; every response must come off the
   distributed path, verified region-for-region against a single-process
   oracle.
2. **kill** — one backend (the primary replica of the first shard
   group) is killed with SIGKILL.  The frontier must fail over to the
   surviving replica: responses may be marked ``degraded`` only while a
   shard group has genuinely lost all replicas, but **every** ``200``
   must still match the oracle — the PR-5 invariant across processes:
   losing backends may cost the distributed path, never correctness.
3. **respawn wait** — the supervisor restarts the victim on its old
   port; probe traffic drives the per-backend circuit breakers back to
   closed.
4. **recovery** — the same load once more; zero server errors, zero
   degraded responses, and a final query-by-query equivalence sweep
   against the oracle over the whole mix.

The report mirrors :class:`~repro.faults.chaos.ChaosReport`:
``summary()`` for machines, ``format_report()`` for humans, ``ok`` iff
no invariant broke.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from pathlib import Path
from time import monotonic, sleep
from typing import Any

__all__ = ["BackendChaosConfig", "BackendChaosReport", "run_backend_chaos"]


@dataclass(frozen=True)
class BackendChaosConfig:
    """Knobs for one backend-kill run (defaults match the CI smoke job)."""

    seed: int = 0
    scale: int = 2  #: size of each generated play
    documents: int = 3  #: plays concatenated into the corpus (forest roots)
    groups: int = 2  #: shard groups the frontier scatters to
    replicas: int = 2  #: replicas per group (must survive one kill)
    nodes: int = 2  #: backend subprocesses
    qps: float = 40.0
    concurrency: int = 4
    warmup_seconds: float = 1.0
    kill_seconds: float = 4.0
    recovery_seconds: float = 3.0
    kill_after: float = 0.3  #: seconds into the kill phase to SIGKILL
    breaker_threshold: int = 2
    breaker_reset: float = 1.0
    respawn_delay: float = 0.3
    min_kill_availability: float = 0.9
    workdir: str | None = None


@dataclass
class BackendChaosReport:
    """What one backend-kill run observed; ``ok`` iff no invariant broke."""

    seed: int = 0
    duration_seconds: float = 0.0
    topology: dict[str, Any] = field(default_factory=dict)
    responses: dict[str, dict[str, int]] = field(default_factory=dict)
    degraded: dict[str, int] = field(default_factory=dict)  #: per phase
    fallbacks: dict[str, int] = field(default_factory=dict)  #: per reason
    verified_responses: int = 0
    corrupted_responses: int = 0
    killed_node: str = ""
    kill_availability: float = 0.0
    respawns: int = 0
    failovers: int = 0
    hedges: int = 0
    final_breakers: dict[str, str] = field(default_factory=dict)
    equivalence_checks: int = 0
    loadgen: dict[str, Any] = field(default_factory=dict)
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "seed": self.seed,
            "duration_seconds": round(self.duration_seconds, 2),
            "topology": self.topology,
            "responses": self.responses,
            "degraded": self.degraded,
            "fallbacks": self.fallbacks,
            "verified_responses": self.verified_responses,
            "corrupted_responses": self.corrupted_responses,
            "killed_node": self.killed_node,
            "kill_availability": round(self.kill_availability, 4),
            "respawns": self.respawns,
            "failovers": self.failovers,
            "hedges": self.hedges,
            "final_breakers": self.final_breakers,
            "equivalence_checks": self.equivalence_checks,
            "loadgen": self.loadgen,
            "violations": self.violations,
        }

    def format_report(self) -> str:
        lines = [
            f"backend-kill chaos run (seed {self.seed}) "
            f"{'PASSED' if self.ok else 'FAILED'} "
            f"in {self.duration_seconds:.1f}s",
            f"topology: {self.topology.get('nodes', '?')} node(s), "
            f"{self.topology.get('groups', '?')} group(s) x "
            f"{self.topology.get('replicas', '?')} replica(s), http",
            "responses by phase: "
            + "; ".join(
                f"{phase}: "
                + ", ".join(f"{k}: {v}" for k, v in sorted(counts.items()))
                for phase, counts in self.responses.items()
            ),
            f"verified {self.verified_responses} responses against the "
            f"single-process oracle, {self.corrupted_responses} corrupted",
            f"degraded responses: "
            + (
                ", ".join(
                    f"{phase}: {count}"
                    for phase, count in sorted(self.degraded.items())
                )
                or "none"
            )
            + "; fallbacks: "
            + (
                ", ".join(
                    f"{reason}: {count}"
                    for reason, count in sorted(self.fallbacks.items())
                )
                or "none"
            ),
            f"killed {self.killed_node} with SIGKILL; availability during "
            f"the kill window {self.kill_availability:.1%}; "
            f"{self.respawns} respawn(s); {self.failovers} failover(s); "
            f"{self.hedges} hedge(s)",
            f"final breakers: "
            + ", ".join(
                f"{node}: {state}"
                for node, state in sorted(self.final_breakers.items())
            ),
            f"final equivalence sweep: {self.equivalence_checks} quer"
            f"{'y' if self.equivalence_checks == 1 else 'ies'} checked",
        ]
        if self.violations:
            lines.append("violations:")
            lines.extend(f"  - {v}" for v in self.violations)
        else:
            lines.append("violations: none")
        return "\n".join(lines)


# ----------------------------------------------------------------------


def _build_corpus(config: BackendChaosConfig, workdir: Path):
    """Generate a multi-play corpus, index it to disk, return the spec.

    An on-disk index (rather than a synthetic spec) so the backend
    subprocesses load bit-identical data from the same file the frontier
    does — a prerequisite for the equivalence invariants.
    """
    import random

    from repro.engine.session import Engine
    from repro.engine.storage import save_instance
    from repro.server.config import CorpusSpec
    from repro.workloads.corpora import generate_play

    scale = max(1, config.scale)
    rng = random.Random(config.seed)
    text = "\n".join(
        generate_play(
            rng,
            acts=scale,
            scenes_per_act=scale,
            speeches_per_scene=2 * scale,
            lines_per_speech=3,
        )
        for _ in range(max(1, config.documents))
    )
    source_path = workdir / "play.tagged"
    source_path.write_text(text, encoding="utf-8")
    engine = Engine.from_tagged_text(text)
    index_path = workdir / "play.json"
    save_instance(engine.instance, index_path)
    spec = CorpusSpec(
        name="chaos",
        kind="index",
        path=str(index_path),
        source=str(source_path),
        source_format="tagged",
    )
    return spec, engine


def _baseline(engine, queries: dict[str, str]) -> dict[str, set[tuple[int, int]]]:
    """The single-process oracle: every mix query evaluated by a plain
    evaluator against the full instance."""
    from repro.algebra.evaluator import Evaluator
    from repro.algebra.parser import parse

    evaluator = Evaluator("indexed")
    return {
        text: {
            (r.left, r.right)
            for r in evaluator.evaluate(parse(text), engine.instance)
        }
        for text in queries.values()
    }


def _post_query(host: str, port: int, query: str, timeout: float = 10.0):
    """One direct ``POST /query`` (cache off); ``(status, parsed|None)``."""
    import http.client

    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        connection.request(
            "POST",
            "/query",
            body=json.dumps(
                {"query": query, "corpus": "chaos", "use_cache": False}
            ),
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        payload = response.read()
    finally:
        connection.close()
    try:
        return response.status, json.loads(payload)
    except (ValueError, UnicodeDecodeError):
        return response.status, None


def run_backend_chaos(
    config: BackendChaosConfig | None = None,
) -> BackendChaosReport:
    """Run the backend-kill scenario; see the module docstring."""
    import tempfile

    from repro.server.config import ServerConfig
    from repro.server.http import create_server
    from repro.server.service import QueryService
    from repro.workloads.queries import PLAY_QUERIES

    config = config if config is not None else BackendChaosConfig()
    report = BackendChaosReport(seed=config.seed)
    started = monotonic()
    owned_tmp = None
    if config.workdir is None:
        owned_tmp = tempfile.TemporaryDirectory(prefix="repro-bchaos-")
        workdir = Path(owned_tmp.name)
    else:
        workdir = Path(config.workdir)
        workdir.mkdir(parents=True, exist_ok=True)
    try:
        spec, oracle_engine = _build_corpus(config, workdir)
        baseline = _baseline(oracle_engine, PLAY_QUERIES)
        server_config = ServerConfig(
            workers=4,
            queue_depth=32,
            cache_enabled=False,  # every 200 is a fresh evaluation
            default_deadline=5.0,
            corpora=(spec,),
            breaker_threshold=config.breaker_threshold,
            breaker_reset=config.breaker_reset,
            backend_nodes=max(config.nodes, config.replicas),
            backend_groups=config.groups,
            backend_replicas=config.replicas,
            backend_mode="http",
            backend_respawn_delay=config.respawn_delay,
        )
        report.topology = {
            "nodes": server_config.backend_nodes,
            "groups": config.groups,
            "replicas": config.replicas,
        }
        service = QueryService(server_config)
        server = create_server(service, port=0)
        server.serve_in_background()
        try:
            _run_phases(config, report, service, server, PLAY_QUERIES, baseline)
        finally:
            server.stop()
    finally:
        if owned_tmp is not None:
            owned_tmp.cleanup()
    report.duration_seconds = monotonic() - started
    return report


def _run_phases(config, report, service, server, queries, baseline) -> None:
    from repro.server.loadgen import run_load

    host, port = "127.0.0.1", server.bound_port
    lock = threading.Lock()
    phase = {"name": "warmup"}

    def on_response(status: int, payload: bytes) -> None:
        name = phase["name"]
        with lock:
            counts = report.responses.setdefault(name, {})
            counts[str(status)] = counts.get(str(status), 0) + 1
        if status != 200:
            return
        try:
            body = json.loads(payload)
            query = body["query"]
            regions = body["regions"]
        except (ValueError, KeyError, UnicodeDecodeError):
            with lock:
                report.corrupted_responses += 1
                report.violations.append(
                    "a 200 response failed to parse as a query result"
                )
            return
        backend = body.get("backend") or {}
        with lock:
            if backend.get("degraded"):
                report.degraded[name] = report.degraded.get(name, 0) + 1
            reason = backend.get("fallback")
            if reason:
                report.fallbacks[reason] = report.fallbacks.get(reason, 0) + 1
            expected = baseline.get(query)
            if expected is None:
                return
            report.verified_responses += 1
            got = {(int(l), int(r)) for l, r in regions}
            if got != expected:
                report.corrupted_responses += 1
                report.violations.append(
                    f"response for {query!r} in phase {name!r} disagrees "
                    f"with the single-process oracle "
                    f"({len(expected - got)} missing, "
                    f"{len(got - expected)} extra regions)"
                )

    def load(phase_name: str, seconds: float, seed: int):
        phase["name"] = phase_name
        return run_load(
            host,
            port,
            queries,
            corpus="chaos",
            qps=config.qps,
            duration=seconds,
            concurrency=config.concurrency,
            use_cache=False,
            seed=seed,
            on_response=on_response,
        )

    # Phase 1: warmup — all backends healthy.
    load("warmup", config.warmup_seconds, config.seed + 1)

    # Phase 2: SIGKILL the primary replica of the first shard group a
    # beat into the phase, while the load keeps arriving.
    victim = service.frontier.replicas_for("chaos", 0)[0].id
    report.killed_node = victim
    killer = threading.Timer(
        config.kill_after, service.supervisor.kill, args=(victim,)
    )
    killer.start()
    kill_result = load("kill", config.kill_seconds, config.seed + 2)
    killer.join(timeout=1.0)

    # Phase 3: the supervisor must bring the victim back, and probe
    # traffic must walk every breaker back to closed.
    respawn_deadline = monotonic() + max(
        10.0, 4 * (config.respawn_delay + config.breaker_reset)
    )
    while (
        service.supervisor.respawns(victim) < 1
        and monotonic() < respawn_deadline
    ):
        sleep(0.1)
    report.respawns = service.supervisor.respawns(victim)
    probes = 0
    while monotonic() < respawn_deadline:
        states = {
            node.id: node.breaker.state for node in service.frontier.nodes
        }
        if all(state == "closed" for state in states.values()):
            break
        # A closed breaker needs a successful half-open probe, and
        # probes only happen under traffic.
        phase["name"] = "probe"
        try:
            _post_query(host, port, next(iter(queries.values())))
        except OSError:
            pass
        probes += 1
        sleep(0.1)

    # Phase 4: recovery — same load, nothing may be degraded now.
    tail_result = load("recovery", config.recovery_seconds, config.seed + 3)

    report.loadgen = {
        "kill": kill_result.summary(),
        "recovery": tail_result.summary(),
    }

    # ------------------------------------------------------------------
    # Final readings + invariants.
    # ------------------------------------------------------------------
    report.final_breakers = {
        node.id: node.breaker.state for node in service.frontier.nodes
    }
    counters = service.metrics_snapshot()["metrics"]["counters"]
    report.failovers = int(
        sum(counters.get("backend_failovers_total", {}).values())
    )
    report.hedges = int(sum(counters.get("backend_hedges_total", {}).values()))

    if report.corrupted_responses:
        report.violations.append(
            f"{report.corrupted_responses} corrupted response(s) — a killed "
            "backend must never cost correctness"
        )
    warmup_counts = report.responses.get("warmup", {})
    warmup_errors = sum(
        count
        for status, count in warmup_counts.items()
        if status not in ("200",)
    )
    if warmup_errors:
        report.violations.append(
            f"{warmup_errors} non-200 response(s) during warmup with every "
            "backend healthy"
        )
    if report.degraded.get("warmup", 0):
        report.violations.append(
            f"{report.degraded['warmup']} degraded response(s) during "
            "warmup with every backend healthy"
        )
    kill_counts = report.responses.get("kill", {})
    kill_total = sum(kill_counts.values())
    kill_ok = kill_counts.get("200", 0)
    report.kill_availability = kill_ok / kill_total if kill_total else 0.0
    if kill_total == 0:
        report.violations.append("no responses arrived during the kill phase")
    elif report.kill_availability < config.min_kill_availability:
        report.violations.append(
            f"availability during the kill window was "
            f"{report.kill_availability:.1%} "
            f"(minimum {config.min_kill_availability:.0%}) — failover did "
            "not absorb the dead backend"
        )
    if report.respawns < 1:
        report.violations.append(
            f"the supervisor never respawned {report.killed_node}"
        )
    open_breakers = {
        node: state
        for node, state in report.final_breakers.items()
        if state != "closed"
    }
    if open_breakers:
        report.violations.append(
            "breakers did not re-close after the respawn: "
            + ", ".join(f"{n}: {s}" for n, s in sorted(open_breakers.items()))
        )
    recovery_counts = report.responses.get("recovery", {})
    recovery_errors = sum(
        count
        for status, count in recovery_counts.items()
        if status not in ("200",)
    )
    if recovery_errors:
        report.violations.append(
            f"{recovery_errors} non-200 response(s) in recovery — the "
            "victim was respawned, so none are acceptable"
        )
    if report.degraded.get("recovery", 0):
        report.violations.append(
            f"{report.degraded['recovery']} degraded response(s) in "
            "recovery — the topology must be whole again"
        )

    # Final sweep: every mix query once more, directly, each answer
    # checked against the oracle and required off the distributed path.
    phase["name"] = "final"
    for name, text in queries.items():
        try:
            status, body = _post_query(host, port, text)
        except OSError as exc:
            report.violations.append(
                f"final equivalence query {name!r} failed at the "
                f"transport: {type(exc).__name__}"
            )
            continue
        report.equivalence_checks += 1
        if status != 200 or body is None:
            report.violations.append(
                f"final equivalence query {name!r} answered {status}"
            )
            continue
        got = {(int(l), int(r)) for l, r in body.get("regions", ())}
        if got != baseline[text]:
            report.violations.append(
                f"final equivalence query {name!r} disagrees with the "
                "single-process oracle"
            )
        backend = body.get("backend") or {}
        if backend.get("degraded"):
            report.violations.append(
                f"final equivalence query {name!r} was still degraded "
                "after full recovery"
            )
